"""Synthetic NYSE-style stock quote stream.

Substitution for the paper's Google-Finance NYSE dataset (500 symbols,
one quote per symbol per minute).  The generator plants the two
correlation structures the evaluation queries rely on:

- **lead/lag following** (Q2): each follower symbol tracks the
  direction a designated *leader* symbol had ``lag_ticks`` ago with
  probability ``follow_probability``; otherwise it moves randomly.
  Inside a window opened by a leader event, correlated follower moves
  therefore appear at predictable relative positions.
- **ordered cascades** (Q3/Q4): when a leader rises (or falls), the
  configured cascade symbols repeat that direction on the next tick.
  Symbols emit in index order within a tick, so the cascade appears as
  an exact type sequence -- precisely what the sequence operator of
  Q3/Q4 matches.

Event schema: type = symbol name (e.g. ``"S17"``); attributes ``price``
(float), ``change`` (signed float) and ``direction`` (``"rise"`` /
``"fall"``).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cep.events import Event, EventStream


def symbol_name(index: int) -> str:
    """Canonical symbol name for index ``index``."""
    return f"S{index}"


@dataclass
class StockStreamConfig:
    """Knobs of the synthetic quote stream.

    Attributes
    ----------
    symbols:
        Total number of stock symbols (paper: 500).
    leaders:
        The first ``leaders`` symbols are the "leading blue chips" whose
        events open windows in Q2/Q3 (paper: 5).
    ticks:
        Number of quote rounds; every symbol quotes once per tick
        (paper resolution: one quote per minute).
    tick_seconds:
        Event-time span of one tick (paper: 60 s).
    follow_probability:
        Probability that a follower echoes its leader's lagged
        direction instead of moving randomly.
    lag_ticks:
        How many ticks behind followers echo their leader.
    cascade_symbols:
        Symbol indices that deterministically repeat the first leader's
        direction one tick later, in index order (Q3/Q4 fodder); empty
        disables cascades.
    cascade_probability:
        Per-tick probability that a pending cascade actually fires.
    seed:
        RNG seed; streams are reproducible.
    """

    symbols: int = 50
    leaders: int = 5
    ticks: int = 200
    tick_seconds: float = 60.0
    follow_probability: float = 0.75
    lag_ticks: int = 1
    cascade_symbols: Sequence[int] = field(default_factory=tuple)
    cascade_probability: float = 0.9
    seed: int = 7

    def leader_names(self) -> List[str]:
        """Names of the leading symbols."""
        return [symbol_name(i) for i in range(self.leaders)]

    def follower_names(self) -> List[str]:
        """Names of every non-leader symbol."""
        return [symbol_name(i) for i in range(self.leaders, self.symbols)]

    def cascade_names(self) -> List[str]:
        """Names of the cascade symbols, in cascade (index) order."""
        return [symbol_name(i) for i in sorted(self.cascade_symbols)]


def generate_stock_stream(config: Optional[StockStreamConfig] = None) -> EventStream:
    """Generate the synthetic quote stream described by ``config``."""
    cfg = config if config is not None else StockStreamConfig()
    if cfg.symbols <= 0:
        raise ValueError("need at least one symbol")
    if not 0 < cfg.leaders <= cfg.symbols:
        raise ValueError("leaders must be within the symbol count")
    for index in cfg.cascade_symbols:
        if not cfg.leaders <= index < cfg.symbols:
            raise ValueError(
                f"cascade symbol {index} must be a follower "
                f"(in [{cfg.leaders}, {cfg.symbols}))"
            )

    rng = random.Random(cfg.seed)
    prices: List[float] = [100.0 + rng.uniform(-20.0, 20.0) for _ in range(cfg.symbols)]
    # direction history per leader, appended once per tick ("rise"/"fall")
    leader_history: List[List[str]] = [[] for _ in range(cfg.leaders)]
    leader_persistence = 0.7  # leaders keep their direction with this probability
    last_leader_dir: List[str] = [
        rng.choice(("rise", "fall")) for _ in range(cfg.leaders)
    ]
    cascade_order = sorted(cfg.cascade_symbols)
    pending_cascade: Optional[str] = None  # direction to replay on this tick

    stream = EventStream()
    seq = 0
    for tick in range(cfg.ticks):
        tick_start = tick * cfg.tick_seconds
        spacing = cfg.tick_seconds / cfg.symbols
        # decide this tick's leader directions first
        for leader in range(cfg.leaders):
            if rng.random() < leader_persistence:
                direction = last_leader_dir[leader]
            else:
                direction = "rise" if last_leader_dir[leader] == "fall" else "fall"
            last_leader_dir[leader] = direction
            leader_history[leader].append(direction)

        cascade_fires = (
            pending_cascade is not None and rng.random() < cfg.cascade_probability
        )
        cascade_direction = pending_cascade

        for index in range(cfg.symbols):
            name = symbol_name(index)
            if index < cfg.leaders:
                direction = leader_history[index][-1]
            elif cascade_fires and index in cascade_order:
                direction = cascade_direction or "rise"
            else:
                leader = index % cfg.leaders
                history = leader_history[leader]
                lagged_tick = tick - cfg.lag_ticks
                if 0 <= lagged_tick < len(history) and rng.random() < cfg.follow_probability:
                    direction = history[lagged_tick]
                else:
                    direction = rng.choice(("rise", "fall"))
            magnitude = abs(rng.gauss(0.5, 0.2)) + 0.01
            change = magnitude if direction == "rise" else -magnitude
            prices[index] = max(1.0, prices[index] + change)
            stream.append(
                Event(
                    event_type=name,
                    seq=seq,
                    timestamp=tick_start + index * spacing,
                    attrs={
                        "price": round(prices[index], 4),
                        "change": round(change, 4),
                        "direction": direction,
                    },
                )
            )
            seq += 1

        # the first leader's direction this tick seeds next tick's cascade
        pending_cascade = leader_history[0][-1] if cascade_order else None

    return stream


def rising(event: Event) -> bool:
    """Predicate: the quote is a rising event (paper's RE)."""
    return event.attr("direction") == "rise"


def falling(event: Event) -> bool:
    """Predicate: the quote is a falling event (paper's FE)."""
    return event.attr("direction") == "fall"


def direction_counts(stream: EventStream) -> Dict[str, int]:
    """Count rise/fall events (dataset sanity checks)."""
    counts = {"rise": 0, "fall": 0}
    for event in stream:
        direction = event.attr("direction")
        if direction in counts:
            counts[direction] += 1
    return counts

"""Synthetic RTLS soccer stream (DEBS 2013 grand-challenge stand-in).

Substitution for the paper's real-time locating system data from a
soccer game, filtered to one event per second per tracked object.  The
stream contains:

- **possession events** (``"STR1"``, ``"STR2"``): one of the two
  strikers (one per team) possesses the ball;
- **defend events** (``"DF1"``..``"DFk"``): defender position updates.
  Each carries a ``distance`` attribute -- the distance to the nearest
  striker.  The man-marking correlation is planted: after a possession
  by striker ``s``, each of the defenders *assigned to mark s* emits a
  defend event *within marking distance* (small ``distance``) within
  ``marking_delay_max`` seconds with probability
  ``marking_probability``; defender updates outside these reactions
  carry large distances (the defender roams elsewhere);
- **background events** (``"PL1"``..``"PLm"``): other players'
  filtered position updates, which dilute the stream exactly like the
  non-pattern events of the real dataset.

Event schema: attributes ``x``/``y`` (pitch position, metres) and
``velocity`` (m/s).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.cep.events import Event, EventStream

STRIKER_TYPES = ("STR1", "STR2")


def defender_name(index: int) -> str:
    """Canonical defend-event type for defender ``index`` (1-based)."""
    return f"DF{index}"


@dataclass
class SoccerStreamConfig:
    """Knobs of the synthetic soccer stream.

    Attributes
    ----------
    defenders:
        Total number of tracked defenders (defend-event types).
    markers_per_striker:
        How many defenders are assigned to man-mark each striker; the
        first ``markers_per_striker`` defenders mark ``STR1``, the next
        ones mark ``STR2`` (wrapping if needed).
    marker_offset:
        Rotates the marking assignment: defender indices shift by this
        amount (modulo the defender count).  Changing it mid-season
        models tactical drift for retraining demos.
    background_players:
        Number of background position-update types.
    duration_seconds:
        Stream length in event-time seconds.
    events_per_second:
        Aggregate rate after redundancy filtering (paper: one event per
        second per object).
    possession_interval:
        Mean seconds between possession events.
    marking_probability:
        Probability that an assigned marker reacts to a possession.
    marking_delay_min / marking_delay_max:
        Reaction delay window in seconds (the positional correlation
        eSPICE learns).
    defender_noise_fraction:
        Fraction of filler events that are defender position updates
        unrelated to any possession; the rest are background players.
        Defenders move all game long, so most defend-type events are
        *not* marking reactions -- type alone cannot identify the
        contributing events, position within the window can.
    seed:
        RNG seed.
    """

    defenders: int = 8
    markers_per_striker: int = 4
    marker_offset: int = 0
    background_players: int = 10
    duration_seconds: float = 1200.0
    events_per_second: float = 20.0
    possession_interval: float = 10.0
    marking_probability: float = 0.85
    marking_delay_min: float = 0.5
    marking_delay_max: float = 5.0
    defender_noise_fraction: float = 0.5
    seed: int = 11

    def defender_names(self) -> List[str]:
        """All defend-event type names."""
        return [defender_name(i) for i in range(1, self.defenders + 1)]

    def markers_of(self, striker: str) -> List[str]:
        """Defend-event types assigned to mark ``striker``."""
        if striker not in STRIKER_TYPES:
            raise ValueError(f"unknown striker {striker!r}")
        offset = (
            STRIKER_TYPES.index(striker) * self.markers_per_striker
            + self.marker_offset
        )
        return [
            defender_name(1 + (offset + i) % self.defenders)
            for i in range(self.markers_per_striker)
        ]


def generate_soccer_stream(config: Optional[SoccerStreamConfig] = None) -> EventStream:
    """Generate the synthetic soccer stream described by ``config``."""
    cfg = config if config is not None else SoccerStreamConfig()
    if cfg.defenders <= 0:
        raise ValueError("need at least one defender")
    if cfg.markers_per_striker <= 0 or cfg.markers_per_striker > cfg.defenders:
        raise ValueError("markers_per_striker must be in [1, defenders]")
    if cfg.marking_delay_min >= cfg.marking_delay_max:
        raise ValueError("marking delay window is empty")

    rng = random.Random(cfg.seed)
    # (time, type_name, is_marking_reaction)
    scheduled: List[tuple] = []

    def random_attrs(marking: bool) -> Dict[str, float]:
        attrs = {
            "x": round(rng.uniform(0.0, 105.0), 2),
            "y": round(rng.uniform(0.0, 68.0), 2),
            "velocity": round(abs(rng.gauss(3.0, 1.5)), 2),
        }
        # distance to the nearest striker: marking reactions are close,
        # roaming updates far (this is what Q1's distance predicate uses)
        attrs["distance"] = round(
            rng.uniform(0.5, 3.0) if marking else rng.uniform(8.0, 40.0), 2
        )
        return attrs

    # pre-plan possession times
    possessions: List[tuple] = []  # (time, striker type)
    time_cursor = rng.uniform(0.5, cfg.possession_interval)
    while time_cursor < cfg.duration_seconds:
        striker = rng.choice(STRIKER_TYPES)
        possessions.append((time_cursor, striker))
        for marker in cfg.markers_of(striker):
            if rng.random() < cfg.marking_probability:
                delay = rng.uniform(cfg.marking_delay_min, cfg.marking_delay_max)
                scheduled.append((time_cursor + delay, marker, True))
        time_cursor += rng.expovariate(1.0 / cfg.possession_interval)

    # filler events to reach the target aggregate rate: defenders move
    # all game long (position updates without a possession trigger), the
    # rest are other players' updates
    target_events = int(cfg.duration_seconds * cfg.events_per_second)
    filler_needed = max(0, target_events - len(possessions) - len(scheduled))
    background_types = [f"PL{i}" for i in range(1, cfg.background_players + 1)] or [
        "PL1"
    ]
    filler = []
    for _ in range(filler_needed):
        timestamp = rng.uniform(0.0, cfg.duration_seconds)
        if rng.random() < cfg.defender_noise_fraction:
            type_name = defender_name(rng.randint(1, cfg.defenders))
        else:
            type_name = rng.choice(background_types)
        filler.append((timestamp, type_name, False))

    all_events = [(t, s, False) for t, s in possessions] + scheduled + filler
    all_events.sort(key=lambda entry: entry[0])

    stream = EventStream()
    for seq, (timestamp, type_name, marking) in enumerate(all_events):
        if timestamp >= cfg.duration_seconds:
            continue
        stream.append(
            Event(
                event_type=type_name,
                seq=seq,
                timestamp=timestamp,
                attrs=random_attrs(marking),
            )
        )
    return stream


def is_possession(event: Event) -> bool:
    """Predicate: the event is a striker possession."""
    return event.event_type in STRIKER_TYPES

"""Synthetic stand-ins for the paper's two real-world datasets.

The paper evaluates on (1) NYSE intraday quotes of 500 stocks collected
from Google Finance and (2) the DEBS 2013 RTLS soccer positioning
stream.  Neither is redistributable, so this package generates
synthetic streams that plant exactly the statistical structure eSPICE
exploits -- correlations between event *types* and their *relative
positions* inside windows (paper §3):

- :mod:`repro.datasets.stock` -- leader/follower stock quotes: a move
  of a leading symbol is echoed by correlated follower symbols within a
  bounded lag, and optional cascade chains fire in a fixed symbol order
  (feeding the exact-sequence queries Q3/Q4).
- :mod:`repro.datasets.soccer` -- ball-possession and defend events:
  when a striker possesses the ball, his markers produce defend events
  within a short interval (feeding Q1).

Both generators are deterministic under a seed, and both emit plain
:class:`repro.cep.events.EventStream` objects.
"""

from repro.datasets.stock import StockStreamConfig, generate_stock_stream
from repro.datasets.soccer import SoccerStreamConfig, generate_soccer_stream
from repro.datasets.io import load_stream_csv, save_stream_csv, split_stream

__all__ = [
    "SoccerStreamConfig",
    "StockStreamConfig",
    "generate_soccer_stream",
    "generate_stock_stream",
    "load_stream_csv",
    "save_stream_csv",
    "split_stream",
]

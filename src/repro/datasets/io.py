"""Stream persistence and splitting utilities.

The paper streams its datasets "from stored files"; these helpers give
the reproduction the same workflow -- generate once, save to CSV,
replay many times -- plus the train/test split used by every
experiment (train the model at a sustainable rate, then overload).
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Tuple, Union

from repro.cep.events import Event, EventStream

_META_COLUMNS = ("event_type", "seq", "timestamp")


def save_stream_csv(stream: EventStream, path: Union[str, Path]) -> None:
    """Write ``stream`` to ``path`` as CSV (attrs JSON-encoded)."""
    path = Path(path)
    with path.open("w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([*_META_COLUMNS, "attrs"])
        for event in stream:
            writer.writerow(
                [
                    event.event_type,
                    event.seq,
                    repr(event.timestamp),
                    json.dumps(event.attrs, sort_keys=True),
                ]
            )


def load_stream_csv(path: Union[str, Path]) -> EventStream:
    """Read a stream previously written by :func:`save_stream_csv`."""
    path = Path(path)
    stream = EventStream()
    with path.open(newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None or tuple(header[:3]) != _META_COLUMNS:
            raise ValueError(f"{path} is not a stream CSV")
        for row in reader:
            type_name, seq_text, ts_text, attrs_text = row
            stream.append(
                Event(
                    event_type=type_name,
                    seq=int(seq_text),
                    timestamp=float(ts_text),
                    attrs=json.loads(attrs_text),
                )
            )
    return stream


def split_stream(
    stream: EventStream, train_fraction: float
) -> Tuple[EventStream, EventStream]:
    """Split a stream into (training, evaluation) prefix/suffix parts.

    The evaluation part keeps its original sequence numbers and
    timestamps -- windows and positions are unaffected by the split.
    """
    if not 0.0 < train_fraction < 1.0:
        raise ValueError("train_fraction must lie strictly between 0 and 1")
    cut = int(len(stream) * train_fraction)
    train = EventStream(stream[i] for i in range(cut))
    test = EventStream(stream[i] for i in range(cut, len(stream)))
    return train, test

"""`repro.serve`: the asyncio network front door of a pipeline.

Everything downstream of ingestion -- sharding, micro-batching,
shedding -- already existed; this subsystem is how events *enter* from
the network.  One listening socket speaks two protocols (sniffed per
connection):

- a **length-prefixed framed TCP protocol** (4-byte magic ``RPV1``,
  then 4-byte-length JSON frames) for high-rate ingest clients
  (:mod:`repro.serve.protocol`, :class:`repro.serve.client.ServeClient`);
- a **minimal HTTP/1.1 surface** -- ``POST /ingest``,
  ``GET /metrics``, ``GET /healthz`` -- for curl-style integration
  (:mod:`repro.serve.http`).

Requests pass a composable :class:`~repro.serve.middleware.ServerMiddleware`
chain (token-bucket rate limiting keyed per client, shared-secret
auth, request logging, max-in-flight admission) before decoded events
enter a **bounded** ingest queue feeding
:meth:`repro.pipeline.Pipeline.feed`; overflowing batches are refused
with a structured ``overloaded`` response that carries the queue
utilization and the pipeline's live shedding state -- backpressure on
the wire instead of unbounded buffering.  ``stop()`` drains
gracefully: stop accepting, flush the live micro-batch and still-open
windows, emit the final detections.

Robustness is graded, not binary: a
:class:`~repro.serve.health.HealthMonitor` degradation ladder
(HEALTHY → DEGRADED → OVERLOADED → DRAINING) tightens rate limits,
refuses non-essential ops and raises coordinated shedding as pressure
builds; :class:`~repro.serve.admission.DeadlineAdmission` rejects
requests whose latency budget the measured queue wait would already
blow; and :mod:`repro.serve.resilience` gives clients seeded-jitter
exponential backoff plus a circuit breaker.  The server drives either
a :class:`~repro.pipeline.Pipeline` or a fault-tolerant
:class:`~repro.cluster.sharded.ShardedPipeline` through the same
consumer loop.

The ``repro-serve`` console script (:mod:`repro.serve.cli`) serves a
trained pipeline directly; :func:`repro.runtime.serving.serve_replay`
is the test/benchmark harness replaying stored streams through a real
socket.
"""

from repro.serve.admission import DeadlineAdmission
from repro.serve.client import IngestReport, ServeClient
from repro.serve.health import HealthMonitor, HealthPolicy, HealthState
from repro.serve.middleware import (
    MaxInFlight,
    Rejection,
    Request,
    RequestLogMiddleware,
    ServerMiddleware,
    SharedSecretAuth,
    TokenBucketLimiter,
    setup_middleware,
)
from repro.serve.protocol import (
    ProtocolError,
    event_to_wire,
    events_to_wire,
    wire_to_event,
    wire_to_events,
)
from repro.serve.resilience import CircuitBreaker, ExponentialBackoff
from repro.serve.server import PipelineServer, ServeConfig

__all__ = [
    "CircuitBreaker",
    "DeadlineAdmission",
    "ExponentialBackoff",
    "HealthMonitor",
    "HealthPolicy",
    "HealthState",
    "IngestReport",
    "MaxInFlight",
    "PipelineServer",
    "ProtocolError",
    "Rejection",
    "Request",
    "RequestLogMiddleware",
    "ServeClient",
    "ServeConfig",
    "ServerMiddleware",
    "SharedSecretAuth",
    "TokenBucketLimiter",
    "event_to_wire",
    "events_to_wire",
    "setup_middleware",
    "wire_to_event",
    "wire_to_events",
]

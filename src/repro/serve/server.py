"""`PipelineServer`: the asyncio network front door of a Pipeline.

Architecture (one process, one event loop)::

    clients ──TCP──▶ listener ──▶ per-connection handler
                                   │  protocol sniff: RPV1 magic → framed,
                                   │  anything else → HTTP/1.1
                                   ▼
                       middleware chain (rate limit, auth, log, in-flight)
                                   ▼
                       bounded ingest queue  ── overflow → "overloaded"
                                   ▼
                       single consumer task ──▶ Pipeline.feed()
                                   ▼
                       EmitStage sinks (detections)

Design decisions, each mirroring a paper/ROADMAP concern:

- **Explicit backpressure, not buffering.**  The ingest queue is
  bounded in *events* (``max_pending_events``).  A batch that does not
  fit is refused with a structured ``overloaded`` response carrying
  the queue utilization, the pipeline's current shedding state (drop
  rate per query) and a ``retry_after`` hint derived from the measured
  drain rate -- the overload/shedding decision becomes visible on the
  wire instead of turning into unbounded server memory.
- **One consumer, deterministic order.**  All connections funnel into
  a single FIFO queue drained by one task that feeds the pipeline;
  the event order seen by the pipeline is the admission order, so a
  single client replaying a stream gets detections bit-identical to
  an in-process replay (property-tested).
- **Graded overload, not a cliff.**  A :class:`~repro.serve.health.
  HealthMonitor` ladder (HEALTHY → DEGRADED → OVERLOADED → DRAINING)
  watches queue utilization, shed rate and downstream failures; each
  rung tightens token buckets, refuses non-essential ops, and -- at
  OVERLOADED -- raises load shedding through the coordinated-shedding
  hook.  Requests may carry a deadline (``deadline_ms`` /
  ``X-Deadline-Ms``); :class:`~repro.serve.admission.DeadlineAdmission`
  refuses ones the measured queue wait would already blow.
- **Graceful drain.**  ``stop()`` stops accepting, lets the consumer
  drain the queue, then runs :meth:`repro.pipeline.Pipeline.finish`
  (flush of the live micro-batcher plus still-open windows), so the
  final detections are emitted before the loop winds down.
"""

from __future__ import annotations

import asyncio
import json
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cep.events import ComplexEvent
from repro.cluster.sharded import ShardedPipeline
from repro.core.partitions import plan_partitions
from repro.pipeline.pipeline import Pipeline
from repro.serve import http as http_surface
from repro.serve.health import HealthMonitor, HealthPolicy, HealthState
from repro.serve.middleware import Rejection, Request, ServerMiddleware
from repro.serve.protocol import (
    MAGIC,
    ProtocolError,
    encode_frame,
    read_frame,
    wire_to_events,
)
from repro.shedding.base import DropCommand

__all__ = ["ServeConfig", "PipelineServer"]


@dataclass
class ServeConfig:
    """Knobs of one server instance.

    Attributes
    ----------
    host / port:
        Listening address; port 0 binds an ephemeral port (read it
        back from :attr:`PipelineServer.port`).
    max_pending_events:
        Bound of the ingest queue in *events* (not batches): the
        server never holds more than this many admitted-but-unfed
        events, which is the memory bound the ``overloaded`` response
        protects.
    drain_timeout:
        Seconds ``stop()`` waits for the consumer to drain the queue
        before giving up (the pipeline is still flushed).
    retry_after_min / retry_after_max:
        Clamp of the ``retry_after`` hint in overloaded responses.
    """

    host: str = "127.0.0.1"
    port: int = 0
    max_pending_events: int = 65536
    drain_timeout: float = 30.0
    retry_after_min: float = 0.05
    retry_after_max: float = 5.0

    def __post_init__(self) -> None:
        if self.max_pending_events <= 0:
            raise ValueError("max pending events must be positive")
        if self.drain_timeout <= 0.0:
            raise ValueError("drain timeout must be positive")


class PipelineServer:
    """Serve a built :class:`~repro.pipeline.Pipeline` over TCP/HTTP.

    Also accepts a :class:`~repro.cluster.sharded.ShardedPipeline`:
    the cluster exposes the same ``feed``/``finish``/``backpressure``
    surface, so the front door drives a multi-process deployment
    through the identical consumer loop (detections keep sequential
    order via the coordinator's dispatch-index merge).
    """

    def __init__(
        self,
        pipeline: Pipeline,
        config: Optional[ServeConfig] = None,
        middleware: Sequence[ServerMiddleware] = (),
        observability=None,
        health_policy: Optional[HealthPolicy] = None,
    ) -> None:
        if not isinstance(pipeline, (Pipeline, ShardedPipeline)):
            raise TypeError(
                "PipelineServer drives a built Pipeline or a "
                f"ShardedPipeline, not {type(pipeline).__name__}"
            )
        # a sharded pipeline is fed through its live serve surface
        # (feed/finish); its workers fork on server start()
        self._sharded = isinstance(pipeline, ShardedPipeline)
        if self._sharded and observability is not None and pipeline.started:
            raise RuntimeError(
                "pass the ShardedPipeline unstarted when serving with "
                "observability: workers inherit instrumentation at fork"
            )
        self.pipeline = pipeline
        self.config = config if config is not None else ServeConfig()
        #: the degradation ladder (always on; see repro.serve.health)
        self.health = HealthMonitor(health_policy)
        #: query -> shedding the ladder itself activated (and may undo)
        self._health_shedding: set = set()
        self.nonessential_rejected = 0
        self.feed_errors = 0
        self._last_feed_error: Optional[str] = None
        self.middlewares: List[ServerMiddleware] = []
        for mw in middleware:
            mw.setup_middleware(self)
        # unified observability: one repro.obs.Observability bundle
        # shared with the pipeline (instrumented dispatch + registry)
        # and scraped by this server's own wire-counter collector
        self.observability = observability
        self._obs_collector = None
        if observability is not None:
            pipeline.enable_observability(observability)
            self._obs_collector = self._register_obs_collector(
                observability.registry
            )

        self._state = "new"  # new -> serving -> draining -> stopped
        self._server: Optional[asyncio.base_events.Server] = None
        self._consumer: Optional[asyncio.Task] = None
        self._queue: Optional[asyncio.Queue] = None
        self._pending = 0  # admitted-but-unfed events (queue bound)
        self._writers: set = set()
        self._drain_rate: Optional[float] = None  # events/s EMA of the consumer

        # wire-level counters
        self.connections_total = 0
        self.connections_active = 0
        self.frames_in = 0
        self.frames_out = 0
        self.http_requests = 0
        self.bytes_in = 0
        self.bytes_out = 0
        self.events_admitted = 0
        self.events_fed = 0
        self.batches_admitted = 0
        self.overloaded_responses = 0
        self.protocol_errors = 0
        self.detections = 0
        self._detections_by_query: Dict[str, int] = {}
        self._sinks = []
        for chain in pipeline.chains:
            sink = self._count_detection(chain.query.name)
            chain.emit.subscribe(sink)
            self._sinks.append((chain, sink))

    # ------------------------------------------------------------------
    # middleware registration (the setup_middleware target)
    # ------------------------------------------------------------------
    def add_middleware(self, middleware: ServerMiddleware) -> "PipelineServer":
        """Append ``middleware`` to the chain (request order)."""
        self.middlewares.append(middleware)
        return self

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> "PipelineServer":
        """Bind the listener and start the consumer (idempotent)."""
        if self._state in ("serving", "draining"):
            return self
        if self._sharded:
            # fork the shard workers before the listener binds: the
            # first admitted event must find the cluster live, and the
            # fork must happen before the loop owns any sockets
            self.pipeline.start()
        # bounded in *batches* by the same knob that bounds pending
        # *events*: every queued entry carries >= 1 event and _admit
        # refuses batches beyond max_pending_events, so this capacity
        # can never be hit before the event bound -- it exists so the
        # memory ceiling survives any future bypass of _admit
        self._queue = asyncio.Queue(maxsize=self.config.max_pending_events)
        self._pending = 0
        self._consumer = asyncio.create_task(self._consume(), name="repro-serve-feed")
        self._server = await asyncio.start_server(
            self._handle_connection, host=self.config.host, port=self.config.port
        )
        self._state = "serving"
        return self

    @property
    def port(self) -> int:
        """The bound port (after :meth:`start`)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("server is not started")
        return self._server.sockets[0].getsockname()[1]

    @property
    def state(self) -> str:
        return self._state

    @property
    def pending_events(self) -> int:
        """Admitted events not yet fed into the pipeline."""
        return self._pending

    async def stop(self) -> Dict[str, List[ComplexEvent]]:
        """Graceful drain: stop accepting, flush everything, shut down.

        Returns the final end-of-stream detections (per query), i.e.
        what :meth:`Pipeline.finish` emitted for the live micro-batch
        and still-open windows.  Idempotent; a second call returns an
        empty mapping.
        """
        if self._state in ("stopped", "new"):
            self._state = "stopped"
            return {}
        self._state = "draining"
        # bottom of the ladder: nothing new is essential while draining
        self.health.force(HealthState.DRAINING, reason="stop")
        self._apply_rate_limits()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        try:
            await asyncio.wait_for(self._queue.join(), self.config.drain_timeout)
        except asyncio.TimeoutError:  # pragma: no cover - defensive
            pass
        if self._consumer is not None:
            self._consumer.cancel()
            try:
                await self._consumer
            except asyncio.CancelledError:
                pass
            self._consumer = None
        # end-of-stream flush: pending micro-batch + still-open windows
        final = self.pipeline.finish()
        for writer in list(self._writers):
            writer.close()
        self._writers.clear()
        # detach the counting sinks: the pipeline outlives the server
        for chain, sink in self._sinks:
            if sink in chain.emit.sinks:
                chain.emit.sinks.remove(sink)
        self._sinks = []
        if self.observability is not None and self._obs_collector is not None:
            # freeze (not erase) this server's registry families: the
            # collector dies with the server, the last values survive
            self.observability.registry.unregister_collector(self._obs_collector)
            self._obs_collector = None
        self._state = "stopped"
        return final

    async def serve_forever(self) -> None:
        """Serve until cancelled (the CLI's main loop)."""
        await self.start()
        assert self._server is not None
        try:
            await self._server.serve_forever()
        except asyncio.CancelledError:
            pass

    # ------------------------------------------------------------------
    # the single pipeline feeder
    # ------------------------------------------------------------------
    async def _consume(self) -> None:
        queue = self._queue
        feed = self.pipeline.feed
        while True:
            events = await queue.get()
            started = time.perf_counter()
            try:
                for event in events:
                    try:
                        feed(event)
                    except asyncio.CancelledError:
                        raise
                    except Exception as exc:
                        # a downstream failure must not kill the feeder:
                        # count it, tell the ladder, keep draining --
                        # the degraded state is visible on /healthz
                        self.feed_errors += 1
                        self._last_feed_error = (
                            f"{type(exc).__name__}: {exc}"
                        )
                        self.health.record_failure()
            finally:
                self._pending -= len(events)
                self.events_fed += len(events)
                queue.task_done()
            elapsed = time.perf_counter() - started
            if elapsed > 0.0:
                rate = len(events) / elapsed
                self._drain_rate = (
                    rate
                    if self._drain_rate is None
                    else 0.8 * self._drain_rate + 0.2 * rate
                )
            self._health_check()
            # yield so connection handlers interleave between batches
            await asyncio.sleep(0)

    def _count_detection(self, query_name: str):
        def sink(_complex_event: ComplexEvent) -> None:
            self.detections += 1
            self._detections_by_query[query_name] = (
                self._detections_by_query.get(query_name, 0) + 1
            )

        return sink

    # ------------------------------------------------------------------
    # the degradation ladder (repro.serve.health)
    # ------------------------------------------------------------------
    def estimated_wait(self) -> float:
        """Estimated seconds an admitted batch waits before the pipeline.

        Queue wait from the drain-rate EMA plus the p95 request service
        time from the request-latency histogram (when a
        ``RequestLogMiddleware`` publishes one) -- the live signals the
        deadline-admission middleware compares a request's budget to.
        """
        wait = 0.0
        if self._drain_rate is not None and self._drain_rate > 0.0:
            wait += self._pending / self._drain_rate
        for mw in self.middlewares:
            hist = getattr(mw, "_request_seconds", None)
            if hist is None:
                continue
            try:
                wait += hist.labels(op="ingest").quantile(0.95)
            except (KeyError, ValueError):
                pass  # no ingest sample yet
            break
        return wait

    def _health_check(self) -> None:
        """Feed live signals to the ladder; apply policy on transition."""
        utilization = self._pending / self.config.max_pending_events
        shed_rate = 0.0
        for chain_state in self._shedding_snapshot().values():
            if chain_state.get("active"):
                shed_rate = max(
                    shed_rate, float(chain_state.get("drop_rate") or 0.0)
                )
        transition = self.health.evaluate(utilization, shed_rate=shed_rate)
        if transition is not None:
            self._apply_health_policy(*transition)

    def _apply_health_policy(self, old: int, new: int) -> None:
        """The countermeasures of one ladder transition."""
        self._apply_rate_limits()
        if (
            new >= HealthState.OVERLOADED
            and old < HealthState.OVERLOADED
            and new != HealthState.DRAINING
        ):
            self._raise_shedding()
        elif new < HealthState.OVERLOADED <= old:
            self._lower_shedding()

    def _apply_rate_limits(self) -> None:
        """Scale every pressure-aware middleware to the current rung."""
        factor = self.health.rate_limit_factor()
        for mw in self.middlewares:
            set_pressure = getattr(mw, "set_pressure", None)
            if set_pressure is not None:
                set_pressure(factor)

    def _raise_shedding(self) -> None:
        """Entering OVERLOADED: activate load shedding where it is off.

        Uses each chain's deployed overload plan when one exists (the
        detector's ``qmax``/``f``), falling back to the paper's default
        partitioning; only chains whose shedder the ladder itself turned
        on are remembered, so operator- or detector-driven shedding is
        never clobbered on recovery.
        """
        fraction = self.health.policy.shed_fraction
        for chain in self.pipeline.chains:
            shedder, model = chain.shedder, chain.model
            if shedder is None or model is None or shedder.active:
                continue
            detector = chain.detector
            if detector is not None:
                plan = plan_partitions(
                    detector.reference_size, detector.qmax(), detector.f
                )
            else:
                plan = plan_partitions(model.reference_size, 1000.0, 0.8)
            command = DropCommand(
                x=fraction * plan.partition_size,
                partition_count=plan.partition_count,
                partition_size=plan.partition_size,
            )
            name = chain.query.name
            if self._sharded:
                self.pipeline.broadcast_shedding(command, chain=name)
            else:
                shedder.on_drop_command(command)
                shedder.activate()
            self._health_shedding.add(name)

    def _lower_shedding(self) -> None:
        """Leaving OVERLOADED: undo exactly the shedding we activated."""
        for chain in self.pipeline.chains:
            name = chain.query.name
            if name not in self._health_shedding:
                continue
            if self._sharded:
                self.pipeline.stop_shedding(chain=name)
            elif chain.shedder is not None:
                chain.shedder.deactivate()
        self._health_shedding.clear()

    # ------------------------------------------------------------------
    # request dispatch (shared by both wire surfaces)
    # ------------------------------------------------------------------
    def _dispatch(self, request: Request) -> Tuple[int, Dict[str, object]]:
        """Run the middleware chain, then the op handler.

        ``on_response`` fires in reverse order for exactly the
        middlewares whose ``on_request`` ran (vetoes included), so
        stateful middleware (in-flight slots) cannot leak.
        """
        if self.health.rejects_op(request.op):
            # the ladder's non-essential list for the current rung --
            # checked before the middleware chain so a degraded server
            # spends nothing on work it is about to refuse
            self.nonessential_rejected += 1
            return 503, {
                "ok": False,
                "error": "degraded",
                "state": self.health.state_name,
                "retry_after": self.config.retry_after_min,
            }
        ran: List[ServerMiddleware] = []
        rejection: Optional[Rejection] = None
        for mw in self.middlewares:
            ran.append(mw)
            rejection = mw.on_request(request)
            if rejection is not None:
                break
        if rejection is not None:
            status, payload = rejection.status, rejection.payload()
        else:
            status, payload = self._handle(request)
        for mw in reversed(ran):
            mw.on_response(request, payload)
        return status, payload

    def _handle(self, request: Request) -> Tuple[int, Dict[str, object]]:
        if request.op == "ingest":
            return self._admit(request.events)
        if request.op == "healthz":
            return 200, {
                "ok": True,
                "status": self._state,
                "health": self.health.state_name,
                "pending": self._pending,
                "capacity": self.config.max_pending_events,
            }
        if request.op == "metrics":
            return 200, {"ok": True, "metrics": self.metrics()}
        if request.op == "trace":
            return self._trace(request)
        if request.op == "ping":
            return 200, {"ok": True, "op": "ping"}
        return 400, {"ok": False, "error": "unknown_op", "op": request.op}

    def _trace(self, request: Request) -> Tuple[int, Dict[str, object]]:
        """Window traces: ``/trace?window=ID[&query=Q]``, ``/trace/recent``.

        Framed "trace" requests (no path) return the recent listing.
        """
        if self.observability is None:
            return 404, {"ok": False, "error": "tracing_disabled"}
        tracer = self.observability.tracer
        from urllib.parse import parse_qs, urlsplit

        params = parse_qs(urlsplit(request.path).query)
        window_raw = params.get("window", [None])[0]
        if window_raw is not None:
            try:
                window_id = int(window_raw)
            except ValueError:
                return 400, {"ok": False, "error": "bad_request",
                             "detail": f"window must be an integer, got {window_raw!r}"}
            query = params.get("query", [None])[0]
            traces = tracer.get(window_id, query=query)
            if not traces:
                return 404, {"ok": False, "error": "trace_not_found",
                             "window": window_id}
            return 200, {"ok": True, "traces": [t.to_dict() for t in traces]}
        limit_raw = params.get("n", ["20"])[0]
        try:
            limit = int(limit_raw)
        except ValueError:
            return 400, {"ok": False, "error": "bad_request",
                         "detail": f"n must be an integer, got {limit_raw!r}"}
        return 200, {"ok": True, "traces": tracer.recent(limit)}

    def _admit(self, wire_events: List[object]) -> Tuple[int, Dict[str, object]]:
        """Admission: decode, check the bound, enqueue -- or push back."""
        if self._state != "serving":
            return 503, {"ok": False, "error": "draining"}
        try:
            events = wire_to_events(wire_events)
        except ProtocolError as exc:
            return 400, {"ok": False, "error": "bad_request", "detail": str(exc)}
        n = len(events)
        if n == 0:
            return 200, {"ok": True, "accepted": 0, "pending": self._pending}
        capacity = self.config.max_pending_events
        if self._pending + n > capacity:
            self.overloaded_responses += 1
            return 503, self._overloaded_payload(n, capacity)
        self._pending += n
        self.events_admitted += n
        self.batches_admitted += 1
        self._queue.put_nowait(events)
        return 200, {"ok": True, "accepted": n, "pending": self._pending}

    def _overloaded_payload(self, batch: int, capacity: int) -> Dict[str, object]:
        """The structured backpressure response (shedding on the wire)."""
        retry = self.config.retry_after_min
        if self._drain_rate is not None and self._drain_rate > 0.0:
            retry = self._pending / self._drain_rate
        retry = min(self.config.retry_after_max, max(self.config.retry_after_min, retry))
        return {
            "ok": False,
            "error": "overloaded",
            "accepted": 0,
            "batch": batch,
            "pending": self._pending,
            "capacity": capacity,
            "utilization": round(self._pending / capacity, 4),
            "retry_after": round(retry, 4),
            "shedding": self._shedding_snapshot(),
        }

    def _shedding_snapshot(self) -> Dict[str, Dict[str, object]]:
        """Per-query shedding state, as sent to overloaded clients."""
        from repro.obs.snapshot import shedding_snapshot

        return shedding_snapshot(self.pipeline)

    # ------------------------------------------------------------------
    # connection handling
    # ------------------------------------------------------------------
    @staticmethod
    def _parse_deadline_ms(raw) -> Optional[float]:
        """``deadline_ms`` field / ``X-Deadline-Ms`` header -> seconds.

        Malformed or non-positive budgets are treated as "no deadline"
        rather than rejected: the deadline is an optional client hint,
        and a bad hint must not break a request that would otherwise
        succeed.
        """
        if raw is None or isinstance(raw, bool):
            return None
        try:
            ms = float(raw)
        except (TypeError, ValueError):
            return None
        if ms <= 0.0:
            return None
        return ms / 1000.0

    @staticmethod
    def _peer_key(writer: asyncio.StreamWriter) -> str:
        peer = writer.get_extra_info("peername")
        if isinstance(peer, tuple) and peer:
            return str(peer[0])
        return str(peer) if peer else "unknown"

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self.connections_total += 1
        self.connections_active += 1
        self._writers.add(writer)
        try:
            try:
                first = await reader.readexactly(4)
            except (asyncio.IncompleteReadError, ConnectionResetError):
                return
            self.bytes_in += 4
            if first == MAGIC:
                await self._serve_framed(reader, writer)
            else:
                await self._serve_http(reader, writer, preamble=first)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self.connections_active -= 1
            self._writers.discard(writer)
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _serve_framed(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        client = self._peer_key(writer)
        while True:
            try:
                message = await read_frame(reader)
            except ProtocolError as exc:
                self.protocol_errors += 1
                await self._send_frame(
                    writer, {"ok": False, "error": "protocol_error", "detail": str(exc)}
                )
                return
            if message is None:
                return
            self.frames_in += 1
            self.bytes_in += len(json.dumps(message, separators=(",", ":")))
            op = message.get("op")
            if op == "bye":
                await self._send_frame(writer, {"ok": True, "op": "bye"})
                return
            if not isinstance(op, str):
                self.protocol_errors += 1
                await self._send_frame(
                    writer, {"ok": False, "error": "protocol_error", "detail": "missing op"}
                )
                return
            events = message.get("events", [])
            if not isinstance(events, list):
                self.protocol_errors += 1
                await self._send_frame(
                    writer,
                    {"ok": False, "error": "protocol_error", "detail": "'events' must be an array"},
                )
                return
            auth = message.get("auth")
            request = Request(
                op=op,
                client=client,
                transport="frame",
                events=events,
                auth=auth if isinstance(auth, str) else None,
                deadline=self._parse_deadline_ms(message.get("deadline_ms")),
            )
            _status, payload = self._dispatch(request)
            payload.setdefault("op", op)
            await self._send_frame(writer, payload)

    async def _send_frame(
        self, writer: asyncio.StreamWriter, payload: Dict[str, object]
    ) -> None:
        data = encode_frame(payload)
        self.frames_out += 1
        self.bytes_out += len(data)
        writer.write(data)
        await writer.drain()

    async def _serve_http(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        preamble: bytes,
    ) -> None:
        client = self._peer_key(writer)
        while True:
            try:
                request = await http_surface.read_http_request(reader, preamble)
            except ProtocolError as exc:
                self.protocol_errors += 1
                await self._send_http(
                    writer,
                    400,
                    {"ok": False, "error": "bad_request", "detail": str(exc)},
                    keep_alive=False,
                )
                return
            preamble = b""  # only the first request carries sniffed bytes
            if request is None:
                return
            self.http_requests += 1
            self.bytes_in += len(request.body)
            op, error = http_surface.route(request)
            if op is None:
                status, reason = error
                await self._send_http(
                    writer,
                    status,
                    {"ok": False, "error": reason, "path": request.path},
                    keep_alive=request.keep_alive,
                )
                if not request.keep_alive:
                    return
                continue
            events: List[object] = []
            if op == "ingest":
                try:
                    body = request.json()
                except ProtocolError as exc:
                    await self._send_http(
                        writer,
                        400,
                        {"ok": False, "error": "bad_request", "detail": str(exc)},
                        keep_alive=request.keep_alive,
                    )
                    if not request.keep_alive:
                        return
                    continue
                if isinstance(body, dict):
                    raw = body.get("events", [])
                elif isinstance(body, list):
                    raw = body  # bare array bodies are accepted too
                else:
                    raw = None
                if not isinstance(raw, list):
                    await self._send_http(
                        writer,
                        400,
                        {"ok": False, "error": "bad_request", "detail": "'events' must be an array"},
                        keep_alive=request.keep_alive,
                    )
                    if not request.keep_alive:
                        return
                    continue
                events = raw
            wire_request = Request(
                op=op,
                client=client,
                transport="http",
                events=events,
                auth=request.bearer_token(),
                path=request.path,
                deadline=self._parse_deadline_ms(
                    request.header("x-deadline-ms")
                ),
            )
            status, payload = self._dispatch(wire_request)
            if (
                op == "metrics"
                and status == 200
                and self.observability is not None
                and self._wants_prometheus_text(request)
            ):
                # content negotiation: Prometheus scrapers get the text
                # format rendered from the shared registry; JSON stays
                # the default for existing clients
                from repro.obs.exposition import CONTENT_TYPE, render_prometheus

                text = render_prometheus(self.observability.registry)
                data = http_surface.text_response(
                    200, text, content_type=CONTENT_TYPE,
                    keep_alive=request.keep_alive,
                )
                self.bytes_out += len(data)
                writer.write(data)
                await writer.drain()
                if not request.keep_alive:
                    return
                continue
            extra: Dict[str, str] = {}
            retry_after = payload.get("retry_after")
            if status in (429, 503) and isinstance(retry_after, (int, float)):
                extra["Retry-After"] = f"{retry_after:.3f}"
            await self._send_http(
                writer, status, payload, keep_alive=request.keep_alive, extra=extra
            )
            if not request.keep_alive:
                return

    @staticmethod
    def _wants_prometheus_text(request) -> bool:
        from repro.obs.exposition import wants_prometheus

        if "format=prometheus" in request.path:
            return True
        return wants_prometheus(request.header("accept"))

    async def _send_http(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: Dict[str, object],
        keep_alive: bool,
        extra: Optional[Dict[str, str]] = None,
    ) -> None:
        data = http_surface.http_response(
            status, payload, keep_alive=keep_alive, extra_headers=extra
        )
        self.bytes_out += len(data)
        writer.write(data)
        await writer.drain()

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def _register_obs_collector(self, registry):
        """Mirror the server's wire counters into the shared registry."""
        connections = registry.counter(
            "repro_server_connections_total", "TCP connections accepted"
        )
        active = registry.gauge(
            "repro_server_connections_active", "Currently open connections"
        )
        frames = registry.counter(
            "repro_server_frames_total", "RPV1 frames", labels=("direction",)
        )
        http_requests = registry.counter(
            "repro_server_http_requests_total", "HTTP requests parsed"
        )
        transferred = registry.counter(
            "repro_server_bytes_total", "Payload bytes", labels=("direction",)
        )
        admitted = registry.counter(
            "repro_server_events_admitted_total", "Events admitted to the ingest queue"
        )
        fed = registry.counter(
            "repro_server_events_fed_total", "Events fed into the pipeline"
        )
        batches = registry.counter(
            "repro_server_batches_total", "Batches admitted to the ingest queue"
        )
        overloaded = registry.counter(
            "repro_server_overloaded_total", "Batches refused with 'overloaded'"
        )
        errors = registry.counter(
            "repro_server_protocol_errors_total", "Protocol-level request errors"
        )
        pending = registry.gauge(
            "repro_server_pending_events", "Admitted-but-unfed events"
        )
        detections = registry.counter(
            "repro_server_detections_total",
            "Complex events emitted while serving",
            labels=("query",),
        )
        rejected = registry.counter(
            "repro_server_rejected_total",
            "Requests vetoed by a middleware",
            labels=("middleware",),
        )
        health_state = registry.gauge(
            "repro_server_health_state",
            "Degradation-ladder rung (0 healthy .. 3 draining)",
        )
        health_transitions = registry.counter(
            "repro_server_health_transitions_total",
            "Degradation-ladder transitions",
            labels=("from_state", "to_state"),
        )
        deadline_rejected = registry.counter(
            "repro_server_deadline_rejected_total",
            "Requests refused because their deadline was already doomed",
        )
        feed_errors = registry.counter(
            "repro_server_feed_errors_total",
            "Downstream pipeline failures absorbed by the consumer",
        )

        def collect() -> None:
            connections.labels().set_total(self.connections_total)
            active.labels().set(self.connections_active)
            frames.labels(direction="in").set_total(self.frames_in)
            frames.labels(direction="out").set_total(self.frames_out)
            http_requests.labels().set_total(self.http_requests)
            transferred.labels(direction="in").set_total(self.bytes_in)
            transferred.labels(direction="out").set_total(self.bytes_out)
            admitted.labels().set_total(self.events_admitted)
            fed.labels().set_total(self.events_fed)
            batches.labels().set_total(self.batches_admitted)
            overloaded.labels().set_total(self.overloaded_responses)
            errors.labels().set_total(self.protocol_errors)
            pending.labels().set(self._pending)
            for name, count in self._detections_by_query.items():
                detections.labels(query=name).set_total(count)
            for mw in self.middlewares:
                mw_metrics = mw.metrics()
                vetoed = mw_metrics.get("rejected", 0) + mw_metrics.get("limited", 0)
                rejected.labels(middleware=mw.name).set_total(vetoed)
            health_state.labels().set(self.health.state)
            for (old, new), count in self.health.transition_counts.items():
                health_transitions.labels(
                    from_state=HealthState.name(old),
                    to_state=HealthState.name(new),
                ).set_total(count)
            deadline_rejected.labels().set_total(self._deadline_rejections())
            feed_errors.labels().set_total(self.feed_errors)

        return registry.register_collector(collect)

    def _deadline_rejections(self) -> int:
        """Total deadline vetoes across DeadlineAdmission middlewares."""
        total = 0
        for mw in self.middlewares:
            if getattr(mw, "name", "") == "deadline":
                total += getattr(mw, "rejected", 0)
        return total

    def metrics(self) -> Dict[str, object]:
        """Wire-level counters + middleware + pipeline backpressure."""
        return {
            "state": self._state,
            "wire": {
                "connections_total": self.connections_total,
                "connections_active": self.connections_active,
                "frames_in": self.frames_in,
                "frames_out": self.frames_out,
                "http_requests": self.http_requests,
                "bytes_in": self.bytes_in,
                "bytes_out": self.bytes_out,
                "protocol_errors": self.protocol_errors,
            },
            "ingest": {
                "events_admitted": self.events_admitted,
                "events_fed": self.events_fed,
                "batches_admitted": self.batches_admitted,
                "pending": self._pending,
                "capacity": self.config.max_pending_events,
                "utilization": round(
                    self._pending / self.config.max_pending_events, 4
                ),
                "overloaded_responses": self.overloaded_responses,
                "drain_rate_eps": (
                    round(self._drain_rate, 1) if self._drain_rate is not None else None
                ),
            },
            "detections": {
                "total": self.detections,
                "by_query": dict(self._detections_by_query),
            },
            "middleware": {mw.name: mw.metrics() for mw in self.middlewares},
            "health": {
                **self.health.metrics(),
                "nonessential_rejected": self.nonessential_rejected,
                "deadline_rejected": self._deadline_rejections(),
                "feed_errors": self.feed_errors,
                "last_feed_error": self._last_feed_error,
            },
            "shedding": self._shedding_snapshot(),
            "backpressure": self.pipeline.backpressure(),
            # the same per-stage numbers Pipeline.metrics() reports
            # in-process (one snapshot code path, regression-tested)
            "pipeline": self.pipeline.metrics(),
            "observability": (
                self.observability.summary()
                if self.observability is not None
                else {"enabled": False}
            ),
        }

"""Minimal HTTP/1.1 surface of the network front door (stdlib only).

Just enough HTTP for the routes the server exposes --
``POST /ingest`` (JSON event batches), ``GET /metrics`` (JSON or
Prometheus text by content negotiation), ``GET /trace`` /
``GET /trace/recent`` (window traces) and ``GET /healthz`` -- parsed
straight off the asyncio stream reader.
Supported: ``Content-Length`` bodies, keep-alive (default on 1.1),
``Connection: close``.  Not supported (and answered with a clean
error): chunked transfer encoding, bodies beyond ``MAX_BODY``.

The server shares one listening socket between this surface and the
framed TCP protocol (:mod:`repro.serve.protocol`): a connection whose
first four bytes are not the frame magic lands here, with those bytes
re-attached to the request line.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.serve.protocol import ProtocolError

#: Hard ceiling on one request body (bounded server memory).
MAX_BODY = 8 * 1024 * 1024

#: Hard ceiling on the request line + headers block.
MAX_HEADER = 64 * 1024

STATUS_PHRASES = {
    200: "OK",
    400: "Bad Request",
    401: "Unauthorized",
    404: "Not Found",
    405: "Method Not Allowed",
    411: "Length Required",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    503: "Service Unavailable",
}


@dataclass
class HttpRequest:
    """One parsed request."""

    method: str
    path: str
    headers: Dict[str, str] = field(default_factory=dict)  # lower-cased keys
    body: bytes = b""

    def header(self, name: str, default: str = "") -> str:
        return self.headers.get(name.lower(), default)

    @property
    def keep_alive(self) -> bool:
        connection = self.header("connection").lower()
        if connection == "close":
            return False
        if connection == "keep-alive":
            return True
        return True  # HTTP/1.1 default

    def bearer_token(self) -> Optional[str]:
        """The ``Authorization: Bearer <token>`` credential, if any."""
        auth = self.header("authorization")
        if auth.lower().startswith("bearer "):
            return auth[7:].strip()
        return None

    def json(self) -> object:
        """Decode the body as JSON; raises :class:`ProtocolError`."""
        if not self.body:
            return {}
        try:
            return json.loads(self.body)
        except ValueError as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}") from exc


async def read_http_request(
    reader: asyncio.StreamReader, preamble: bytes = b""
) -> Optional[HttpRequest]:
    """Parse one request; ``None`` on EOF before a request line.

    ``preamble`` re-attaches bytes the protocol sniffer already
    consumed from the start of the connection.
    """
    line = preamble + await reader.readline()
    if not line.strip():
        return None
    if len(line) > MAX_HEADER:
        raise ProtocolError("request line too long")
    try:
        method, path, _version = line.decode("latin-1").split(None, 2)
    except ValueError as exc:
        raise ProtocolError(f"malformed request line: {line!r}") from exc

    headers: Dict[str, str] = {}
    header_bytes = 0
    while True:
        raw = await reader.readline()
        header_bytes += len(raw)
        if header_bytes > MAX_HEADER:
            raise ProtocolError("header block too large")
        if raw in (b"\r\n", b"\n", b""):
            break
        try:
            name, value = raw.decode("latin-1").split(":", 1)
        except ValueError as exc:
            raise ProtocolError(f"malformed header line: {raw!r}") from exc
        headers[name.strip().lower()] = value.strip()

    if headers.get("transfer-encoding", "").lower() == "chunked":
        raise ProtocolError("chunked transfer encoding is not supported")
    length_header = headers.get("content-length", "0")
    try:
        length = int(length_header)
    except ValueError as exc:
        raise ProtocolError(f"bad Content-Length: {length_header!r}") from exc
    if length < 0:
        raise ProtocolError(f"bad Content-Length: {length_header!r}")
    if length > MAX_BODY:
        raise ProtocolError(f"body of {length} bytes exceeds {MAX_BODY}")
    body = b""
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError as exc:
            raise ProtocolError("connection closed mid-body") from exc
    return HttpRequest(method=method.upper(), path=path, headers=headers, body=body)


def http_response(
    status: int,
    payload: Dict[str, object],
    keep_alive: bool = True,
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """Serialise one JSON response."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    phrase = STATUS_PHRASES.get(status, "Unknown")
    headers = [
        f"HTTP/1.1 {status} {phrase}",
        "Content-Type: application/json",
        f"Content-Length: {len(body)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        headers.append(f"{name}: {value}")
    return ("\r\n".join(headers) + "\r\n\r\n").encode("latin-1") + body


def text_response(
    status: int,
    body: str,
    content_type: str = "text/plain; charset=utf-8",
    keep_alive: bool = True,
    extra_headers: Optional[Dict[str, str]] = None,
) -> bytes:
    """Serialise one plain-text response (Prometheus exposition)."""
    data = body.encode("utf-8")
    phrase = STATUS_PHRASES.get(status, "Unknown")
    headers = [
        f"HTTP/1.1 {status} {phrase}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(data)}",
        f"Connection: {'keep-alive' if keep_alive else 'close'}",
    ]
    for name, value in (extra_headers or {}).items():
        headers.append(f"{name}: {value}")
    return ("\r\n".join(headers) + "\r\n\r\n").encode("latin-1") + data


def route(request: HttpRequest) -> Tuple[Optional[str], Optional[Tuple[int, str]]]:
    """Map a request to a server op.

    Returns ``(op, None)`` for a routed request or ``(None, (status,
    error))`` for an HTTP-level rejection.
    """
    path = request.path.split("?", 1)[0]
    if path == "/ingest":
        if request.method != "POST":
            return None, (405, "method_not_allowed")
        return "ingest", None
    if path == "/metrics":
        if request.method != "GET":
            return None, (405, "method_not_allowed")
        return "metrics", None
    if path == "/trace" or path.startswith("/trace/"):
        if request.method != "GET":
            return None, (405, "method_not_allowed")
        return "trace", None
    if path == "/healthz":
        if request.method not in ("GET", "HEAD"):
            return None, (405, "method_not_allowed")
        return "healthz", None
    return None, (404, "not_found")

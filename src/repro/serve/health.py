"""The server's degradation ladder: graded overload, not a cliff.

PR 4's front door had exactly two behaviours: admit, or refuse with
``overloaded``.  The ladder in between is what production middleboxes
actually do (Slick, PAPERS.md): as pressure builds the server *first*
tightens what it accepts, *then* sheds work it already accepted, and
only at the top refuses non-essential traffic outright.  Four states::

    HEALTHY ──▶ DEGRADED ──▶ OVERLOADED ──▶ DRAINING
       ▲            │             │             (terminal: stop())
       └────────────┴─────────────┘  recovery, one rung at a time

- **HEALTHY**: everything admitted, no interference.
- **DEGRADED**: queue utilization or shed rate elevated -- token
  buckets tighten (``rate_limit_factor``), non-essential ops
  (``/trace`` by default) are refused.
- **OVERLOADED**: utilization critical or downstream failures --
  shedding is raised through the coordinated-shedding hook on top of
  the tightened limits.
- **DRAINING**: entered by ``stop()`` only; nothing new is admitted.

:class:`HealthMonitor` is a pure, clock-injected state machine
(deterministic under test, R001): the server feeds it utilization /
shed-rate / failure signals and applies the per-state policy returned
by each transition.  Transitions are recorded (bounded history) and
published as the ``repro_server_health_state`` gauge plus
``repro_server_health_transitions_total`` counters.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

__all__ = ["HealthState", "HealthPolicy", "HealthMonitor"]


class HealthState:
    """The ladder's rungs, ordered by severity (gauge-friendly ints)."""

    HEALTHY = 0
    DEGRADED = 1
    OVERLOADED = 2
    DRAINING = 3

    NAMES = {
        HEALTHY: "healthy",
        DEGRADED: "degraded",
        OVERLOADED: "overloaded",
        DRAINING: "draining",
    }

    @classmethod
    def name(cls, state: int) -> str:
        return cls.NAMES[state]


@dataclass
class HealthPolicy:
    """Thresholds driving the ladder and the per-state countermeasures.

    Attributes
    ----------
    degraded_utilization / overloaded_utilization:
        Ingest-queue utilization (pending/capacity) at which the server
        climbs to DEGRADED / OVERLOADED.
    recover_utilization:
        Utilization below which the server may descend one rung (with
        hysteresis: strictly below both climb thresholds, plus dwell).
    degraded_shed_rate:
        Pipeline membership drop rate that alone justifies DEGRADED
        (shedding is already paying for overload downstream).
    failure_window / failure_threshold:
        ``failure_threshold`` downstream failures within
        ``failure_window`` seconds force OVERLOADED.
    min_dwell_seconds:
        Minimum time on a rung before descending (flap damping).
    rate_limit_factor:
        Token-bucket rate multiplier per state (HEALTHY restores 1.0).
    shed_fraction:
        Per-partition drop fraction the OVERLOADED shedding hook
        applies (of the planned partition size).
    nonessential_ops:
        Ops refused per state; anything not listed for the current
        state is admitted (DRAINING refusals are handled by the
        server's lifecycle, not here).
    """

    degraded_utilization: float = 0.60
    overloaded_utilization: float = 0.85
    recover_utilization: float = 0.40
    degraded_shed_rate: float = 0.05
    failure_window: float = 10.0
    failure_threshold: int = 3
    min_dwell_seconds: float = 1.0
    rate_limit_factor: Dict[int, float] = field(
        default_factory=lambda: {
            HealthState.HEALTHY: 1.0,
            HealthState.DEGRADED: 0.5,
            HealthState.OVERLOADED: 0.25,
            HealthState.DRAINING: 0.0,
        }
    )
    shed_fraction: float = 0.2
    nonessential_ops: Dict[int, Tuple[str, ...]] = field(
        default_factory=lambda: {
            HealthState.HEALTHY: (),
            HealthState.DEGRADED: ("trace",),
            HealthState.OVERLOADED: ("trace",),
            HealthState.DRAINING: ("trace", "ingest"),
        }
    )

    def __post_init__(self) -> None:
        if not (
            0.0
            <= self.recover_utilization
            < self.degraded_utilization
            < self.overloaded_utilization
            <= 1.0
        ):
            raise ValueError(
                "need 0 <= recover < degraded < overloaded <= 1 utilization"
            )
        if self.failure_threshold <= 0:
            raise ValueError("failure threshold must be positive")
        if not 0.0 <= self.shed_fraction <= 1.0:
            raise ValueError("shed fraction must lie in [0, 1]")


class HealthMonitor:
    """Clock-injected ladder state machine (see module docstring)."""

    __slots__ = (
        "policy",
        "_clock",
        "_state",
        "_entered_at",
        "_failures",
        "transitions",
        "transition_counts",
        "history_limit",
    )

    def __init__(
        self,
        policy: Optional[HealthPolicy] = None,
        clock: Callable[[], float] = time.monotonic,
        history_limit: int = 64,
    ) -> None:
        self.policy = policy if policy is not None else HealthPolicy()
        self._clock = clock
        self._state = HealthState.HEALTHY
        self._entered_at = clock()
        self._failures: List[float] = []  # downstream failure timestamps
        #: bounded transition history (newest last), served over the wire
        self.transitions: List[Dict[str, object]] = []
        #: (from, to) -> count, the transition-counter families' source
        self.transition_counts: Dict[Tuple[int, int], int] = {}
        self.history_limit = history_limit

    @property
    def state(self) -> int:
        return self._state

    @property
    def state_name(self) -> str:
        return HealthState.name(self._state)

    def record_failure(self) -> None:
        """Count one downstream failure (consumer exception, shard death)."""
        self._failures.append(self._clock())

    def _recent_failures(self, now: float) -> int:
        cutoff = now - self.policy.failure_window
        self._failures = [t for t in self._failures if t >= cutoff]
        return len(self._failures)

    def evaluate(
        self, utilization: float, shed_rate: float = 0.0
    ) -> Optional[Tuple[int, int]]:
        """One periodic check; returns ``(old, new)`` on a transition.

        Climbing is immediate (overload must not wait out a dwell
        timer); descending happens one rung at a time, only after
        ``min_dwell_seconds`` on the current rung and with utilization
        back under ``recover_utilization`` -- the hysteresis that keeps
        the ladder from flapping at a threshold boundary.
        """
        if self._state == HealthState.DRAINING:
            return None  # terminal: only stop() puts us here
        now = self._clock()
        policy = self.policy
        failures = self._recent_failures(now)
        target = self._state
        if (
            utilization >= policy.overloaded_utilization
            or failures >= policy.failure_threshold
        ):
            target = HealthState.OVERLOADED
        elif (
            utilization >= policy.degraded_utilization
            or shed_rate >= policy.degraded_shed_rate
        ):
            target = max(self._state, HealthState.DEGRADED)
        elif (
            self._state > HealthState.HEALTHY
            and utilization <= policy.recover_utilization
            and shed_rate < policy.degraded_shed_rate
            and failures == 0
            and now - self._entered_at >= policy.min_dwell_seconds
        ):
            target = self._state - 1  # descend one rung at a time
        if target == self._state:
            return None
        return self._transition(target, now, utilization)

    def force(self, state: int, reason: str = "forced") -> Tuple[int, int]:
        """Jump to ``state`` unconditionally (``stop()`` → DRAINING)."""
        return self._transition(state, self._clock(), None, reason=reason)

    def _transition(
        self,
        target: int,
        now: float,
        utilization: Optional[float],
        reason: str = "evaluated",
    ) -> Tuple[int, int]:
        old = self._state
        self._state = target
        self._entered_at = now
        self.transition_counts[(old, target)] = (
            self.transition_counts.get((old, target), 0) + 1
        )
        self.transitions.append(
            {
                "from": HealthState.name(old),
                "to": HealthState.name(target),
                "at": now,
                "utilization": utilization,
                "reason": reason,
            }
        )
        if len(self.transitions) > self.history_limit:
            del self.transitions[: -self.history_limit]
        return old, target

    def rate_limit_factor(self) -> float:
        """The token-bucket multiplier of the current rung."""
        return self.policy.rate_limit_factor.get(self._state, 1.0)

    def rejects_op(self, op: str) -> bool:
        """Whether the current rung refuses ``op`` as non-essential."""
        return op in self.policy.nonessential_ops.get(self._state, ())

    def metrics(self) -> Dict[str, object]:
        return {
            "state": self.state_name,
            "state_code": self._state,
            "transitions": len(self.transitions),
            "recent": self.transitions[-5:],
        }

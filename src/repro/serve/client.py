"""Minimal async client of the framed serve protocol.

Used by the tests, the serve benchmark and ``examples/serve_demo.py``;
it speaks the length-prefixed TCP protocol
(:mod:`repro.serve.protocol`) and exposes backpressure explicitly:
:meth:`ServeClient.ingest` returns the server's structured response
verbatim (an ``overloaded`` rejection included), while
:meth:`ServeClient.ingest_stream` is the well-behaved client loop --
batch, send, and on ``overloaded`` wait the server's ``retry_after``
hint before retrying, so the shedding decision made at the server
actually slows the producer down.

::

    async with await ServeClient.connect("127.0.0.1", port) as client:
        report = await client.ingest_stream(events, batch_events=64)
        print(report.overloaded_responses, "backpressure responses")
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.cep.events import Event
from repro.serve.protocol import (
    MAGIC,
    ProtocolError,
    encode_frame,
    events_to_wire,
    read_frame,
)

__all__ = ["ServeClient", "IngestReport"]


@dataclass
class IngestReport:
    """Outcome of one :meth:`ServeClient.ingest_stream` replay."""

    events_sent: int = 0
    batches_sent: int = 0
    overloaded_responses: int = 0
    retries: int = 0
    rejected: List[Dict[str, object]] = field(default_factory=list)

    @property
    def saw_backpressure(self) -> bool:
        """Whether the server pushed back at least once."""
        return self.overloaded_responses > 0


class ServeClient:
    """One framed-protocol connection to a :class:`PipelineServer`."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        auth: Optional[str] = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._auth = auth
        self.closed = False

    @classmethod
    async def connect(
        cls, host: str, port: int, auth: Optional[str] = None
    ) -> "ServeClient":
        """Open a connection and announce the framed protocol."""
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(MAGIC)
        await writer.drain()
        return cls(reader, writer, auth=auth)

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # request/response
    # ------------------------------------------------------------------
    async def request(self, message: Dict[str, object]) -> Dict[str, object]:
        """Send one frame and await its response frame."""
        if self.closed:
            raise RuntimeError("client is closed")
        if self._auth is not None:
            message.setdefault("auth", self._auth)
        self._writer.write(encode_frame(message))
        await self._writer.drain()
        response = await read_frame(self._reader)
        if response is None:
            raise ProtocolError("server closed the connection mid-request")
        return response

    async def ingest(self, events: Iterable[Event]) -> Dict[str, object]:
        """Ship one batch of events; returns the structured response.

        The response is the server's verbatim JSON: ``{"ok": true,
        "accepted": n, ...}`` on admission, or a rejection such as the
        ``overloaded`` backpressure payload (queue utilization,
        per-query shedding state, ``retry_after``).
        """
        return await self.request(
            {"op": "ingest", "events": events_to_wire(events)}
        )

    async def ingest_stream(
        self,
        events: Iterable[Event],
        batch_events: int = 64,
        max_retries: int = 100,
        retry_after_cap: float = 5.0,
    ) -> IngestReport:
        """Replay ``events`` in order, honouring server backpressure.

        Batches of ``batch_events`` are sent sequentially; an
        ``overloaded`` response waits the server's ``retry_after`` hint
        (capped) and retries the same batch, preserving stream order.
        After ``max_retries`` consecutive rejections of one batch the
        batch is recorded in ``report.rejected`` and skipped -- the
        client-side equivalent of shedding.
        """
        if batch_events <= 0:
            raise ValueError("batch size must be positive")
        report = IngestReport()
        batch: List[Event] = []

        async def ship(current: List[Event]) -> None:
            attempts = 0
            while True:
                response = await self.ingest(current)
                if response.get("ok"):
                    report.events_sent += len(current)
                    report.batches_sent += 1
                    return
                if response.get("error") != "overloaded":
                    raise ProtocolError(f"ingest rejected: {response}")
                report.overloaded_responses += 1
                attempts += 1
                if attempts > max_retries:
                    report.rejected.append(response)
                    return
                report.retries += 1
                retry_after = response.get("retry_after", 0.05)
                if not isinstance(retry_after, (int, float)) or retry_after <= 0:
                    retry_after = 0.05
                await asyncio.sleep(min(retry_after_cap, float(retry_after)))

        for event in events:
            batch.append(event)
            if len(batch) >= batch_events:
                await ship(batch)
                batch = []
        if batch:
            await ship(batch)
        return report

    async def metrics(self) -> Dict[str, object]:
        """The server's metrics tree (see ``PipelineServer.metrics``)."""
        response = await self.request({"op": "metrics"})
        if not response.get("ok"):
            raise ProtocolError(f"metrics rejected: {response}")
        return response["metrics"]

    async def ping(self) -> bool:
        """Round-trip one frame; True when the server answered ok."""
        response = await self.request({"op": "ping"})
        return bool(response.get("ok"))

    async def close(self) -> None:
        """Send ``bye`` (best effort) and close the connection."""
        if self.closed:
            return
        self.closed = True
        try:
            self._writer.write(encode_frame({"op": "bye"}))
            await self._writer.drain()
            await read_frame(self._reader)
        except (ConnectionResetError, BrokenPipeError, OSError, ProtocolError):
            pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

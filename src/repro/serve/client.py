"""Minimal async client of the framed serve protocol.

Used by the tests, the serve benchmark and ``examples/serve_demo.py``;
it speaks the length-prefixed TCP protocol
(:mod:`repro.serve.protocol`) and exposes backpressure explicitly:
:meth:`ServeClient.ingest` returns the server's structured response
verbatim (an ``overloaded`` rejection included), while
:meth:`ServeClient.ingest_stream` is the well-behaved client loop --
batch, send, and on ``overloaded`` wait the server's ``retry_after``
hint before retrying, so the shedding decision made at the server
actually slows the producer down.  The loop composes the
:mod:`repro.serve.resilience` primitives: seeded-jitter exponential
backoff between reconnect attempts, per-request timeouts, and a
circuit breaker that stops hammering a dead server; every failure is
surfaced structurally on the :class:`IngestReport` instead of raised.

::

    async with await ServeClient.connect("127.0.0.1", port) as client:
        report = await client.ingest_stream(events, batch_events=64)
        print(report.overloaded_responses, "backpressure responses")
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional

from repro.cep.events import Event
from repro.serve.protocol import (
    MAGIC,
    ProtocolError,
    encode_frame,
    events_to_wire,
    read_frame,
)

__all__ = ["ServeClient", "IngestReport"]


@dataclass
class IngestReport:
    """Outcome of one :meth:`ServeClient.ingest_stream` replay.

    ``rejected`` holds server rejections that exhausted their retries
    (or were not retryable); ``errors`` holds structured transport- and
    protocol-level failures (connection resets, truncated frames,
    timeouts) the stream absorbed or died on.  ``completed`` is False
    when the replay aborted before the last event was shipped.
    """

    events_sent: int = 0
    batches_sent: int = 0
    overloaded_responses: int = 0
    retries: int = 0
    rejected: List[Dict[str, object]] = field(default_factory=list)
    errors: List[Dict[str, object]] = field(default_factory=list)
    protocol_errors: int = 0
    reconnects: int = 0
    completed: bool = True

    @property
    def saw_backpressure(self) -> bool:
        """Whether the server pushed back at least once."""
        return self.overloaded_responses > 0


#: server rejections worth retrying: each carries (or implies) a
#: retry_after hint and clears once the server's pressure does
RETRYABLE_ERRORS = frozenset(
    {"overloaded", "busy", "rate_limited", "degraded", "deadline_exceeded"}
)


class ServeClient:
    """One framed-protocol connection to a :class:`PipelineServer`."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        auth: Optional[str] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: Optional[float] = None,
    ) -> None:
        self._reader = reader
        self._writer = writer
        self._auth = auth
        self._host = host
        self._port = port
        self._timeout = timeout
        self.closed = False

    @classmethod
    async def connect(
        cls,
        host: str,
        port: int,
        auth: Optional[str] = None,
        timeout: Optional[float] = None,
    ) -> "ServeClient":
        """Open a connection and announce the framed protocol.

        ``timeout`` bounds every response read (and reconnect attempt);
        the address is remembered so :meth:`ingest_stream` can
        reconnect after a reset when asked to.
        """
        reader, writer = await asyncio.open_connection(host, port)
        writer.write(MAGIC)
        await writer.drain()
        return cls(reader, writer, auth=auth, host=host, port=port, timeout=timeout)

    async def __aenter__(self) -> "ServeClient":
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.close()

    # ------------------------------------------------------------------
    # request/response
    # ------------------------------------------------------------------
    async def request(self, message: Dict[str, object]) -> Dict[str, object]:
        """Send one frame and await its response frame."""
        if self.closed:
            raise RuntimeError("client is closed")
        if self._auth is not None:
            message.setdefault("auth", self._auth)
        self._writer.write(encode_frame(message))
        await self._writer.drain()
        if self._timeout is not None:
            response = await asyncio.wait_for(
                read_frame(self._reader), self._timeout
            )
        else:
            response = await read_frame(self._reader)
        if response is None:
            raise ProtocolError("server closed the connection mid-request")
        return response

    async def ingest(
        self, events: Iterable[Event], deadline_ms: Optional[float] = None
    ) -> Dict[str, object]:
        """Ship one batch of events; returns the structured response.

        The response is the server's verbatim JSON: ``{"ok": true,
        "accepted": n, ...}`` on admission, or a rejection such as the
        ``overloaded`` backpressure payload (queue utilization,
        per-query shedding state, ``retry_after``).  ``deadline_ms``
        attaches the batch's remaining latency budget, which a server
        running deadline admission may refuse up front.
        """
        message: Dict[str, object] = {
            "op": "ingest",
            "events": events_to_wire(events),
        }
        if deadline_ms is not None:
            message["deadline_ms"] = deadline_ms
        return await self.request(message)

    async def _reconnect(self) -> None:
        """Re-open the connection to the remembered address.

        The new transport is established (and the protocol announced)
        before the old one is discarded, so a failed attempt leaves the
        client in its previous -- broken but consistent -- state and
        the caller's next send fails fast instead of hanging.
        """
        if self._host is None or self._port is None:
            raise RuntimeError(
                "reconnect needs a client created via ServeClient.connect()"
            )
        open_coro = asyncio.open_connection(self._host, self._port)
        if self._timeout is not None:
            reader, writer = await asyncio.wait_for(open_coro, self._timeout)
        else:
            reader, writer = await open_coro
        writer.write(MAGIC)
        await writer.drain()
        old = self._writer
        self._reader, self._writer = reader, writer
        self.closed = False
        try:
            old.close()
        except Exception:
            pass

    async def ingest_stream(
        self,
        events: Iterable[Event],
        batch_events: int = 64,
        max_retries: int = 100,
        retry_after_cap: float = 5.0,
        backoff=None,
        breaker=None,
        reconnect: bool = False,
        deadline_ms: Optional[float] = None,
    ) -> IngestReport:
        """Replay ``events`` in order, surviving pushback and faults.

        Batches of ``batch_events`` are sent sequentially.  Three
        failure classes are handled, all reported structurally on the
        returned :class:`IngestReport` instead of raised:

        - *Retryable rejections* (``overloaded``, ``busy``,
          ``rate_limited``, ``degraded``, ``deadline_exceeded``): wait
          the server's ``retry_after`` hint (capped) and retry the same
          batch, preserving stream order; after ``max_retries``
          rejections the batch lands in ``report.rejected`` and is
          skipped -- the client-side equivalent of shedding.
        - *Transport/protocol failures* (resets, truncated frames,
          timeouts): recorded in ``report.errors``; with
          ``reconnect=True`` the client re-dials (waiting
          ``backoff.delay(n)`` between attempts when an
          :class:`~repro.serve.resilience.ExponentialBackoff` is given)
          and resends the batch.  A resend is at-least-once: it is
          exact only when the failure predates the server admitting the
          batch.  Without ``reconnect`` the replay aborts
          (``report.completed`` is False).
        - *Non-retryable rejections* (``auth_failed``, ``draining``,
          ...): recorded in ``report.rejected`` and the replay aborts.

        A :class:`~repro.serve.resilience.CircuitBreaker` passed as
        ``breaker`` gates every send: transport failures open it, and
        while open the client waits out the recovery window instead of
        hammering a dead server.
        """
        if batch_events <= 0:
            raise ValueError("batch size must be positive")
        report = IngestReport()
        batch: List[Event] = []

        def retry_delay(response: Dict[str, object]) -> float:
            retry_after = response.get("retry_after", 0.05)
            if not isinstance(retry_after, (int, float)) or retry_after <= 0:
                retry_after = 0.05
            return min(retry_after_cap, float(retry_after))

        async def ship(current: List[Event]) -> bool:
            """Deliver one batch; False aborts the stream."""
            attempts = 0
            while True:
                if breaker is not None and not breaker.allow():
                    attempts += 1
                    if attempts > max_retries:
                        report.completed = False
                        report.errors.append(
                            {
                                "error": "circuit_open",
                                "batch_events": len(current),
                            }
                        )
                        return False
                    await asyncio.sleep(
                        min(retry_after_cap, breaker.recovery_timeout)
                    )
                    continue
                try:
                    response = await self.ingest(
                        current, deadline_ms=deadline_ms
                    )
                except (
                    ProtocolError,
                    asyncio.TimeoutError,
                    asyncio.IncompleteReadError,
                    ConnectionError,
                    OSError,
                ) as exc:
                    if isinstance(exc, ProtocolError):
                        report.protocol_errors += 1
                    report.errors.append(
                        {
                            "error": (
                                "protocol_error"
                                if isinstance(exc, ProtocolError)
                                else "transport_error"
                            ),
                            "type": type(exc).__name__,
                            "detail": str(exc),
                            "batch_events": len(current),
                        }
                    )
                    if breaker is not None:
                        breaker.record_failure()
                    attempts += 1
                    if not reconnect or attempts > max_retries:
                        report.completed = False
                        return False
                    report.retries += 1
                    delay = (
                        backoff.delay(attempts - 1)
                        if backoff is not None
                        else 0.05
                    )
                    await asyncio.sleep(min(retry_after_cap, delay))
                    try:
                        await self._reconnect()
                        report.reconnects += 1
                    except (asyncio.TimeoutError, OSError):
                        pass  # next send fails fast, consuming a retry
                    continue
                if response.get("ok"):
                    if breaker is not None:
                        breaker.record_success()
                    report.events_sent += len(current)
                    report.batches_sent += 1
                    return True
                error = response.get("error")
                if error == "overloaded":
                    report.overloaded_responses += 1
                if error in RETRYABLE_ERRORS:
                    if breaker is not None:
                        # pushback is a live, answering server
                        breaker.record_success()
                    attempts += 1
                    if attempts > max_retries:
                        report.rejected.append(response)
                        return True
                    report.retries += 1
                    await asyncio.sleep(retry_delay(response))
                    continue
                report.rejected.append(response)
                report.completed = False
                return False

        for event in events:
            batch.append(event)
            if len(batch) >= batch_events:
                if not await ship(batch):
                    return report
                batch = []
        if batch:
            if not await ship(batch):
                return report
        return report

    async def metrics(self) -> Dict[str, object]:
        """The server's metrics tree (see ``PipelineServer.metrics``)."""
        response = await self.request({"op": "metrics"})
        if not response.get("ok"):
            raise ProtocolError(f"metrics rejected: {response}")
        return response["metrics"]

    async def ping(self) -> bool:
        """Round-trip one frame; True when the server answered ok."""
        response = await self.request({"op": "ping"})
        return bool(response.get("ok"))

    async def close(self) -> None:
        """Send ``bye`` (best effort) and close the connection."""
        if self.closed:
            return
        self.closed = True
        try:
            self._writer.write(encode_frame({"op": "bye"}))
            await self._writer.drain()
            await read_frame(self._reader)
        except (ConnectionResetError, BrokenPipeError, OSError, ProtocolError):
            pass
        try:
            self._writer.close()
            await self._writer.wait_closed()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass

"""Connection-level middleware of the network front door.

The serve subsystem applies the same middleware idiom the pipeline
applies to events (:mod:`repro.pipeline.stages`) one layer further out,
at the *request* level -- the ``setup_middleware`` + ``Limiter(
key_func=...)`` shape of production FastAPI/slowapi stacks, stdlib
only.  Every request decoded from the wire (framed TCP or HTTP, see
:mod:`repro.serve.server`) is threaded through an ordered chain of
:class:`ServerMiddleware` objects before it reaches the pipeline:

- :class:`TokenBucketLimiter` -- per-client token-bucket rate limiting
  (``key_func`` picks the bucket key, default: peer address);
- :class:`SharedSecretAuth` -- shared-secret request authentication
  (``Authorization: Bearer <secret>`` over HTTP, ``"auth"`` field in
  framed requests);
- :class:`RequestLogMiddleware` -- request accounting plus optional
  stdlib logging;
- :class:`MaxInFlight` -- admission control on concurrently processed
  requests.

A middleware rejects a request by returning a :class:`Rejection`
(carrying the HTTP status its error maps to); ``None`` passes the
request on.  ``on_response`` fires -- in reverse order, for every
middleware that saw the request -- once the response is known, which
is where in-flight accounting releases its slot.

Each middleware registers itself via ``setup_middleware(server)``; the
module-level :func:`setup_middleware` applies a whole stack in order.
"""

from __future__ import annotations

import hmac
import logging
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "Request",
    "Rejection",
    "ServerMiddleware",
    "TokenBucketLimiter",
    "SharedSecretAuth",
    "RequestLogMiddleware",
    "MaxInFlight",
    "setup_middleware",
]


@dataclass
class Request:
    """One decoded wire request, as middleware sees it.

    ``events`` stays in wire form (a list of JSON objects): middleware
    runs *before* event decoding, so a rejected flood never pays the
    decode cost.
    """

    op: str  #: "ingest" | "metrics" | "healthz" | "ping"
    client: str  #: peer key, e.g. "127.0.0.1" (port-less)
    transport: str  #: "frame" | "http"
    events: List[object] = field(default_factory=list)
    auth: Optional[str] = None
    path: str = ""  #: HTTP path ("" for framed requests)
    #: remaining client budget in seconds (``deadline_ms`` frame field /
    #: ``X-Deadline-Ms`` header); None = no deadline attached
    deadline: Optional[float] = None


@dataclass
class Rejection:
    """A middleware veto: the structured error sent back to the client."""

    error: str  #: machine-readable, e.g. "rate_limited"
    status: int  #: HTTP status the error maps to (429, 401, 503, ...)
    detail: Dict[str, object] = field(default_factory=dict)

    def payload(self) -> Dict[str, object]:
        """The JSON body of the rejection response."""
        body: Dict[str, object] = {"ok": False, "error": self.error}
        body.update(self.detail)
        return body


class ServerMiddleware:
    """Base middleware: ``on_request`` / ``on_response`` / ``metrics``."""

    #: Stable name used as the metrics key; subclasses override.
    name: str = "middleware"

    def setup_middleware(self, server) -> "ServerMiddleware":
        """Register this middleware on ``server`` (returns self)."""
        server.add_middleware(self)
        return self

    def on_request(self, request: Request) -> Optional[Rejection]:
        """Inspect ``request``; return a :class:`Rejection` to veto it."""
        return None

    def on_response(self, request: Request, response: Dict[str, object]) -> None:
        """Observe the response (fires even when a later middleware or
        the server itself rejected the request)."""

    def metrics(self) -> Dict[str, object]:
        return {}


class TokenBucketLimiter(ServerMiddleware):
    """Per-client token-bucket rate limiting (requests/second).

    One bucket per ``key_func(request)`` -- the slowapi
    ``Limiter(key_func=get_remote_address)`` idiom; the default key is
    the peer address, so each client host gets its own budget.  Only
    the ops in ``ops`` consume tokens (metrics/health probes stay
    free by default).  ``clock`` is injectable for deterministic tests.
    """

    name = "rate_limit"

    def __init__(
        self,
        rate: float,
        burst: Optional[float] = None,
        key_func: Optional[Callable[[Request], str]] = None,
        ops: Tuple[str, ...] = ("ingest",),
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0.0:
            raise ValueError("rate must be positive")
        self.rate = rate
        self.burst = burst if burst is not None else max(1.0, rate)
        if self.burst < 1.0:
            raise ValueError("burst must allow at least one request")
        self.key_func = key_func if key_func is not None else (lambda r: r.client)
        self.ops = ops
        self.clock = clock
        self._buckets: Dict[str, Tuple[float, float]] = {}  # key -> (tokens, last)
        self.passed = 0
        self.limited = 0
        #: degradation-ladder multiplier on the refill rate (1.0 =
        #: healthy); the server's health monitor tightens it on the way
        #: up the ladder and restores it on recovery
        self.pressure_factor = 1.0

    def set_pressure(self, factor: float) -> None:
        """Scale the effective refill rate (health-ladder tightening)."""
        if factor < 0.0:
            raise ValueError("pressure factor must be non-negative")
        self.pressure_factor = factor

    @property
    def effective_rate(self) -> float:
        return self.rate * self.pressure_factor

    def on_request(self, request: Request) -> Optional[Rejection]:
        if request.op not in self.ops:
            return None
        key = self.key_func(request)
        now = self.clock()
        tokens, last = self._buckets.get(key, (self.burst, now))
        tokens = min(self.burst, tokens + (now - last) * self.effective_rate)
        # epsilon absorbs float drift from repeated elapsed-time sums
        if tokens >= 1.0 - 1e-9:
            self._buckets[key] = (max(0.0, tokens - 1.0), now)
            self.passed += 1
            return None
        self._buckets[key] = (tokens, now)
        self.limited += 1
        refill = self.effective_rate
        retry_after = (1.0 - tokens) / refill if refill > 0.0 else 60.0
        return Rejection(
            error="rate_limited",
            status=429,
            detail={"retry_after": round(retry_after, 4)},
        )

    def metrics(self) -> Dict[str, object]:
        return {
            "passed": self.passed,
            "limited": self.limited,
            "clients": len(self._buckets),
            "pressure_factor": self.pressure_factor,
        }


class SharedSecretAuth(ServerMiddleware):
    """Shared-secret request authentication.

    Framed requests carry the secret in their ``"auth"`` field; HTTP
    requests in ``Authorization: Bearer <secret>``.  Comparison is
    constant-time.  Health probes are exempt by default so liveness
    checks need no credentials.
    """

    name = "auth"

    def __init__(self, secret: str, exempt: Tuple[str, ...] = ("healthz",)) -> None:
        if not secret:
            raise ValueError("secret must be non-empty")
        self._secret = secret
        self.exempt = exempt
        self.accepted = 0
        self.rejected = 0

    def on_request(self, request: Request) -> Optional[Rejection]:
        if request.op in self.exempt:
            return None
        supplied = request.auth or ""
        if hmac.compare_digest(supplied.encode(), self._secret.encode()):
            self.accepted += 1
            return None
        self.rejected += 1
        return Rejection(error="auth_failed", status=401)

    def metrics(self) -> Dict[str, object]:
        return {"accepted": self.accepted, "rejected": self.rejected}


class RequestLogMiddleware(ServerMiddleware):
    """Request accounting per op and client, with optional logging.

    With a metrics ``registry`` (see :class:`repro.obs.Registry`) the
    middleware also publishes a ``repro_server_requests_total{op,
    transport}`` counter and a ``repro_server_request_seconds{op}``
    latency histogram -- the structured twin of its log lines, scraped
    from ``GET /metrics`` with everything else.  Request/response hooks
    run back to back inside one synchronous dispatch, so a single
    start-time slot is race-free.
    """

    name = "request_log"

    def __init__(
        self,
        logger: Optional[logging.Logger] = None,
        level: int = logging.INFO,
        registry=None,
    ) -> None:
        self.logger = logger
        self.level = level
        self.requests = 0
        self.by_op: Dict[str, int] = {}
        self.by_client: Dict[str, int] = {}
        self.errors = 0
        self._started: Optional[float] = None
        self._requests_total = None
        self._request_seconds = None
        if registry is not None:
            self._requests_total = registry.counter(
                "repro_server_requests_total",
                "Requests seen by the front door",
                labels=("op", "transport"),
            )
            self._request_seconds = registry.histogram(
                "repro_server_request_seconds",
                "Middleware-to-response wall time of one request",
                labels=("op",),
            )

    def on_request(self, request: Request) -> Optional[Rejection]:
        self.requests += 1
        self.by_op[request.op] = self.by_op.get(request.op, 0) + 1
        self.by_client[request.client] = self.by_client.get(request.client, 0) + 1
        if self._requests_total is not None:
            self._requests_total.labels(
                op=request.op, transport=request.transport
            ).inc()
            self._started = time.perf_counter()
        if self.logger is not None:
            self.logger.log(
                self.level,
                "%s %s from %s (%d events)",
                request.transport,
                request.op,
                request.client,
                len(request.events),
            )
        return None

    def on_response(self, request: Request, response: Dict[str, object]) -> None:
        if self._request_seconds is not None and self._started is not None:
            self._request_seconds.labels(op=request.op).observe(
                time.perf_counter() - self._started
            )
            self._started = None
        if not response.get("ok", False):
            self.errors += 1
            if self.logger is not None:
                self.logger.log(
                    self.level,
                    "%s %s from %s -> %s",
                    request.transport,
                    request.op,
                    request.client,
                    response.get("error"),
                )

    def metrics(self) -> Dict[str, object]:
        return {
            "requests": self.requests,
            "errors": self.errors,
            "by_op": dict(self.by_op),
            "clients": len(self.by_client),
        }


class MaxInFlight(ServerMiddleware):
    """Admission control: at most ``limit`` requests processed at once.

    The slot is taken in ``on_request`` and released in
    ``on_response`` -- the server guarantees the response hook fires
    for every middleware whose request hook ran, so the counter cannot
    leak even when a later middleware (or the ingest queue) rejects.
    """

    name = "max_in_flight"

    def __init__(self, limit: int, ops: Tuple[str, ...] = ("ingest",)) -> None:
        if limit <= 0:
            raise ValueError("in-flight limit must be positive")
        self.limit = limit
        self.ops = ops
        self.in_flight = 0
        self.peak = 0
        self.admitted = 0
        self.rejected = 0

    def on_request(self, request: Request) -> Optional[Rejection]:
        if request.op not in self.ops:
            return None
        if self.in_flight >= self.limit:
            self.rejected += 1
            return Rejection(
                error="busy",
                status=503,
                detail={"in_flight": self.in_flight, "limit": self.limit},
            )
        self.in_flight += 1
        self.peak = max(self.peak, self.in_flight)
        self.admitted += 1
        return None

    def on_response(self, request: Request, response: Dict[str, object]) -> None:
        if request.op in self.ops and response.get("error") != "busy":
            self.in_flight -= 1

    def metrics(self) -> Dict[str, object]:
        return {
            "limit": self.limit,
            "in_flight": self.in_flight,
            "peak": self.peak,
            "admitted": self.admitted,
            "rejected": self.rejected,
        }


def setup_middleware(server, middlewares: List[ServerMiddleware]):
    """Register a whole middleware stack on ``server``, in order.

    Order matters exactly like in web frameworks: e.g. put auth before
    the rate limiter to keep unauthenticated floods from draining
    authenticated clients' buckets, or after it to make auth itself
    rate-limited.
    """
    for middleware in middlewares:
        middleware.setup_middleware(server)
    return server

"""Wire protocol of the network front door: framing and event codec.

Two surfaces share one listening socket (see
:class:`repro.serve.server.PipelineServer`):

- the **framed TCP protocol**: the client opens a connection, sends the
  4-byte magic ``RPV1`` once, and from then on both directions exchange
  *frames* -- a 4-byte big-endian unsigned length followed by a UTF-8
  JSON object.  Requests carry an ``op`` (``ingest``, ``metrics``,
  ``ping``, ``bye``) and responses echo it with an ``ok`` flag;
- the **HTTP/1.1 surface** (:mod:`repro.serve.http`): any connection
  whose first bytes are not the magic is parsed as HTTP.

Events travel as compact JSON objects -- ``{"t": type, "s": seq,
"ts": timestamp, "a": attrs}`` -- and round-trip losslessly through
:func:`event_to_wire` / :func:`wire_to_event` (JSON doubles preserve
Python floats exactly), which is what lets detections over the wire
stay bit-identical to an in-process replay.
"""

from __future__ import annotations

import asyncio
import json
from typing import Dict, Iterable, List, Optional

from repro.cep.events import Event

#: Connection preamble announcing the framed protocol.
MAGIC = b"RPV1"

#: Hard ceiling on one frame's JSON body (bounded server memory).
MAX_FRAME = 8 * 1024 * 1024


class ProtocolError(Exception):
    """A malformed frame, event or request on the wire."""


# ----------------------------------------------------------------------
# frames
# ----------------------------------------------------------------------
def encode_frame(payload: Dict[str, object]) -> bytes:
    """One wire frame: 4-byte big-endian length + JSON body."""
    body = json.dumps(payload, separators=(",", ":")).encode("utf-8")
    if len(body) > MAX_FRAME:
        raise ProtocolError(f"frame of {len(body)} bytes exceeds {MAX_FRAME}")
    return len(body).to_bytes(4, "big") + body


async def read_frame(reader: asyncio.StreamReader) -> Optional[Dict[str, object]]:
    """Read one frame; ``None`` on a clean EOF between frames."""
    try:
        header = await reader.readexactly(4)
    except (asyncio.IncompleteReadError, ConnectionResetError):
        return None
    length = int.from_bytes(header, "big")
    if length > MAX_FRAME:
        raise ProtocolError(f"frame of {length} bytes exceeds {MAX_FRAME}")
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError("connection closed mid-frame") from exc
    try:
        payload = json.loads(body)
    except ValueError as exc:
        raise ProtocolError(f"frame body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("frame body must be a JSON object")
    return payload


# ----------------------------------------------------------------------
# event codec
# ----------------------------------------------------------------------
def event_to_wire(event: Event) -> Dict[str, object]:
    """Compact JSON form of one primitive event."""
    wire: Dict[str, object] = {
        "t": event.event_type,
        "s": event.seq,
        "ts": event.timestamp,
    }
    if event.attrs:
        wire["a"] = event.attrs
    return wire


def wire_to_event(obj: object) -> Event:
    """Decode one wire event; raises :class:`ProtocolError` on bad shape."""
    if not isinstance(obj, dict):
        raise ProtocolError(f"event must be a JSON object, got {type(obj).__name__}")
    try:
        event_type = obj["t"]
        seq = obj["s"]
        timestamp = obj["ts"]
    except KeyError as exc:
        raise ProtocolError(f"event missing field {exc.args[0]!r}") from exc
    if not isinstance(event_type, str):
        raise ProtocolError("event type must be a string")
    if not isinstance(seq, int) or isinstance(seq, bool):
        raise ProtocolError("event seq must be an integer")
    if not isinstance(timestamp, (int, float)) or isinstance(timestamp, bool):
        raise ProtocolError("event timestamp must be a number")
    attrs = obj.get("a", {})
    if not isinstance(attrs, dict):
        raise ProtocolError("event attrs must be a JSON object")
    return Event(event_type, seq, float(timestamp), attrs)


def events_to_wire(events: Iterable[Event]) -> List[Dict[str, object]]:
    """Encode a slice of the stream for one ingest request."""
    return [event_to_wire(event) for event in events]


def wire_to_events(objs: object) -> List[Event]:
    """Decode an ingest request's event list, preserving order."""
    if not isinstance(objs, list):
        raise ProtocolError("'events' must be a JSON array")
    return [wire_to_event(obj) for obj in objs]

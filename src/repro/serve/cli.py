"""``repro-serve``: serve a trained pipeline over TCP/HTTP.

The console entry point of the serve subsystem: builds a pipeline for
one of the evaluation queries, trains it on a synthetic stream slice,
deploys the selected shedding strategy, wires the standard middleware
stack from flags, and serves until SIGINT/SIGTERM -- at which point it
drains gracefully (stop accepting, flush the micro-batch and still-open
windows, emit final detections) and prints the final metrics as JSON.

::

    repro-serve --port 7807 --shedder espice --f 0.8 \\
        --rate-limit 5000 --auth-secret s3cret --max-pending 65536

``--shards N`` serves a fault-tolerant ``ShardedPipeline`` instead of
the in-process pipeline: N forked worker processes behind the same
front door, with worker respawn and exactly-once replay on failure.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from typing import List, Optional

from repro.datasets import SoccerStreamConfig, generate_soccer_stream, split_stream
from repro.pipeline import Pipeline
from repro.queries import build_q1
from repro.serve.middleware import (
    MaxInFlight,
    RequestLogMiddleware,
    ServerMiddleware,
    SharedSecretAuth,
    TokenBucketLimiter,
)
from repro.serve.server import PipelineServer, ServeConfig


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve an eSPICE pipeline over framed TCP + HTTP/1.1",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=7807, help="bind port (0=ephemeral)")
    parser.add_argument(
        "--pattern-size", type=int, default=3, help="Q1 pattern size n (default 3)"
    )
    parser.add_argument(
        "--window", type=float, default=15.0, help="Q1 window seconds (default 15)"
    )
    parser.add_argument(
        "--train-seconds",
        type=float,
        default=600.0,
        help="synthetic soccer stream length used for training",
    )
    parser.add_argument(
        "--shedder",
        default="none",
        help="shedding strategy (espice/bl/integral/random/none)",
    )
    parser.add_argument("--f", type=float, default=0.8, help="shedding trigger fraction")
    parser.add_argument(
        "--latency-bound", type=float, default=1.0, help="latency bound LB seconds"
    )
    parser.add_argument(
        "--batch-size", type=int, default=64, help="pipeline micro-batch size"
    )
    parser.add_argument(
        "--linger", type=float, default=0.0, help="micro-batch linger seconds"
    )
    parser.add_argument(
        "--max-pending",
        type=int,
        default=65536,
        help="ingest queue bound in events (backpressure threshold)",
    )
    parser.add_argument(
        "--rate-limit",
        type=float,
        default=None,
        help="per-client ingest requests/second (token bucket)",
    )
    parser.add_argument(
        "--burst", type=float, default=None, help="token bucket burst size"
    )
    parser.add_argument(
        "--auth-secret",
        default=None,
        help="require this shared secret on every request",
    )
    parser.add_argument(
        "--max-in-flight",
        type=int,
        default=None,
        help="max concurrently processed ingest requests",
    )
    parser.add_argument(
        "--obs",
        action="store_true",
        help=(
            "enable unified observability: instrumented pipeline metrics, "
            "window tracing with shed explanations, Prometheus /metrics "
            "and the /trace endpoints"
        ),
    )
    parser.add_argument(
        "--trace-capacity",
        type=int,
        default=512,
        help="window traces kept in the ring buffer (with --obs)",
    )
    parser.add_argument(
        "--trace-explanations",
        type=int,
        default=8,
        help="shed explanations kept per window trace (with --obs)",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=0,
        help=(
            "serve a fault-tolerant ShardedPipeline with this many "
            "worker processes (0 = in-process pipeline)"
        ),
    )
    parser.add_argument(
        "--quiet", action="store_true", help="skip the startup banner"
    )
    return parser


def build_pipeline(args: argparse.Namespace) -> Pipeline:
    """Train-and-deploy the served pipeline from CLI flags."""
    stream = generate_soccer_stream(
        SoccerStreamConfig(duration_seconds=args.train_seconds)
    )
    train, _live = split_stream(stream, train_fraction=0.5)
    builder = (
        Pipeline.builder()
        .query(build_q1(pattern_size=args.pattern_size, window_seconds=args.window))
        .latency_bound(args.latency_bound)
        .batch(args.batch_size, args.linger)
    )
    if args.shedder != "none":
        builder.shedder(args.shedder, f=args.f)
    pipeline = builder.build()
    if args.shedder != "none":
        pipeline.train(train)
        pipeline.deploy()
    return pipeline


def build_observability(args: argparse.Namespace):
    """The shared observability bundle, or ``None`` without ``--obs``."""
    if not getattr(args, "obs", False):
        return None
    from repro.obs import Observability

    return Observability(
        trace_capacity=args.trace_capacity,
        max_explanations=args.trace_explanations,
    )


def build_middleware(
    args: argparse.Namespace, observability=None
) -> List[ServerMiddleware]:
    """The standard stack, in request order: auth, limiter, gate, log."""
    stack: List[ServerMiddleware] = []
    if args.auth_secret:
        stack.append(SharedSecretAuth(args.auth_secret))
    if args.rate_limit is not None:
        stack.append(TokenBucketLimiter(args.rate_limit, burst=args.burst))
    if args.max_in_flight is not None:
        stack.append(MaxInFlight(args.max_in_flight))
    stack.append(
        RequestLogMiddleware(
            registry=observability.registry if observability is not None else None
        )
    )
    return stack


async def _serve(args: argparse.Namespace) -> dict:
    pipeline = build_pipeline(args)
    if args.shards > 0:
        from repro.cluster import ShardedPipeline

        pipeline = ShardedPipeline(
            pipeline, shards=args.shards, fault_tolerant=True
        )
    observability = build_observability(args)
    server = PipelineServer(
        pipeline,
        config=ServeConfig(
            host=args.host, port=args.port, max_pending_events=args.max_pending
        ),
        middleware=build_middleware(args, observability),
        observability=observability,
    )
    await server.start()
    if not args.quiet:
        routes = "POST /ingest, GET /metrics, GET /healthz"
        if observability is not None:
            routes += ", GET /trace"
        print(
            f"repro-serve listening on {args.host}:{server.port} "
            f"(framed TCP + HTTP: {routes}); "
            f"shedder={args.shedder} max_pending={args.max_pending}"
            f"{f' shards={args.shards}' if args.shards > 0 else ''}"
            f"{' obs=on' if observability is not None else ''}",
            flush=True,
        )
    stop_requested = asyncio.Event()
    loop = asyncio.get_running_loop()
    for sig in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(sig, stop_requested.set)
        except (NotImplementedError, RuntimeError):  # pragma: no cover
            pass
    await stop_requested.wait()
    if not args.quiet:
        print("repro-serve: draining...", flush=True)
    final = await server.stop()
    metrics = server.metrics()
    if args.shards > 0:
        metrics["cluster"] = {
            "shards": len(pipeline.snapshot().shards),
            "restarts": pipeline.snapshot().restarts,
        }
        pipeline.shutdown()
    metrics["final_flush_detections"] = {
        name: len(events) for name, events in final.items()
    }
    return metrics


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        metrics = asyncio.run(_serve(args))
    except KeyboardInterrupt:  # pragma: no cover - signal race at shutdown
        return 0
    json.dump(metrics, sys.stdout, indent=2, default=str)
    print()
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())

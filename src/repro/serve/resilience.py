"""Client-side resilience primitives: backoff and circuit breaking.

A replay harness pointed at a real server must survive the server
being slow, restarting, or resetting connections mid-stream.  The two
primitives here are deliberately pure state machines -- no sleeping, no
I/O -- so :class:`repro.serve.client.ServeClient` composes them into
its retry loop while the unit tests drive them exhaustively with a
fake clock and a seeded RNG (determinism rules R001/R002):

- :class:`ExponentialBackoff` computes the wait before retry ``n``:
  ``base * factor**n`` capped at ``cap``, plus a proportional jitter
  drawn from a *seeded* RNG (full-jitter spreads synchronized retry
  herds without sacrificing replayability);
- :class:`CircuitBreaker` is the classic closed → open → half-open
  machine: ``failure_threshold`` consecutive failures open the
  circuit, calls are refused until ``recovery_timeout`` elapsed, then
  exactly one probe is allowed through (half-open); its success closes
  the circuit, its failure re-opens it and re-arms the timer.
"""

from __future__ import annotations

import random
import time
from typing import Callable, Dict, Optional

__all__ = ["ExponentialBackoff", "CircuitBreaker"]


class ExponentialBackoff:
    """Seeded-jitter exponential backoff schedule.

    ``delay(attempt)`` for attempt 0, 1, 2, ... is
    ``min(cap, base * factor**attempt)`` plus up to ``jitter`` of that
    value, drawn from a private :class:`random.Random` seeded at
    construction -- two schedules built with the same seed produce the
    same delays (R002: no global, unseeded randomness).
    """

    __slots__ = ("base", "factor", "cap", "jitter", "_rng")

    def __init__(
        self,
        base: float = 0.05,
        factor: float = 2.0,
        cap: float = 5.0,
        jitter: float = 0.5,
        seed: int = 0,
    ) -> None:
        if base <= 0.0:
            raise ValueError("base delay must be positive")
        if factor < 1.0:
            raise ValueError("factor must be >= 1")
        if cap < base:
            raise ValueError("cap must be >= base")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must lie in [0, 1]")
        self.base = base
        self.factor = factor
        self.cap = cap
        self.jitter = jitter
        self._rng = random.Random(seed)

    def backoff(self, attempt: int) -> float:
        """The deterministic (jitter-free) delay before retry ``attempt``."""
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        return min(self.cap, self.base * self.factor**attempt)

    def delay(self, attempt: int) -> float:
        """The jittered delay before retry ``attempt`` (monotone base)."""
        backoff = self.backoff(attempt)
        if self.jitter == 0.0:
            return backoff
        return backoff * (1.0 + self.jitter * self._rng.random())


class CircuitBreaker:
    """Closed/open/half-open circuit breaker (a pure state machine).

    Protocol: call :meth:`allow` before attempting the guarded
    operation; on ``False`` do not attempt it (the circuit is open or a
    half-open probe is already in flight).  Report the outcome with
    :meth:`record_success` / :meth:`record_failure`.  The ``clock`` is
    injectable (fake clocks in tests, R001); only the recovery timer
    reads it.
    """

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    __slots__ = (
        "failure_threshold",
        "recovery_timeout",
        "_clock",
        "_state",
        "_consecutive_failures",
        "_opened_at",
        "_probe_in_flight",
        "opens",
        "rejected_calls",
    )

    def __init__(
        self,
        failure_threshold: int = 5,
        recovery_timeout: float = 1.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if failure_threshold <= 0:
            raise ValueError("failure threshold must be positive")
        if recovery_timeout <= 0.0:
            raise ValueError("recovery timeout must be positive")
        self.failure_threshold = failure_threshold
        self.recovery_timeout = recovery_timeout
        self._clock = clock
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._probe_in_flight = False
        self.opens = 0
        self.rejected_calls = 0

    @property
    def state(self) -> str:
        """Current state, with the open → half-open timer applied."""
        if (
            self._state == self.OPEN
            and self._opened_at is not None
            and self._clock() - self._opened_at >= self.recovery_timeout
        ):
            self._state = self.HALF_OPEN
            self._probe_in_flight = False
        return self._state

    def allow(self) -> bool:
        """Whether the next call may proceed (claims the probe slot)."""
        state = self.state
        if state == self.CLOSED:
            return True
        if state == self.HALF_OPEN and not self._probe_in_flight:
            # exactly one probe per half-open period
            self._probe_in_flight = True
            return True
        self.rejected_calls += 1
        return False

    def record_success(self) -> None:
        """The guarded call succeeded: close and reset the circuit."""
        self._state = self.CLOSED
        self._consecutive_failures = 0
        self._opened_at = None
        self._probe_in_flight = False

    def record_failure(self) -> None:
        """The guarded call failed: count, and open past the threshold."""
        if self.state == self.HALF_OPEN:
            # the probe failed: straight back to open, timer re-armed
            self._trip()
            return
        self._consecutive_failures += 1
        if (
            self._state == self.CLOSED
            and self._consecutive_failures >= self.failure_threshold
        ):
            self._trip()

    def _trip(self) -> None:
        self._state = self.OPEN
        self._opened_at = self._clock()
        self._probe_in_flight = False
        self._consecutive_failures = 0
        self.opens += 1

    def metrics(self) -> Dict[str, object]:
        return {
            "state": self.state,
            "opens": self.opens,
            "rejected_calls": self.rejected_calls,
        }

"""Deadline-aware admission: reject-early instead of queueing doomed work.

The paper's whole argument is that work whose latency bound cannot be
met should be dropped *before* it wastes operator cycles.  This
middleware moves that argument to the network edge: a request may carry
its remaining budget (``deadline_ms`` field on framed requests,
``X-Deadline-Ms`` header over HTTP) and the server estimates -- from
live signals, not guesses -- how long an admitted batch would wait
before the pipeline even sees it:

    estimated_wait = pending_events / drain_rate  (the consumer's EMA)
                   + service quantile              (obs latency histogram)

A request whose budget is smaller than that estimate is refused
immediately with a structured ``deadline_exceeded`` response carrying
``retry_after`` (the estimate itself, clamped), so a well-behaved
client backs off instead of queueing work that will blow its bound --
the queueing-latency half of ``l(e) = l(q) + l(p)`` enforced at the
front door.

Requests without a deadline are untouched; the middleware is additive.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from repro.serve.middleware import Rejection, Request, ServerMiddleware

__all__ = ["DeadlineAdmission"]


class DeadlineAdmission(ServerMiddleware):
    """Reject requests whose deadline the queue would already blow.

    Parameters
    ----------
    estimator:
        Zero-arg callable returning the estimated wait (seconds) an
        admitted batch faces.  When omitted, :meth:`setup_middleware`
        wires the owning server's :meth:`~repro.serve.server.
        PipelineServer.estimated_wait` (queue-wait from the drain-rate
        EMA plus the request-latency histogram quantile).
    safety_factor:
        Multiplier on the estimate before comparison (``> 1`` rejects
        earlier; deadline enforcement should err on the side of the
        bound, like the paper's ``f`` fraction of ``qmax``).
    ops:
        Ops the deadline applies to (ingest only by default; metadata
        probes are cheap enough to always answer).
    """

    name = "deadline"

    def __init__(
        self,
        estimator: Optional[Callable[[], float]] = None,
        safety_factor: float = 1.0,
        ops=("ingest",),
    ) -> None:
        if safety_factor <= 0.0:
            raise ValueError("safety factor must be positive")
        self._estimator = estimator
        self.safety_factor = safety_factor
        self.ops = ops
        self.admitted = 0
        self.rejected = 0
        self.no_deadline = 0

    def setup_middleware(self, server) -> "DeadlineAdmission":
        if self._estimator is None:
            self._estimator = server.estimated_wait
        server.add_middleware(self)
        return self

    def on_request(self, request: Request) -> Optional[Rejection]:
        if request.op not in self.ops:
            return None
        if request.deadline is None:
            self.no_deadline += 1
            return None
        estimate = self._estimator() if self._estimator is not None else 0.0
        needed = estimate * self.safety_factor
        if needed <= request.deadline:
            self.admitted += 1
            return None
        self.rejected += 1
        return Rejection(
            error="deadline_exceeded",
            status=504,
            detail={
                "deadline": round(request.deadline, 4),
                "estimated_wait": round(estimate, 4),
                # when the queue drains, the estimate shrinks with it:
                # the wait estimate is itself the soonest useful retry
                "retry_after": round(max(0.001, estimate), 4),
            },
        )

    def metrics(self) -> Dict[str, object]:
        return {
            "admitted": self.admitted,
            "rejected": self.rejected,
            "no_deadline": self.no_deadline,
        }

"""BL: the paper's state-of-the-art baseline shedder (§4.1).

The paper describes its baseline as "similar to the strategy in [He et
al., ICDT'14]" and says it "also captures the notion of weighted
sampling techniques in stream processing": event *types* get utility
values proportional to their repetition in the pattern, BL decides how
many events to drop from each type per window, and removes them by
uniform sampling within the type.  Crucially -- and this is the axis
eSPICE wins on -- BL ignores the order/position of events in windows.

Concretely, this implementation:

- assigns type utility ``u(T)`` = the type's repetition weight in the
  pattern (0 for unreferenced types);
- converts utilities to sampling weights ``w(T) = 1 / (1 + u(T))`` --
  cheaper types are dropped more aggressively, but *no* type is exempt
  (weighted sampling, not strict cheapest-first greedy);
- water-fills a scale ``c`` such that the expected number of drops per
  window matches the commanded amount:
  ``Σ_T min(1, c·w(T)) · freq(T) · ws = x·ρ``;
- drops each event of type ``T`` independently with probability
  ``min(1, c·w(T))``.

Per-type frequencies are learned online from observed events, so BL
adapts to the stream without a separate training phase (it keeps
observing even while inactive).
"""

from __future__ import annotations

import random
from typing import Dict, Mapping, Optional, Union

from repro.cep.events import Event
from repro.cep.patterns.ast import Conjunction, Pattern
from repro.shedding.base import DropCommand, LoadShedder


class BLShedder(LoadShedder):
    """Type-utility weighted-sampling baseline.

    Parameters
    ----------
    pattern:
        The deployed pattern; its ``event_type_repetitions()`` supply
        the per-type repetition weights.
    seed:
        RNG seed for the uniform sampling.
    """

    def __init__(
        self,
        pattern: Union[Pattern, Conjunction],
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.pattern = pattern
        self._rng = random.Random(seed)
        self._repetitions: Mapping[str, float] = pattern.event_type_repetitions()
        self._type_counts: Dict[str, int] = {}
        self._total_seen = 0
        self._drop_probability: Dict[str, float] = {}
        self._default_weight = 1.0  # weight of a type never seen in training
        self._pending: Optional[DropCommand] = None

    # ------------------------------------------------------------------
    # online frequency model
    # ------------------------------------------------------------------
    def observe(self, event: Event) -> None:
        """Update the per-type frequency estimate with one event."""
        self._type_counts[event.event_type] = (
            self._type_counts.get(event.event_type, 0) + 1
        )
        self._total_seen += 1

    def frequency(self, type_name: str) -> float:
        """Estimated probability that a stream event has this type."""
        if self._total_seen == 0:
            return 0.0
        return self._type_counts.get(type_name, 0) / self._total_seen

    def type_utility(self, type_name: str) -> float:
        """Repetition-based utility of a type (0 if not in the pattern)."""
        return self._repetitions.get(type_name, 0.0)

    def sampling_weight(self, type_name: str) -> float:
        """``w(T) = 1 / (1 + u(T))`` -- drop-eagerness of the type."""
        return 1.0 / (1.0 + self.type_utility(type_name))

    # ------------------------------------------------------------------
    # drop planning
    # ------------------------------------------------------------------
    def on_drop_command(self, command: DropCommand) -> None:
        self._pending = command
        self._recompute_plan()

    def _recompute_plan(self) -> None:
        """Water-fill per-type drop probabilities to meet the command."""
        command = self._pending
        self._drop_probability = {}
        if command is None or command.per_window <= 0.0:
            return
        window_size = command.partition_size * command.partition_count
        if window_size <= 0.0 or self._total_seen == 0:
            return

        demand = command.per_window
        populations = {
            type_name: self.frequency(type_name) * window_size
            for type_name in self._type_counts
        }
        weights = {
            type_name: self.sampling_weight(type_name)
            for type_name in self._type_counts
        }
        total_population = sum(populations.values())
        if total_population <= 0.0:
            return
        demand = min(demand, total_population)

        def expected_drops(scale: float) -> float:
            return sum(
                min(1.0, scale * weights[t]) * populations[t] for t in populations
            )

        # binary search the water-filling scale c
        low, high = 0.0, 1.0
        while expected_drops(high) < demand and high < 1e9:
            high *= 2.0
        for _ in range(60):
            mid = (low + high) / 2.0
            if expected_drops(mid) < demand:
                low = mid
            else:
                high = mid
        scale = high
        self._drop_probability = {
            type_name: min(1.0, scale * weights[type_name])
            for type_name in populations
        }
        # types first seen after planning drop at the scaled default weight
        self._default_scale = scale

    def drop_probability_of(self, type_name: str) -> float:
        """Planned drop probability for a type (diagnostics, tests)."""
        if type_name in self._drop_probability:
            return self._drop_probability[type_name]
        scale = getattr(self, "_default_scale", 0.0)
        return min(1.0, scale * self.sampling_weight(type_name))

    # ------------------------------------------------------------------
    # decision
    # ------------------------------------------------------------------
    def _decide(self, event: Event, position: int, predicted_ws: float) -> bool:
        self.observe(event)
        probability = self.drop_probability_of(event.event_type)
        if probability <= 0.0:
            return False
        if probability >= 1.0:
            return True
        return self._rng.random() < probability

    def should_drop(self, event: Event, position: int, predicted_ws: float) -> bool:
        # BL keeps learning frequencies even while inactive, so the plan
        # is ready the moment overload hits.
        if not self.active:
            self.observe(event)
            return False
        return super().should_drop(event, position, predicted_ws)

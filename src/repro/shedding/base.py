"""Load-shedder interface shared by eSPICE and the baselines.

The overload detector issues :class:`DropCommand` objects ("drop ``x``
events from every partition of every window"); the operator then asks
the shedder, per (event, window) pair, whether to drop the event from
that window.  The decision must be O(1) -- it runs on the hot path of a
system that is already overloaded (paper §3.5).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Sequence

from repro.cep.events import Event


@dataclass(frozen=True)
class DropCommand:
    """Instruction from the overload detector to the shedder.

    Attributes
    ----------
    x:
        Number of events to drop from each partition of each window
        (paper §3.4, "dropping amount").  May be fractional; shedders
        treat it as an expected value.
    partition_count:
        ``ρ``: partitions per window.
    partition_size:
        ``psize``: events per partition, in reference-window positions.
    """

    x: float
    partition_count: int = 1
    partition_size: float = 0.0

    @property
    def per_window(self) -> float:
        """Total events to drop per window."""
        return self.x * self.partition_count


class LoadShedder(abc.ABC):
    """Per-(event, window) drop decision plus activation lifecycle."""

    def __init__(self) -> None:
        self._active = False
        self.decisions = 0
        self.drops = 0

    @property
    def active(self) -> bool:
        """Whether shedding is currently enabled."""
        return self._active

    def activate(self) -> None:
        """Enable shedding (overload detected)."""
        self._active = True

    def deactivate(self) -> None:
        """Disable shedding (overload cleared)."""
        self._active = False

    @abc.abstractmethod
    def on_drop_command(self, command: DropCommand) -> None:
        """Receive a new dropping amount from the overload detector."""

    @abc.abstractmethod
    def _decide(self, event: Event, position: int, predicted_ws: float) -> bool:
        """The actual drop decision; True means drop."""

    def should_drop(self, event: Event, position: int, predicted_ws: float) -> bool:
        """Decide whether to drop ``event`` from the window where it sits
        at (unshedded) ``position``; ``predicted_ws`` is the predicted
        size of that window in events."""
        if not self._active:
            return False
        self.decisions += 1
        drop = self._decide(event, position, predicted_ws)
        if drop:
            self.drops += 1
        return drop

    def should_drop_batch(
        self,
        events: Sequence[Event],
        positions: Sequence[int],
        predicted_ws: float,
    ) -> List[bool]:
        """Drop decisions for a batch of (event, position) pairs.

        ``events[i]`` sits at position ``positions[i]`` of a window
        predicted to span ``predicted_ws`` events (one shared prediction
        -- the caller batches only pairs decided under the same
        predictor state).  The default loops :meth:`should_drop`, so
        every shedder -- including sampling shedders whose RNG sequence
        must advance per decision -- behaves exactly as if consulted
        per pair; shedders with a vectorized kernel override this.
        """
        should_drop = self.should_drop
        return [
            should_drop(event, position, predicted_ws)
            for event, position in zip(events, positions)
        ]

    def explain(self, event: Event, position: int, predicted_ws: float) -> dict:
        """Why the last decision for this (event, window) pair went the
        way it did -- the shed-decision explainability hook of
        :mod:`repro.obs`.

        Returns the decision inputs as a dict whose keys mirror
        :class:`repro.obs.tracer.ShedExplanation`: ``strategy`` plus
        ``utility``/``threshold``/``partition``/``partition_count``/
        ``drop_amount`` where the strategy has such notions (``None``
        otherwise).  Must be side-effect free -- it re-derives, never
        re-decides, so counters and RNG state stay untouched.  The base
        implementation names the strategy only; utility-table shedders
        override it with their exact lookup.
        """
        return {
            "strategy": type(self).__name__,
            "utility": None,
            "threshold": None,
            "partition": None,
            "partition_count": None,
            "drop_amount": None,
        }

    def observed_drop_rate(self) -> float:
        """Fraction of decisions that dropped (diagnostics)."""
        return self.drops / self.decisions if self.decisions else 0.0

    def reset_counters(self) -> None:
        """Zero the decision/drop counters."""
        self.decisions = 0
        self.drops = 0


class NoShedder(LoadShedder):
    """Keeps every event; used for ground-truth runs."""

    def on_drop_command(self, command: DropCommand) -> None:  # pragma: no cover
        pass

    def _decide(self, event: Event, position: int, predicted_ws: float) -> bool:
        return False

"""Load-shedder interface and the paper's comparator strategies.

- :class:`~repro.shedding.base.LoadShedder` -- the interface the CEP
  operator consults per (event, window) pair.
- :class:`~repro.shedding.baseline.BLShedder` -- the paper's baseline
  (He et al. ICDT'14 style): per-type utilities from pattern repetition
  and window frequency, uniform sampling within a type, order-blind.
- :class:`~repro.shedding.integral.IntegralShedder` -- He et al.'s
  *integral* mode: whole event types dropped, cheapest first.
- :class:`~repro.shedding.random_shedder.RandomShedder` -- uniformly
  random dropping, the strawman the paper dismisses.
- :class:`~repro.shedding.base.NoShedder` -- keeps everything (ground
  truth runs).
- :mod:`repro.shedding.registry` -- named strategy registry
  (``create_shedder("espice", model=...)``) used by the
  :mod:`repro.pipeline` builder to select strategies declaratively.

The eSPICE shedder itself lives in :mod:`repro.core` (it is the paper's
contribution); the registry exposes it under the name ``"espice"``.
"""

from repro.shedding.base import DropCommand, LoadShedder, NoShedder
from repro.shedding.baseline import BLShedder
from repro.shedding.integral import IntegralShedder
from repro.shedding.random_shedder import RandomShedder
from repro.shedding.registry import (
    ShedderSpec,
    available_shedders,
    create_shedder,
    describe_shedders,
    register_shedder,
    shedder_requirements,
)

__all__ = [
    "BLShedder",
    "DropCommand",
    "IntegralShedder",
    "LoadShedder",
    "NoShedder",
    "RandomShedder",
    "ShedderSpec",
    "available_shedders",
    "create_shedder",
    "describe_shedders",
    "register_shedder",
    "shedder_requirements",
]

"""Named shedding strategies: a registry mapping names to factories.

Experiments and the :mod:`repro.pipeline` builder select shedding
strategies declaratively (``.shedder("espice", f=0.8)``) instead of
hand-constructing shedder classes.  Each strategy is registered under a
short name together with what it needs to be built:

========== ============================== =========================
name       class                          requires
========== ============================== =========================
espice     ESpiceShedder                  trained ``UtilityModel``
bl         BLShedder                      deployed ``Query``
bl-integral IntegralShedder               deployed ``Query``
integral   IntegralShedder                deployed ``Query``
random     RandomShedder                  --
none       NoShedder                      --
========== ============================== =========================

Third parties add strategies with :func:`register_shedder`::

    @register_shedder("probe", requires_query=True)
    def _build_probe(spec: ShedderSpec) -> LoadShedder:
        return ProbeShedder(spec.query.pattern, **spec.options)

Factory classes are imported lazily inside the factories so that the
registry can be imported from anywhere (including mid-initialisation of
:mod:`repro.core`) without import cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.shedding.base import LoadShedder


@dataclass
class ShedderSpec:
    """Everything a shedder factory may need.

    Attributes
    ----------
    query:
        The deployed query (type-level baselines read its pattern).
    model:
        A trained utility model (eSPICE).
    seed:
        RNG seed for sampling shedders.
    options:
        Strategy-specific keyword options, passed through verbatim.
    """

    query: Optional[object] = None
    model: Optional[object] = None
    seed: int = 0
    options: Dict[str, Any] = field(default_factory=dict)


ShedderFactory = Callable[[ShedderSpec], LoadShedder]


@dataclass(frozen=True)
class _Registration:
    factory: ShedderFactory
    requires_model: bool
    requires_query: bool
    description: str


_REGISTRY: Dict[str, _Registration] = {}


def register_shedder(
    name: str,
    *,
    requires_model: bool = False,
    requires_query: bool = False,
    description: str = "",
    replace: bool = False,
) -> Callable[[ShedderFactory], ShedderFactory]:
    """Register ``factory`` under ``name`` (decorator).

    ``requires_model`` / ``requires_query`` make :func:`create_shedder`
    fail fast with a clear message instead of a factory-internal
    ``AttributeError``.  Re-registering a taken name raises unless
    ``replace=True``.
    """

    def decorator(factory: ShedderFactory) -> ShedderFactory:
        if not replace and name in _REGISTRY:
            raise ValueError(f"shedder strategy {name!r} is already registered")
        _REGISTRY[name] = _Registration(
            factory=factory,
            requires_model=requires_model,
            requires_query=requires_query,
            description=description or (factory.__doc__ or "").strip(),
        )
        return factory

    return decorator


def available_shedders() -> Tuple[str, ...]:
    """Registered strategy names, sorted."""
    return tuple(sorted(_REGISTRY))


def shedder_requirements(name: str) -> Tuple[bool, bool]:
    """``(requires_model, requires_query)`` for strategy ``name``."""
    registration = _lookup(name)
    return registration.requires_model, registration.requires_query


def describe_shedders() -> Dict[str, str]:
    """Mapping of strategy name to its one-line description."""
    return {name: _REGISTRY[name].description for name in available_shedders()}


def _lookup(name: str) -> _Registration:
    try:
        return _REGISTRY[name]
    except KeyError:
        known = ", ".join(available_shedders())
        raise ValueError(
            f"unknown shedder strategy {name!r}; registered: {known}"
        ) from None


def create_shedder(
    name: str,
    *,
    query: Optional[object] = None,
    model: Optional[object] = None,
    seed: int = 0,
    **options: Any,
) -> LoadShedder:
    """Build the shedder registered under ``name``.

    Raises ``ValueError`` for unknown names or missing requirements
    (e.g. ``espice`` without a trained model).
    """
    registration = _lookup(name)
    if registration.requires_model and model is None:
        raise ValueError(
            f"shedder strategy {name!r} needs a trained model; "
            "call train() before deploying it"
        )
    if registration.requires_query and query is None:
        raise ValueError(f"shedder strategy {name!r} needs the deployed query")
    spec = ShedderSpec(query=query, model=model, seed=seed, options=options)
    return registration.factory(spec)


# ----------------------------------------------------------------------
# built-in strategies (classes imported lazily -- see module docstring)
# ----------------------------------------------------------------------
@register_shedder(
    "espice",
    requires_model=True,
    description="utility-threshold shedder backed by a trained model (the paper)",
)
def _build_espice(spec: ShedderSpec) -> LoadShedder:
    from repro.core.shedder import ESpiceShedder

    return ESpiceShedder(spec.model, **spec.options)


@register_shedder(
    "bl",
    requires_query=True,
    description="type-utility weighted-sampling baseline (He et al. style)",
)
def _build_bl(spec: ShedderSpec) -> LoadShedder:
    from repro.shedding.baseline import BLShedder

    return BLShedder(spec.query.pattern, seed=spec.seed, **spec.options)


def _build_integral(spec: ShedderSpec) -> LoadShedder:
    from repro.shedding.integral import IntegralShedder

    return IntegralShedder(spec.query.pattern, seed=spec.seed, **spec.options)


register_shedder(
    "integral",
    requires_query=True,
    description="whole event types dropped cheapest-first (He et al. integral)",
)(_build_integral)

register_shedder(
    "bl-integral",
    requires_query=True,
    description="alias of 'integral' (the experiments' historical name)",
)(_build_integral)


@register_shedder(
    "random",
    description="uniformly random dropping (the paper's strawman)",
)
def _build_random(spec: ShedderSpec) -> LoadShedder:
    from repro.shedding.random_shedder import RandomShedder

    return RandomShedder(seed=spec.seed, **spec.options)


@register_shedder(
    "none",
    description="keeps every event (ground-truth runs)",
)
def _build_none(spec: ShedderSpec) -> LoadShedder:
    from repro.shedding.base import NoShedder

    return NoShedder(**spec.options)

"""Integral load shedding: drop whole event types (He et al., §5).

He et al. (ICDT'14), the paper BL is modelled on, distinguish
*integral* load shedding -- entire event types are dropped -- from
*fractional* load shedding -- uniform sampling keeps a portion of each
type.  :class:`~repro.shedding.baseline.BLShedder` is the fractional /
weighted-sampling reading; this module supplies the integral reading as
a second comparator: types are dropped wholesale, cheapest (lowest
pattern repetition, then most frequent) first, until the commanded
amount is covered; at most one marginal type is sampled fractionally.

Against position-sensitive workloads this behaves like BL with a
sharper failure mode: either a type survives completely or it vanishes,
so patterns referencing a dropped type produce no matches at all.
"""

from __future__ import annotations

import random
from typing import Dict, List, Mapping, Optional, Tuple, Union

from repro.cep.events import Event
from repro.cep.patterns.ast import Conjunction, Pattern
from repro.shedding.base import DropCommand, LoadShedder


class IntegralShedder(LoadShedder):
    """Whole-type dropping, cheapest types first."""

    def __init__(
        self,
        pattern: Union[Pattern, Conjunction],
        seed: int = 0,
    ) -> None:
        super().__init__()
        self.pattern = pattern
        self._rng = random.Random(seed)
        self._repetitions: Mapping[str, float] = pattern.event_type_repetitions()
        self._type_counts: Dict[str, int] = {}
        self._total_seen = 0
        self._dropped_types: set = set()
        self._marginal: Optional[Tuple[str, float]] = None  # (type, probability)
        self._pending: Optional[DropCommand] = None

    # ------------------------------------------------------------------
    def observe(self, event: Event) -> None:
        """Update the per-type frequency estimate."""
        self._type_counts[event.event_type] = (
            self._type_counts.get(event.event_type, 0) + 1
        )
        self._total_seen += 1

    def frequency(self, type_name: str) -> float:
        """Estimated probability that a stream event has this type."""
        if self._total_seen == 0:
            return 0.0
        return self._type_counts.get(type_name, 0) / self._total_seen

    def _priority(self, type_name: str) -> Tuple[float, float]:
        """Drop order: lowest repetition first, most frequent first."""
        return (
            self._repetitions.get(type_name, 0.0),
            -self.frequency(type_name),
        )

    # ------------------------------------------------------------------
    def on_drop_command(self, command: DropCommand) -> None:
        self._pending = command
        self._dropped_types = set()
        self._marginal = None
        if command.per_window <= 0.0 or self._total_seen == 0:
            return
        window_size = command.partition_size * command.partition_count
        if window_size <= 0.0:
            return
        to_drop = command.per_window
        for type_name in sorted(self._type_counts, key=self._priority):
            population = self.frequency(type_name) * window_size
            if population <= 0.0:
                continue
            if population <= to_drop:
                self._dropped_types.add(type_name)
                to_drop -= population
            else:
                self._marginal = (type_name, to_drop / population)
                break

    @property
    def dropped_types(self) -> List[str]:
        """Types currently dropped wholesale (diagnostics, tests)."""
        return sorted(self._dropped_types)

    def drop_probability_of(self, type_name: str) -> float:
        """Effective drop probability of a type under the current plan."""
        if type_name in self._dropped_types:
            return 1.0
        if self._marginal is not None and self._marginal[0] == type_name:
            return self._marginal[1]
        return 0.0

    # ------------------------------------------------------------------
    def _decide(self, event: Event, position: int, predicted_ws: float) -> bool:
        self.observe(event)
        if event.event_type in self._dropped_types:
            return True
        if self._marginal is not None and self._marginal[0] == event.event_type:
            return self._rng.random() < self._marginal[1]
        return False

    def should_drop(self, event: Event, position: int, predicted_ws: float) -> bool:
        if not self.active:
            self.observe(event)
            return False
        return super().should_drop(event, position, predicted_ws)

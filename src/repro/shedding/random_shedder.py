"""Uniformly random load shedding (the strawman comparator).

Drops each (event, window) membership independently with the
probability needed to remove the commanded amount per partition:
``p = x / psize``.  Deterministic given the seed, so experiment runs
are reproducible.
"""

from __future__ import annotations

import random

from repro.cep.events import Event
from repro.shedding.base import DropCommand, LoadShedder


class RandomShedder(LoadShedder):
    """Position- and type-blind random dropper."""

    def __init__(self, seed: int = 0) -> None:
        super().__init__()
        self._rng = random.Random(seed)
        self._probability = 0.0

    @property
    def drop_probability(self) -> float:
        """Current per-membership drop probability."""
        return self._probability

    def on_drop_command(self, command: DropCommand) -> None:
        if command.partition_size <= 0.0:
            self._probability = 0.0
            return
        self._probability = min(1.0, max(0.0, command.x / command.partition_size))

    def _decide(self, event: Event, position: int, predicted_ws: float) -> bool:
        return self._rng.random() < self._probability

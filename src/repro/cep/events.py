"""Primitive events, complex events and ordered event streams.

The event model follows Section 2 of the eSPICE paper: a primitive event
carries *meta-data* (event type, sequence number, timestamp) and
*attribute-value pairs* (the payload, e.g. a stock quote or a player
position).  Events in a stream have a global order, established by the
sequence number (with the timestamp available as a secondary notion of
time for time-based windows).

A *complex event* represents a detected situation: it references the
primitive events that were correlated to produce it.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Tuple


class EventType:
    """Interned, hashable event type.

    Event types are compared by name.  An :class:`EventTypeRegistry`
    assigns each type a dense integer id so that utility tables can be
    indexed by integers rather than strings.
    """

    __slots__ = ("name", "type_id")

    def __init__(self, name: str, type_id: int = -1) -> None:
        self.name = name
        self.type_id = type_id

    def __repr__(self) -> str:
        return f"EventType({self.name!r}, id={self.type_id})"

    def __hash__(self) -> int:
        return hash(self.name)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, EventType):
            return self.name == other.name
        if isinstance(other, str):
            return self.name == other
        return NotImplemented


class EventTypeRegistry:
    """Assigns dense integer ids to event type names.

    eSPICE's utility table is an ``M x N`` matrix where ``M`` is the
    number of distinct event types.  The registry provides the mapping
    between type names and the row indices of that matrix.
    """

    __slots__ = ("_by_name", "_by_id")

    def __init__(self) -> None:
        self._by_name: Dict[str, EventType] = {}
        self._by_id: List[EventType] = []

    def intern(self, name: str) -> EventType:
        """Return the registered type for ``name``, creating it if new."""
        etype = self._by_name.get(name)
        if etype is None:
            etype = EventType(name, type_id=len(self._by_id))
            self._by_name[name] = etype
            self._by_id.append(etype)
        return etype

    def get(self, name: str) -> Optional[EventType]:
        """Return the registered type for ``name`` or ``None``."""
        return self._by_name.get(name)

    def id_of(self, name: str) -> int:
        """Return the dense id for ``name`` (interning it if needed)."""
        return self.intern(name).type_id

    def name_of(self, type_id: int) -> str:
        """Return the name registered under ``type_id``."""
        return self._by_id[type_id].name

    def __len__(self) -> int:
        return len(self._by_id)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[EventType]:
        return iter(self._by_id)


@dataclass(frozen=True, slots=True)
class Event:
    """A primitive event.

    Attributes
    ----------
    event_type:
        The type name, e.g. a stock symbol or ``"STR"``/``"DF3"`` in the
        soccer workload.
    seq:
        Global sequence number; establishes the total order of the
        stream (ties broken by the source).
    timestamp:
        Event time in (virtual) seconds.
    attrs:
        The attribute-value payload.
    """

    event_type: str
    seq: int
    timestamp: float
    attrs: Dict[str, Any] = field(default_factory=dict, compare=False, hash=False)

    def attr(self, key: str, default: Any = None) -> Any:
        """Return attribute ``key`` or ``default``."""
        return self.attrs.get(key, default)

    def __lt__(self, other: "Event") -> bool:
        return (self.seq, self.timestamp) < (other.seq, other.timestamp)

    def __repr__(self) -> str:  # compact, used heavily in test output
        return f"{self.event_type}@{self.seq}"


@dataclass(frozen=True, slots=True)
class ComplexEvent:
    """A detected situation: an ordered tuple of contributing events.

    Complex events are identified (for quality accounting) by the window
    they were detected in plus the sequence numbers of their constituent
    primitive events; two detections of the same constituent set in the
    same window are the same complex event.
    """

    pattern_name: str
    window_id: int
    events: Tuple[Event, ...]
    detection_time: float = 0.0

    @property
    def key(self) -> Tuple[str, int, Tuple[int, ...]]:
        """Identity used when comparing against a ground-truth run."""
        return (self.pattern_name, self.window_id, tuple(e.seq for e in self.events))

    @property
    def positions(self) -> Tuple[int, ...]:
        """Sequence numbers of the constituent primitive events."""
        return tuple(e.seq for e in self.events)

    def __len__(self) -> int:
        return len(self.events)

    def __repr__(self) -> str:
        inner = ", ".join(repr(e) for e in self.events)
        return f"Complex[{self.pattern_name}|w{self.window_id}]({inner})"


class EventStream:
    """An ordered, replayable stream of primitive events.

    The stream is backed by a list so that ground-truth and shedding
    runs can replay exactly the same input.  Events must be appended in
    global order (non-decreasing sequence number).
    """

    __slots__ = ("_events", "_types")

    def __init__(self, events: Optional[Iterable[Event]] = None) -> None:
        self._events: List[Event] = []
        self._types = EventTypeRegistry()
        if events is not None:
            for event in events:
                self.append(event)

    @property
    def types(self) -> EventTypeRegistry:
        """Registry of every event type seen on this stream."""
        return self._types

    def append(self, event: Event) -> None:
        """Append ``event``; raises ``ValueError`` on order violation."""
        if self._events and event.seq < self._events[-1].seq:
            raise ValueError(
                f"stream order violated: seq {event.seq} after {self._events[-1].seq}"
            )
        self._types.intern(event.event_type)
        self._events.append(event)

    def extend(self, events: Iterable[Event]) -> None:
        """Append every event of ``events`` in order."""
        for event in events:
            self.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    def __getitem__(self, index: int) -> Event:
        return self._events[index]

    def slice(self, start: int, stop: int) -> List[Event]:
        """Events with list positions in ``[start, stop)``."""
        return self._events[start:stop]

    def duration(self) -> float:
        """Timestamp span of the stream in seconds (0 for empty)."""
        if not self._events:
            return 0.0
        return self._events[-1].timestamp - self._events[0].timestamp

    def rate(self) -> float:
        """Average event rate (events/second) over the stream."""
        span = self.duration()
        if span <= 0.0:
            return float(len(self._events))
        return len(self._events) / span

    def type_names(self) -> List[str]:
        """Distinct event type names, in first-seen order."""
        return [t.name for t in self._types]


class StreamBuilder:
    """Convenience builder that assigns sequence numbers automatically.

    Useful in tests and synthetic dataset generators::

        sb = StreamBuilder(rate=10.0)
        sb.emit("A", price=3.0)
        sb.emit("B")
        stream = sb.stream
    """

    __slots__ = ("_interval", "_time", "_seq", "stream")

    def __init__(self, rate: float = 1.0, start_time: float = 0.0) -> None:
        if rate <= 0.0:
            raise ValueError("rate must be positive")
        self._interval = 1.0 / rate
        self._time = start_time
        self._seq = itertools.count()
        self.stream = EventStream()

    def emit(self, event_type: str, at: Optional[float] = None, **attrs: Any) -> Event:
        """Append one event of ``event_type`` and return it."""
        if at is not None:
            self._time = at
        event = Event(event_type, next(self._seq), self._time, dict(attrs))
        self.stream.append(event)
        self._time += self._interval
        return event

    def emit_many(self, event_types: Iterable[str]) -> List[Event]:
        """Append one event per name in ``event_types``."""
        return [self.emit(name) for name in event_types]


def merge_streams(*streams: EventStream) -> EventStream:
    """Merge streams by timestamp (stable on ties), re-assigning seq numbers.

    Models the global ordering performed upstream of the operator when
    several sources feed it (paper §2: "events in the input event
    streams have global order").
    """
    merged = sorted(
        (event for stream in streams for event in stream),
        key=lambda e: (e.timestamp, e.seq),
    )
    out = EventStream()
    for new_seq, event in enumerate(merged):
        out.append(Event(event.event_type, new_seq, event.timestamp, event.attrs))
    return out


def filter_stream(stream: EventStream, predicate: Callable[[Event], bool]) -> EventStream:
    """Return a new stream with only the events satisfying ``predicate``.

    Sequence numbers are preserved (gaps are fine: windows and the
    matcher only rely on relative order).
    """
    return EventStream(event for event in stream if predicate(event))

"""Virtual time for the discrete-event simulation runtime.

The paper evaluates eSPICE on a wall-clock Java prototype.  The
reproduction runs the whole pipeline in *virtual time* instead: the
operator has a configured throughput ``th`` (events/second of virtual
time) and the source a configured input rate ``R``.  All latency
quantities of paper §3.4 (queueing latency ``l(q)``, processing latency
``l(p)``, estimated latency ``l(e)``) are therefore deterministic
functions of the simulation state, which makes the latency-bound
experiments (Fig. 7) exactly reproducible.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, List, Optional, Tuple


class VirtualClock:
    """A monotonically advancing virtual clock measured in seconds."""

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    def advance(self, delta: float) -> float:
        """Advance the clock by ``delta`` seconds and return the new time."""
        if delta < 0.0:
            raise ValueError(f"cannot advance clock by negative delta {delta}")
        self._now += delta
        return self._now

    def advance_to(self, timestamp: float) -> float:
        """Advance the clock to ``timestamp`` (no-op if in the past)."""
        if timestamp > self._now:
            self._now = timestamp
        return self._now

    def __repr__(self) -> str:
        return f"VirtualClock(t={self._now:.6f})"


class EventScheduler:
    """A tiny discrete-event scheduler on top of :class:`VirtualClock`.

    Used by the simulation runtime to interleave the periodic overload
    detector with event arrivals and operator processing.  Callbacks run
    in timestamp order; ties run in scheduling order.
    """

    def __init__(self, clock: Optional[VirtualClock] = None) -> None:
        self.clock = clock if clock is not None else VirtualClock()
        self._heap: List[Tuple[float, int, Callable[[], Any]]] = []
        self._counter = itertools.count()

    def schedule_at(self, timestamp: float, callback: Callable[[], Any]) -> None:
        """Run ``callback`` when virtual time reaches ``timestamp``."""
        if timestamp < self.clock.now:
            raise ValueError(
                f"cannot schedule at {timestamp} before now {self.clock.now}"
            )
        heapq.heappush(self._heap, (timestamp, next(self._counter), callback))

    def schedule_after(self, delay: float, callback: Callable[[], Any]) -> None:
        """Run ``callback`` after ``delay`` seconds of virtual time."""
        self.schedule_at(self.clock.now + delay, callback)

    def schedule_every(
        self,
        interval: float,
        callback: Callable[[], Any],
        until: Optional[float] = None,
    ) -> None:
        """Run ``callback`` every ``interval`` seconds (optionally bounded).

        The callback may return ``False`` to cancel the recurrence.
        """
        if interval <= 0.0:
            raise ValueError("interval must be positive")

        def tick() -> None:
            if until is not None and self.clock.now > until:
                return
            if callback() is False:
                return
            self.schedule_after(interval, tick)

        self.schedule_after(interval, tick)

    @property
    def pending(self) -> int:
        """Number of scheduled callbacks not yet run."""
        return len(self._heap)

    def next_timestamp(self) -> Optional[float]:
        """Timestamp of the next scheduled callback, or ``None``."""
        return self._heap[0][0] if self._heap else None

    def run_until(self, timestamp: float) -> int:
        """Run all callbacks scheduled at or before ``timestamp``.

        Returns the number of callbacks executed.  The clock ends at
        ``timestamp`` even if no callback was scheduled that late.
        """
        executed = 0
        while self._heap and self._heap[0][0] <= timestamp:
            when, _tie, callback = heapq.heappop(self._heap)
            self.clock.advance_to(when)
            callback()
            executed += 1
        self.clock.advance_to(timestamp)
        return executed

    def run_all(self, limit: int = 1_000_000) -> int:
        """Run every scheduled callback (bounded by ``limit``)."""
        executed = 0
        while self._heap:
            if executed >= limit:
                raise RuntimeError(f"scheduler exceeded {limit} callbacks")
            when, _tie, callback = heapq.heappop(self._heap)
            self.clock.advance_to(when)
            callback()
            executed += 1
        return executed

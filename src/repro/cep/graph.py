"""Operator graphs: DAGs of CEP operators (paper §2).

"Such CEP systems may comprise of one or more operators that are
represented by a directed acyclic graph.  Each operator processes
input event streams produced from one or more sources [--] sources
might be sensors, *upstream operators*, other applications."

This module provides that substrate: a DAG whose nodes are CEP
operators (each with its own query and, optionally, its own load
shedder) or stream transforms.  A node's detected complex events are
re-materialised as primitive events for its downstream nodes, with the
complex event's payload flattened into attributes -- exactly how an
upstream operator acts as an event source for the next one.

The paper's evaluation uses a single operator; the graph is exercised
by the multi-stage example and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional

from repro.cep.events import ComplexEvent, Event, EventStream
from repro.cep.operator.operator import CEPOperator
from repro.cep.patterns.query import Query


def complex_to_event(complex_event: ComplexEvent, seq: int) -> Event:
    """Materialise a complex event as a primitive event for downstream.

    The event type is the pattern name; the timestamp is the detection
    time (falling back to the last constituent's timestamp); the
    constituent sequence numbers ride along as an attribute.
    """
    last = complex_event.events[-1] if complex_event.events else None
    timestamp = complex_event.detection_time
    if timestamp == 0.0 and last is not None:
        timestamp = last.timestamp
    return Event(
        event_type=complex_event.pattern_name,
        seq=seq,
        timestamp=timestamp,
        attrs={
            "window_id": complex_event.window_id,
            "constituents": list(complex_event.positions),
        },
    )


@dataclass
class _Node:
    """One vertex of the operator graph."""

    name: str
    query: Optional[Query] = None  # None for transform nodes
    transform: Optional[Callable[[Event], Optional[Event]]] = None
    shedder: Optional[object] = None
    upstream: List[str] = field(default_factory=list)
    # run artefacts
    output: List[Event] = field(default_factory=list)
    complex_events: List[ComplexEvent] = field(default_factory=list)


class OperatorGraph:
    """A DAG of CEP operators and transforms, executed in batch.

    Usage::

        graph = OperatorGraph()
        graph.add_operator("influence", q2_query)
        graph.add_operator("meta", meta_query, upstream=["influence"])
        results = graph.run(stream)
        results.complex_events("meta")
    """

    SOURCE = "__source__"

    def __init__(self) -> None:
        self._nodes: Dict[str, _Node] = {}

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    def add_operator(
        self,
        name: str,
        query: Query,
        upstream: Optional[Iterable[str]] = None,
        shedder: Optional[object] = None,
    ) -> None:
        """Add a pattern-matching operator node."""
        self._add_node(_Node(name=name, query=query, shedder=shedder), upstream)

    def add_transform(
        self,
        name: str,
        transform: Callable[[Event], Optional[Event]],
        upstream: Optional[Iterable[str]] = None,
    ) -> None:
        """Add a per-event transform node (``None`` return filters out)."""
        self._add_node(_Node(name=name, transform=transform), upstream)

    def _add_node(self, node: _Node, upstream: Optional[Iterable[str]]) -> None:
        if node.name in self._nodes or node.name == self.SOURCE:
            raise ValueError(f"duplicate node name {node.name!r}")
        node.upstream = list(upstream) if upstream is not None else [self.SOURCE]
        for up in node.upstream:
            if up != self.SOURCE and up not in self._nodes:
                raise ValueError(f"unknown upstream node {up!r}")
        self._nodes[node.name] = node

    @property
    def node_names(self) -> List[str]:
        """Names in insertion order."""
        return list(self._nodes)

    def topological_order(self) -> List[str]:
        """Evaluation order (insertion order is already topological,
        since upstream nodes must exist when a node is added)."""
        return list(self._nodes)

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------
    def run(self, stream: EventStream) -> "GraphRun":
        """Execute the whole DAG over ``stream`` (batch semantics)."""
        for node in self._nodes.values():
            node.output = []
            node.complex_events = []

        for name in self.topological_order():
            node = self._nodes[name]
            inputs = self._inputs_of(node, stream)
            if node.transform is not None:
                node.output = [
                    out
                    for out in (node.transform(event) for event in inputs)
                    if out is not None
                ]
            else:
                assert node.query is not None
                operator = CEPOperator(node.query, shedder=node.shedder)
                in_stream = EventStream()
                for seq, event in enumerate(inputs):
                    in_stream.append(
                        Event(event.event_type, seq, event.timestamp, event.attrs)
                    )
                node.complex_events = operator.detect_all(in_stream)
                node.output = [
                    complex_to_event(c, seq)
                    for seq, c in enumerate(node.complex_events)
                ]
        return GraphRun({name: node for name, node in self._nodes.items()})

    def _inputs_of(self, node: _Node, stream: EventStream) -> List[Event]:
        merged: List[Event] = []
        for up in node.upstream:
            if up == self.SOURCE:
                merged.extend(stream)
            else:
                merged.extend(self._nodes[up].output)
        merged.sort(key=lambda e: (e.timestamp, e.seq))
        return merged


class GraphRun:
    """Results of one :meth:`OperatorGraph.run`."""

    def __init__(self, nodes: Dict[str, _Node]) -> None:
        self._nodes = nodes

    def complex_events(self, name: str) -> List[ComplexEvent]:
        """Complex events detected by operator node ``name``."""
        return list(self._nodes[name].complex_events)

    def output_events(self, name: str) -> List[Event]:
        """Events node ``name`` forwarded downstream."""
        return list(self._nodes[name].output)

    def totals(self) -> Dict[str, int]:
        """Complex-event count per operator node."""
        return {
            name: len(node.complex_events)
            for name, node in self._nodes.items()
            if node.query is not None
        }

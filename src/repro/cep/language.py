"""A small Tesla-like textual query language.

The paper assumes queries are written in an event specification
language (Tesla, Snoop, SASE).  This module provides a compact textual
front end that compiles to the same :class:`~repro.cep.patterns.Query`
objects the builder API produces::

    define ManMarking
    from   seq(STR; any(3, DF1, DF2, DF3, DF4))
    within 15s
    select first
    consume zero

Grammar (case-insensitive keywords, newlines optional):

    query     := "define" NAME "from" pattern "within" extent
                 [ "open" "on" typeset ] [ "slide" NUMBER ]
                 [ "select" policy ] [ "consume" cpolicy ]
    pattern   := "seq(" steps ")" | "and(" typelist ")"
    steps     := step (";" step)*
    step      := typeset | "any(" NUMBER "," typelist ")" | "not" typeset
               | "some(" [NUMBER ","] typeset ")"        -- Kleene plus
    typeset   := NAME ("|" NAME)*
    extent    := NUMBER "s" | NUMBER "events"
    policy    := "first" | "last" | "each" | "cumulative"
    cpolicy   := "consumed" | "zero"

``within Ns`` windows open on every event unless ``open on`` names the
opening types (pattern-based windows); ``within N events`` plus
``slide`` gives count-based sliding windows.  Attribute predicates stay
in Python -- pass them via ``predicates={"TYPE": callable}``.
"""

from __future__ import annotations

import re
from typing import Callable, Dict, List, Optional

from repro.cep.events import Event
from repro.cep.patterns.ast import (
    Conjunction,
    EventSpec,
    KleeneStep,
    NegationStep,
    Pattern,
    any_of,
    seq,
    spec,
)
from repro.cep.patterns.policies import ConsumptionPolicy, SelectionPolicy
from repro.cep.patterns.query import Query
from repro.cep.windows import CountSlidingWindows, PredicateWindows

_TOKEN = re.compile(
    r"\s*(?:(?P<number>\d+(?:\.\d+)?)|(?P<name>[A-Za-z_][A-Za-z_0-9]*)"
    r"|(?P<punct>[();,|]))"
)

_KEYWORDS = {
    "define",
    "from",
    "within",
    "open",
    "on",
    "slide",
    "select",
    "consume",
    "seq",
    "any",
    "and",
    "not",
    "s",
    "events",
}


class QueryParseError(ValueError):
    """Raised on malformed query text."""


class _Tokens:
    def __init__(self, text: str) -> None:
        self.items: List[str] = []
        position = 0
        while position < len(text):
            match = _TOKEN.match(text, position)
            if match is None:
                remainder = text[position:].strip()
                if not remainder:
                    break
                raise QueryParseError(f"cannot tokenise near {remainder[:20]!r}")
            self.items.append(match.group().strip())
            position = match.end()
        self.index = 0

    def peek(self) -> Optional[str]:
        return self.items[self.index] if self.index < len(self.items) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise QueryParseError("unexpected end of query")
        self.index += 1
        return token

    def expect(self, expected: str) -> str:
        token = self.next()
        if token.lower() != expected.lower():
            raise QueryParseError(f"expected {expected!r}, got {token!r}")
        return token

    def accept(self, candidate: str) -> bool:
        token = self.peek()
        if token is not None and token.lower() == candidate.lower():
            self.index += 1
            return True
        return False


def parse_query(
    text: str,
    predicates: Optional[Dict[str, Callable[[Event], bool]]] = None,
) -> Query:
    """Compile query ``text`` to a deployable :class:`Query`.

    ``predicates`` optionally attaches an attribute predicate to every
    spec of the named event type.
    """
    predicates = predicates or {}
    tokens = _Tokens(text)

    tokens.expect("define")
    name = tokens.next()
    if name.lower() in _KEYWORDS:
        raise QueryParseError(f"query name cannot be the keyword {name!r}")
    tokens.expect("from")
    pattern = _parse_pattern(tokens, name, predicates)

    tokens.expect("within")
    amount = float(tokens.next())
    unit = tokens.next().lower()
    if unit not in ("s", "events"):
        raise QueryParseError(f"extent unit must be 's' or 'events', got {unit!r}")

    open_types: Optional[List[str]] = None
    slide: Optional[int] = None
    selection = SelectionPolicy.FIRST
    consumption = ConsumptionPolicy.CONSUMED
    while tokens.peek() is not None:
        if tokens.accept("open"):
            tokens.expect("on")
            open_types = _parse_typelist_names(tokens)
        elif tokens.accept("slide"):
            slide = int(float(tokens.next()))
        elif tokens.accept("select"):
            selection = SelectionPolicy(tokens.next().lower())
        elif tokens.accept("consume"):
            consumption = ConsumptionPolicy(tokens.next().lower())
        else:
            raise QueryParseError(f"unexpected token {tokens.peek()!r}")

    window_factory = _window_factory(amount, unit, open_types, slide)
    return Query(
        name=name,
        pattern=pattern,
        window_factory=window_factory,
        selection=selection,
        consumption=consumption,
    )


def _window_factory(amount, unit, open_types, slide):
    if open_types is not None:
        opener_set = frozenset(open_types)

        def opens(event: Event) -> bool:
            return event.event_type in opener_set

        if unit == "s":
            return lambda: PredicateWindows(opens, extent_seconds=amount)
        return lambda: PredicateWindows(opens, extent_events=int(amount))
    if unit == "s":
        raise QueryParseError(
            "time-extent windows need 'open on TYPE' (sliding time windows "
            "without an opener are not expressible in this front end)"
        )
    return lambda: CountSlidingWindows(int(amount), slide)


def _parse_pattern(tokens: _Tokens, name: str, predicates) -> object:
    keyword = tokens.next().lower()
    if keyword == "seq":
        tokens.expect("(")
        steps = []
        while True:
            steps.append(_parse_step(tokens, predicates))
            token = tokens.next()
            if token == ")":
                break
            if token != ";":
                raise QueryParseError(f"expected ';' or ')', got {token!r}")
        return seq(name, *steps)
    if keyword == "and":
        tokens.expect("(")
        specs = [_parse_typeset(tokens, predicates)]
        while True:
            token = tokens.next()
            if token == ")":
                break
            if token != ",":
                raise QueryParseError(f"expected ',' or ')', got {token!r}")
            specs.append(_parse_typeset(tokens, predicates))
        return Conjunction(name, tuple(specs))
    raise QueryParseError(f"pattern must start with seq( or and(, got {keyword!r}")


def _parse_step(tokens: _Tokens, predicates):
    if tokens.accept("any"):
        tokens.expect("(")
        n = int(float(tokens.next()))
        tokens.expect(",")
        specs = [_parse_typeset(tokens, predicates)]
        while tokens.accept(","):
            specs.append(_parse_typeset(tokens, predicates))
        tokens.expect(")")
        return any_of(n, specs)
    if tokens.accept("some"):
        tokens.expect("(")
        min_count = 1
        peeked = tokens.peek()
        if peeked is not None and peeked[0].isdigit():
            min_count = int(float(tokens.next()))
            tokens.expect(",")
        inner = _parse_typeset(tokens, predicates)
        tokens.expect(")")
        return KleeneStep(inner, min_count)
    if tokens.accept("not"):
        return NegationStep(_parse_typeset(tokens, predicates))
    return _parse_typeset(tokens, predicates)


def _parse_typeset(tokens: _Tokens, predicates) -> EventSpec:
    names = [tokens.next()]
    first_char = names[0][0]
    if not (first_char.isalpha() or first_char == "_"):
        raise QueryParseError(f"expected an event type name, got {names[0]!r}")
    while tokens.accept("|"):
        names.append(tokens.next())
    predicate = None
    for type_name in names:
        if type_name in predicates:
            predicate = predicates[type_name]
            break
    return spec(names, predicate=predicate)


def _parse_typelist_names(tokens: _Tokens) -> List[str]:
    names = [tokens.next()]
    while tokens.accept("|") or tokens.accept(","):
        names.append(tokens.next())
    return names


# ---------------------------------------------------------------------------
# rendering (the inverse direction: AST -> query text)
# ---------------------------------------------------------------------------


def _render_spec(s: EventSpec) -> str:
    if s.types is None:
        raise ValueError("wildcard specs are not expressible in the language")
    return "|".join(sorted(s.types))


def render_pattern(pattern) -> str:
    """Render a pattern back to the language's ``from`` clause.

    Inverse of the pattern part of :func:`parse_query` (predicates are
    Python callables and cannot be rendered; they are dropped).
    """
    from repro.cep.patterns.ast import AnyStep, SingleStep

    if isinstance(pattern, Conjunction):
        inner = ", ".join(_render_spec(s) for s in pattern.specs)
        return f"and({inner})"
    parts: List[str] = []
    for step in pattern.steps:
        if isinstance(step, SingleStep):
            parts.append(_render_spec(step.spec))
        elif isinstance(step, AnyStep):
            inner = ", ".join(_render_spec(s) for s in step.specs)
            parts.append(f"any({step.n}, {inner})")
        elif isinstance(step, KleeneStep):
            parts.append(f"some({step.min_count}, {_render_spec(step.spec)})")
        elif isinstance(step, NegationStep):
            parts.append(f"not {_render_spec(step.spec)}")
        else:  # pragma: no cover - defensive
            raise ValueError(f"cannot render step {step!r}")
    return "seq(" + "; ".join(parts) + ")"

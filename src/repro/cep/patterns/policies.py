"""Selection and consumption policies (paper §2, after Snoop/Zimmer).

*Selection* decides which event instances participate in a match when
several candidates exist in a window:

- ``FIRST``: the earliest candidate instances are chosen.
- ``LAST``: the latest candidate instances are chosen.
- ``EACH``: every combination is reported (bounded by the matcher's
  ``max_matches``).
- ``CUMULATIVE``: all candidate instances are folded into one match.

*Consumption* decides whether an event instance may be reused across
matches in the same window:

- ``CONSUMED``: instances used by a match cannot be reused.
- ``ZERO``: instances remain available to later matches.
"""

from __future__ import annotations

import enum


class SelectionPolicy(enum.Enum):
    """Which candidate event instances participate in a match."""

    FIRST = "first"
    LAST = "last"
    EACH = "each"
    CUMULATIVE = "cumulative"


class ConsumptionPolicy(enum.Enum):
    """Whether matched event instances can be reused by later matches."""

    CONSUMED = "consumed"
    ZERO = "zero"

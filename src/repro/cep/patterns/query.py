"""Query: a pattern plus windowing and policies, ready to deploy.

A :class:`Query` is what gets handed to the CEP operator: the pattern
to detect, a factory for the window assigner (a fresh assigner per run,
so ground truth and shedding runs see identical windowing) and the
selection/consumption policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Union

from repro.cep.patterns.ast import Conjunction, Pattern
from repro.cep.patterns.matcher import PatternMatcher
from repro.cep.patterns.policies import ConsumptionPolicy, SelectionPolicy
from repro.cep.windows import WindowAssigner


@dataclass
class Query:
    """A deployable CEP query.

    Attributes
    ----------
    name:
        Identifier used in complex events and experiment reports.
    pattern:
        Sequence or conjunction pattern to detect.
    window_factory:
        Zero-argument callable producing a fresh window assigner.
    selection / consumption:
        Matching policies (paper §2).
    max_matches_per_window:
        Complex events emitted per window; the paper's evaluation
        setting is 1.
    """

    name: str
    pattern: Union[Pattern, Conjunction]
    window_factory: Callable[[], WindowAssigner]
    selection: SelectionPolicy = SelectionPolicy.FIRST
    consumption: ConsumptionPolicy = ConsumptionPolicy.CONSUMED
    max_matches_per_window: int = 1

    def new_assigner(self) -> WindowAssigner:
        """A fresh window assigner for one run over a stream."""
        return self.window_factory()

    def new_matcher(self) -> PatternMatcher:
        """A matcher configured with this query's policies."""
        return PatternMatcher(
            self.pattern,
            selection=self.selection,
            consumption=self.consumption,
            max_matches=self.max_matches_per_window,
        )

    def pattern_size(self) -> int:
        """Number of primitive events per full match."""
        return self.pattern.match_size()

    def with_selection(self, selection: SelectionPolicy) -> "Query":
        """Copy of this query under a different selection policy."""
        return Query(
            name=self.name,
            pattern=self.pattern,
            window_factory=self.window_factory,
            selection=selection,
            consumption=self.consumption,
            max_matches_per_window=self.max_matches_per_window,
        )

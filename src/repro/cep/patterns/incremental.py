"""Incremental (event-at-a-time) pattern matching.

The batch :class:`~repro.cep.patterns.matcher.PatternMatcher` evaluates
a window once it is complete.  Real CEP engines (SASE, Tesla runtimes)
instead advance an automaton per arriving event and emit the complex
event the moment the pattern completes -- detection latency is bound to
the *completing* event, not to the window close.

:class:`IncrementalWindowMatcher` implements that evaluation style for
sequence patterns under the *first* selection policy with *consumed*
consumption: a greedy run advances step by step as relevant events
arrive; negation guards poison the gap they watch; ``any`` and
``kleene`` steps accumulate occurrences online.  With one match per
window (the paper's evaluation setting) it emits exactly the match the
batch matcher finds -- an equivalence that is property-tested -- just
earlier.  With multiple matches per window the single pass cannot
revisit anchors it already passed (that would need full NFA state), so
it reports a prefix of the batch matcher's matches.

This module also backs the "partial match" notion of the pSPICE
follow-up work: :attr:`IncrementalWindowMatcher.partial_progress`
exposes how far the current run has advanced.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.cep.events import Event
from repro.cep.patterns.ast import (
    AnyStep,
    KleeneStep,
    NegationStep,
    Pattern,
    SingleStep,
    Step,
)
from repro.cep.patterns.matcher import Match


class IncrementalWindowMatcher:
    """Online matcher for one window (first selection, consumed).

    Feed events in window order with :meth:`feed`; each call returns
    the matches completed *by that event* (usually empty, at most one
    unless ``max_matches`` allows more and later events complete runs).
    Call :meth:`finish` at window close to flush a trailing kleene run.
    """

    def __init__(self, pattern: Pattern, max_matches: int = 1) -> None:
        if max_matches <= 0:
            raise ValueError("max_matches must be positive")
        self.pattern = pattern
        self.max_matches = max_matches
        self._matches_found = 0
        self._consumed: set = set()
        self._reset_run()

    # ------------------------------------------------------------------
    def _reset_run(self) -> None:
        self._step_index = 0
        self._bound: List[Tuple[int, Event]] = []
        self._any_used_specs: set = set()
        self._any_taken: List[Tuple[int, Event]] = []
        self._kleene_taken: List[Tuple[int, Event]] = []

    def _current(self) -> Optional[Tuple[Optional[NegationStep], Step]]:
        """(pending negation, positive step) at the run's frontier."""
        steps = self.pattern.steps
        index = self._step_index
        negation: Optional[NegationStep] = None
        if index < len(steps) and isinstance(steps[index], NegationStep):
            negation = steps[index]
            index += 1
        if index >= len(steps):
            return None
        return negation, steps[index]

    def _advance_step(self) -> None:
        steps = self.pattern.steps
        if isinstance(steps[self._step_index], NegationStep):
            self._step_index += 1
        self._step_index += 1
        self._any_used_specs = set()
        self._any_taken = []
        self._kleene_taken = []

    def _next_positive_after_kleene(self) -> Optional[Step]:
        steps = self.pattern.steps
        index = self._step_index
        if isinstance(steps[index], NegationStep):
            index += 1
        for step in steps[index + 1 :]:
            if not isinstance(step, NegationStep):
                return step
        return None

    @property
    def partial_progress(self) -> float:
        """Fraction of the pattern's minimal match already bound.

        The "partial match completion" quantity pSPICE reasons about.
        """
        total = self.pattern.match_size()
        bound = len(self._bound) + len(self._any_taken) + len(self._kleene_taken)
        return min(1.0, bound / total) if total else 1.0

    # ------------------------------------------------------------------
    def feed(self, event: Event, position: int) -> List[Match]:
        """Process one window event; return matches it completed."""
        if self._matches_found >= self.max_matches:
            return []
        frontier = self._current()
        if frontier is None:  # pragma: no cover - run completes eagerly
            return []
        negation, step = frontier

        # a kleene run may be completed by an event that belongs to the
        # *next* step; handle that before the generic logic
        if isinstance(step, KleeneStep) and self._kleene_taken:
            following = self._next_positive_after_kleene()
            if (
                len(self._kleene_taken) >= step.min_count
                and following is not None
                and following.accepts(event)
                and not step.spec.matches(event)
            ):
                self._bound.extend(self._kleene_taken)
                self._advance_step()
                return self.feed(event, position)

        if negation is not None and negation.accepts(event):
            if not (isinstance(step, (AnyStep, KleeneStep)) and (
                self._any_taken or self._kleene_taken
            )):
                # the guarded gap is poisoned: the greedy run dies; a
                # fresh run may start on later events
                self._reset_run()
                return []

        if isinstance(step, SingleStep):
            if step.accepts(event):
                self._bound.append((position, event))
                self._advance_step()
                return self._maybe_complete()
            return []

        if isinstance(step, AnyStep):
            if step.distinct_specs:
                spec_index = None
                for si, s in enumerate(step.specs):
                    if si not in self._any_used_specs and s.matches(event):
                        spec_index = si
                        break
                if spec_index is None:
                    return []
                self._any_used_specs.add(spec_index)
            elif not step.accepts(event):
                return []
            self._any_taken.append((position, event))
            if len(self._any_taken) == step.n:
                self._bound.extend(self._any_taken)
                self._advance_step()
                return self._maybe_complete()
            return []

        if isinstance(step, KleeneStep):
            if step.spec.matches(event):
                self._kleene_taken.append((position, event))
                if (
                    step.max_count is not None
                    and len(self._kleene_taken) == step.max_count
                ):
                    self._bound.extend(self._kleene_taken)
                    self._advance_step()
                    return self._maybe_complete()
            return []

        raise AssertionError(f"unknown step type {step!r}")  # pragma: no cover

    def _maybe_complete(self) -> List[Match]:
        if self._current() is not None:
            return []
        match = sorted(self._bound, key=lambda pe: pe[0])
        self._matches_found += 1
        self._consumed.update(pos for pos, _e in match)
        self._reset_run()
        return [match]

    def finish(self) -> List[Match]:
        """Window close: flush a trailing kleene run if it suffices."""
        if self._matches_found >= self.max_matches:
            return []
        frontier = self._current()
        if frontier is None:
            return []
        _negation, step = frontier
        if (
            isinstance(step, KleeneStep)
            and len(self._kleene_taken) >= step.min_count
        ):
            self._bound.extend(self._kleene_taken)
            self._advance_step()
            return self._maybe_complete()
        return []


def match_window_incrementally(
    pattern: Pattern,
    events,
    positions=None,
    max_matches: int = 1,
) -> List[Match]:
    """Convenience wrapper mirroring ``PatternMatcher.match_window``."""
    matcher = IncrementalWindowMatcher(pattern, max_matches)
    if positions is None:
        positions = range(len(events))
    out: List[Match] = []
    for event, position in zip(events, positions):
        out.extend(matcher.feed(event, position))
    out.extend(matcher.finish())
    return out

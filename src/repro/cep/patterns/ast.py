"""Pattern abstract syntax: event specs, sequence steps, conjunction.

The constructors :func:`spec`, :func:`seq` and :func:`any_of` form a
small builder API::

    # Q1: a striker possession followed by any 3 defender events
    pattern = seq(
        "man_marking",
        spec("STR"),
        any_of(3, [spec(f"DF{i}") for i in range(1, 8)]),
    )

Specs match on the event type name and, optionally, an attribute
predicate.  A spec with ``types=None`` matches any type (used by
wildcard steps).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, FrozenSet, Iterable, List, Optional, Sequence, Union

from repro.cep.events import Event


@dataclass(frozen=True)
class EventSpec:
    """Matches a primitive event by type and optional predicate.

    Attributes
    ----------
    types:
        Frozen set of accepted type names, or ``None`` for any type.
    predicate:
        Optional attribute predicate; the event must satisfy it.
    label:
        Human-readable name used in reprs and complex-event payloads.
    """

    types: Optional[FrozenSet[str]]
    predicate: Optional[Callable[[Event], bool]] = field(
        default=None, compare=False, hash=False
    )
    label: str = ""

    def matches(self, event: Event) -> bool:
        """True iff ``event`` satisfies this spec."""
        if self.types is not None and event.event_type not in self.types:
            return False
        if self.predicate is not None and not self.predicate(event):
            return False
        return True

    def __repr__(self) -> str:
        if self.label:
            return f"Spec({self.label})"
        if self.types is None:
            return "Spec(*)"
        return f"Spec({'|'.join(sorted(self.types))})"


def spec(
    types: Union[str, Iterable[str], None],
    predicate: Optional[Callable[[Event], bool]] = None,
    label: str = "",
) -> EventSpec:
    """Build an :class:`EventSpec` from a type name, iterable or ``None``."""
    if types is None:
        frozen: Optional[FrozenSet[str]] = None
    elif isinstance(types, str):
        frozen = frozenset([types])
    else:
        frozen = frozenset(types)
    if not label:
        label = "*" if frozen is None else "|".join(sorted(frozen))
    return EventSpec(frozen, predicate, label)


class Step:
    """Base class for one step of a sequence pattern."""

    def accepts(self, event: Event) -> bool:
        """True iff ``event`` can participate in this step."""
        raise NotImplementedError


@dataclass(frozen=True)
class SingleStep(Step):
    """A step matched by exactly one event."""

    spec: EventSpec

    def accepts(self, event: Event) -> bool:
        return self.spec.matches(event)

    def __repr__(self) -> str:
        return f"Single({self.spec!r})"


@dataclass(frozen=True)
class AnyStep(Step):
    """The ``any(n, s1..sm)`` operator: ``n`` events, each matching any spec.

    With ``distinct_specs=True`` (default, matching Q1/Q2 semantics: "any
    *n* defenders", "any *n* rising stocks") each spec may contribute at
    most one event to the step.
    """

    n: int
    specs: tuple
    distinct_specs: bool = True

    def __post_init__(self) -> None:
        if self.n <= 0:
            raise ValueError("any-step requires n >= 1")
        if self.distinct_specs and self.n > len(self.specs):
            raise ValueError(
                f"any({self.n}) over {len(self.specs)} distinct specs can never match"
            )

    def accepts(self, event: Event) -> bool:
        return any(s.matches(event) for s in self.specs)

    def first_matching_spec(self, event: Event) -> Optional[int]:
        """Index of the first spec matching ``event`` or ``None``."""
        for index, s in enumerate(self.specs):
            if s.matches(event):
                return index
        return None

    def __repr__(self) -> str:
        return f"Any({self.n} of {len(self.specs)} specs)"


@dataclass(frozen=True)
class NegationStep(Step):
    """An event that must *not* occur between the adjacent steps."""

    spec: EventSpec

    def accepts(self, event: Event) -> bool:
        return self.spec.matches(event)

    def __repr__(self) -> str:
        return f"Not({self.spec!r})"


@dataclass(frozen=True)
class KleeneStep(Step):
    """SASE's Kleene-plus: one or more consecutive-relevant events.

    Matches a maximal greedy run of events satisfying ``spec`` (with
    skip-till-next semantics, irrelevant events between occurrences are
    skipped but an event matching the *next* step ends the run).  At
    least ``min_count`` occurrences are required; ``max_count`` bounds
    greed (``None`` = unbounded).
    """

    spec: EventSpec
    min_count: int = 1
    max_count: Optional[int] = None

    def __post_init__(self) -> None:
        if self.min_count <= 0:
            raise ValueError("kleene step needs min_count >= 1")
        if self.max_count is not None and self.max_count < self.min_count:
            raise ValueError("max_count cannot be below min_count")

    def accepts(self, event: Event) -> bool:
        return self.spec.matches(event)

    def __repr__(self) -> str:
        bound = "∞" if self.max_count is None else str(self.max_count)
        return f"Kleene({self.spec!r}, {self.min_count}..{bound})"


@dataclass(frozen=True)
class Pattern:
    """A named sequence pattern.

    ``steps`` are matched in order with skip-till-next/any-match
    semantics: events not relevant to the current step are skipped.
    """

    name: str
    steps: tuple

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("pattern needs at least one step")
        if isinstance(self.steps[0], NegationStep) or isinstance(
            self.steps[-1], NegationStep
        ):
            raise ValueError("negation must sit between two positive steps")

    @property
    def positive_steps(self) -> List[Step]:
        """Steps that consume events (everything but negations)."""
        return [s for s in self.steps if not isinstance(s, NegationStep)]

    def match_size(self) -> int:
        """Number of primitive events in one *minimal* full match."""
        total = 0
        for step in self.positive_steps:
            if isinstance(step, AnyStep):
                total += step.n
            elif isinstance(step, KleeneStep):
                total += step.min_count
            else:
                total += 1
        return total

    def event_type_repetitions(self) -> dict:
        """Count how often each type name is referenced by the pattern.

        Used by the BL baseline shedder, which assigns utility
        proportional to a type's repetition in the pattern.  Types
        referenced through an any-step contribute the step's share
        ``n / len(specs)`` to each referenced type.
        """
        counts: dict = {}
        for step in self.positive_steps:
            if isinstance(step, SingleStep):
                for name in step.spec.types or ():
                    counts[name] = counts.get(name, 0.0) + 1.0
            elif isinstance(step, KleeneStep):
                for name in step.spec.types or ():
                    counts[name] = counts.get(name, 0.0) + float(step.min_count)
            elif isinstance(step, AnyStep):
                share = step.n / len(step.specs)
                for s in step.specs:
                    for name in s.types or ():
                        counts[name] = counts.get(name, 0.0) + share
        return counts

    def referenced_types(self) -> FrozenSet[str]:
        """All type names referenced by any positive step."""
        names: set = set()
        for step in self.positive_steps:
            specs = step.specs if isinstance(step, AnyStep) else (step.spec,)
            for s in specs:
                if s.types is not None:
                    names.update(s.types)
        return frozenset(names)

    def __repr__(self) -> str:
        return f"Pattern({self.name}, {len(self.steps)} steps)"


def kleene(
    types: Union[str, Iterable[str], None],
    min_count: int = 1,
    max_count: Optional[int] = None,
    predicate: Optional[Callable[[Event], bool]] = None,
) -> KleeneStep:
    """Build a Kleene-plus step over a type set."""
    return KleeneStep(spec(types, predicate), min_count, max_count)


def seq(name: str, *steps: Union[Step, EventSpec]) -> Pattern:
    """Build a sequence pattern; bare specs are wrapped in single steps."""
    wrapped: List[Step] = []
    for s in steps:
        if isinstance(s, EventSpec):
            wrapped.append(SingleStep(s))
        elif isinstance(s, Step):
            wrapped.append(s)
        else:
            raise TypeError(f"not a step or spec: {s!r}")
    return Pattern(name, tuple(wrapped))


def any_of(
    n: int, specs: Sequence[EventSpec], distinct_specs: bool = True
) -> AnyStep:
    """Build an ``any(n, ...)`` step."""
    return AnyStep(n, tuple(specs), distinct_specs)


@dataclass(frozen=True)
class Conjunction:
    """Unordered co-occurrence of specs within one window.

    This models the paper's introductory QE example (``B() and A()
    within 1min``).  A match is one event per spec, in any order.
    """

    name: str
    specs: tuple

    def __post_init__(self) -> None:
        if not self.specs:
            raise ValueError("conjunction needs at least one spec")

    def match_size(self) -> int:
        """Number of primitive events in one full match."""
        return len(self.specs)

    def event_type_repetitions(self) -> dict:
        counts: dict = {}
        for s in self.specs:
            for name in s.types or ():
                counts[name] = counts.get(name, 0.0) + 1.0
        return counts

    def referenced_types(self) -> FrozenSet[str]:
        names: set = set()
        for s in self.specs:
            if s.types is not None:
                names.update(s.types)
        return frozenset(names)

    def __repr__(self) -> str:
        return f"Conjunction({self.name}, {len(self.specs)} specs)"

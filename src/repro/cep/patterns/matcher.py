"""Pattern matching over windows with skip-till-next/any-match semantics.

The matcher operates on a *window content*: the ordered list of events
the operator actually processes for that window (after shedding, if
any).  It returns matches as lists of ``(position, event)`` pairs where
``position`` is the index of the event in the **unshedded** window --
callers pass positions alongside events so that the utility model can
learn true window positions even when some events were shed.

Supported:

- sequence patterns (:class:`~repro.cep.patterns.ast.Pattern`) with
  single, ``any(n, ...)`` and negation steps,
- conjunction patterns (:class:`~repro.cep.patterns.ast.Conjunction`),
- *first*, *last*, *each* and *cumulative* selection policies,
- *consumed* and *zero* consumption policies,
- a cap on matches per window (the paper's default setting is one
  complex event per window).
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple, Union

from repro.cep.events import Event
from repro.cep.patterns.ast import (
    AnyStep,
    Conjunction,
    KleeneStep,
    NegationStep,
    Pattern,
    SingleStep,
    Step,
)
from repro.cep.patterns.policies import ConsumptionPolicy, SelectionPolicy

# One binding of the pattern: (window position, event) in position order.
Match = List[Tuple[int, Event]]

# The matcher's working view of a window: parallel (position, event) data.
_Positioned = Sequence[Tuple[int, Event]]


class PatternMatcher:
    """Matches one pattern against window contents.

    Parameters
    ----------
    pattern:
        A sequence :class:`Pattern` or a :class:`Conjunction`.
    selection:
        Selection policy; default ``FIRST``.
    consumption:
        Consumption policy; default ``CONSUMED``.  Only relevant when
        ``max_matches > 1``.
    max_matches:
        Maximum complex events detected per window.  The paper's
        evaluation uses 1.
    """

    def __init__(
        self,
        pattern: Union[Pattern, Conjunction],
        selection: SelectionPolicy = SelectionPolicy.FIRST,
        consumption: ConsumptionPolicy = ConsumptionPolicy.CONSUMED,
        max_matches: int = 1,
    ) -> None:
        if max_matches <= 0:
            raise ValueError("max_matches must be positive")
        self.pattern = pattern
        self.selection = selection
        self.consumption = consumption
        self.max_matches = max_matches

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def match_window(
        self,
        events: Sequence[Event],
        positions: Optional[Sequence[int]] = None,
    ) -> List[Match]:
        """Return up to ``max_matches`` matches in ``events``.

        ``positions[i]`` is the unshedded-window position of
        ``events[i]``; defaults to ``range(len(events))`` when the
        window was not shed.
        """
        if positions is None:
            positioned: _Positioned = list(enumerate(events))
        else:
            if len(positions) != len(events):
                raise ValueError("positions and events must align")
            positioned = list(zip(positions, events))

        if isinstance(self.pattern, Conjunction):
            return self._match_conjunction(positioned)
        return self._match_sequence(positioned)

    # ------------------------------------------------------------------
    # sequence patterns
    # ------------------------------------------------------------------
    def _match_sequence(self, positioned: _Positioned) -> List[Match]:
        if self.selection is SelectionPolicy.FIRST:
            return self._collect(positioned, reverse=False)
        if self.selection is SelectionPolicy.LAST:
            return self._collect(positioned, reverse=True)
        if self.selection is SelectionPolicy.EACH:
            return self._match_each(positioned)
        if self.selection is SelectionPolicy.CUMULATIVE:
            match = self._match_cumulative(positioned)
            return [match] if match else []
        raise AssertionError(f"unknown selection policy {self.selection}")

    def _collect(self, positioned: _Positioned, reverse: bool) -> List[Match]:
        """Greedy repeated matching under first (or mirrored last) policy."""
        assert isinstance(self.pattern, Pattern)
        steps: List[Step] = list(self.pattern.steps)
        view: List[Tuple[int, Event]] = list(positioned)
        if reverse:
            steps = list(reversed(steps))
            view = list(reversed(view))

        matches: List[Match] = []
        consumed: set = set()  # window positions consumed by earlier matches
        start = 0
        while len(matches) < self.max_matches:
            found, first_bound_index = self._greedy_once(view, steps, start, consumed)
            if found is None:
                if first_bound_index is None:
                    break  # no anchor at all: nothing further to try
                # a negation (or exhaustion) killed the run after it had
                # anchored; retry past the dead anchor -- a later anchor
                # may sit beyond the poisoning event
                start = first_bound_index + 1
                continue
            match_positions = [pos for pos, _event in found]
            if self.consumption is ConsumptionPolicy.CONSUMED:
                consumed.update(match_positions)
                # next match may start anywhere not consumed
                start = 0
            else:
                # zero consumption: advance past this match's anchor so the
                # same match is not reported forever
                anchor_view_index = self._view_index_of(view, found[0][0])
                start = anchor_view_index + 1
            ordered = sorted(found, key=lambda pe: pe[0])
            matches.append(ordered)
        return matches

    @staticmethod
    def _view_index_of(view: _Positioned, position: int) -> int:
        for index, (pos, _event) in enumerate(view):
            if pos == position:
                return index
        raise AssertionError("position vanished from view")

    def _greedy_once(
        self,
        view: _Positioned,
        steps: Sequence[Step],
        start: int,
        consumed: set,
    ) -> Tuple[Optional[Match], Optional[int]]:
        """One greedy skip-till-next scan of ``view`` from index ``start``.

        Negation steps poison the gap they guard: if an event matching
        the negated spec appears while scanning for the following
        positive step, the scan fails.

        Returns ``(match, first_bound_view_index)``; on failure the
        second element tells the caller where the dead run anchored so
        it can retry past it (``None`` when nothing anchored at all).
        """
        cursor = start
        bound: Match = []
        first_bound_index: Optional[int] = None
        index = 0
        while index < len(steps):
            step = steps[index]
            negation: Optional[NegationStep] = None
            if isinstance(step, NegationStep):
                negation = step
                index += 1
                if index >= len(steps):  # validated at Pattern construction
                    raise AssertionError("dangling negation step")
                step = steps[index]

            if isinstance(step, SingleStep):
                result = self._scan_single(view, cursor, step, negation, consumed)
                if result is None:
                    return None, first_bound_index
                view_index, pos_event = result
                bound.append(pos_event)
                if first_bound_index is None:
                    first_bound_index = view_index
                cursor = view_index + 1
            elif isinstance(step, AnyStep):
                result_any = self._scan_any(view, cursor, step, negation, consumed)
                if result_any is None:
                    return None, first_bound_index
                view_index, pos_events = result_any
                bound.extend(pos_events)
                if first_bound_index is None and pos_events:
                    first_bound_index = self._view_index_of(view, pos_events[0][0])
                cursor = view_index + 1
            elif isinstance(step, KleeneStep):
                following = self._next_positive_step(steps, index + 1)
                result_kleene = self._scan_kleene(
                    view, cursor, step, negation, consumed, following
                )
                if result_kleene is None:
                    return None, first_bound_index
                view_index, pos_events = result_kleene
                bound.extend(pos_events)
                if first_bound_index is None and pos_events:
                    first_bound_index = self._view_index_of(view, pos_events[0][0])
                cursor = view_index + 1
            else:  # pragma: no cover - defensive
                raise AssertionError(f"unknown step type {step!r}")
            index += 1
        return bound, first_bound_index

    @staticmethod
    def _next_positive_step(steps: Sequence[Step], index: int) -> Optional[Step]:
        for step in steps[index:]:
            if not isinstance(step, NegationStep):
                return step
        return None

    @staticmethod
    def _scan_kleene(
        view: _Positioned,
        cursor: int,
        step: KleeneStep,
        negation: Optional[NegationStep],
        consumed: set,
        following: Optional[Step],
    ) -> Optional[Tuple[int, List[Tuple[int, Event]]]]:
        """Greedy run of step occurrences.

        The run ends when ``max_count`` is reached, the window is
        exhausted, or -- once ``min_count`` occurrences are bound -- an
        event that the *following* positive step accepts appears (so
        ``kleene(A); B`` does not swallow past the B that completes the
        match).
        """
        taken: List[Tuple[int, Event]] = []
        last_view_index = cursor - 1
        for view_index in range(cursor, len(view)):
            pos, event = view[view_index]
            if pos in consumed:
                continue
            if negation is not None and not taken and negation.accepts(event):
                return None
            if (
                len(taken) >= step.min_count
                and following is not None
                and following.accepts(event)
                and not step.spec.matches(event)
            ):
                break
            if step.spec.matches(event):
                taken.append((pos, event))
                last_view_index = view_index
                if step.max_count is not None and len(taken) == step.max_count:
                    break
        if len(taken) < step.min_count:
            return None
        return last_view_index, taken

    @staticmethod
    def _scan_single(
        view: _Positioned,
        cursor: int,
        step: SingleStep,
        negation: Optional[NegationStep],
        consumed: set,
    ) -> Optional[Tuple[int, Tuple[int, Event]]]:
        for view_index in range(cursor, len(view)):
            pos, event = view[view_index]
            if pos in consumed:
                continue
            if negation is not None and negation.accepts(event):
                return None
            if step.accepts(event):
                return view_index, (pos, event)
        return None

    @staticmethod
    def _scan_any(
        view: _Positioned,
        cursor: int,
        step: AnyStep,
        negation: Optional[NegationStep],
        consumed: set,
    ) -> Optional[Tuple[int, List[Tuple[int, Event]]]]:
        taken: List[Tuple[int, Event]] = []
        used_specs: set = set()
        last_view_index = cursor - 1
        for view_index in range(cursor, len(view)):
            pos, event = view[view_index]
            if pos in consumed:
                continue
            if negation is not None and not taken and negation.accepts(event):
                return None
            if step.distinct_specs:
                spec_index = None
                for si, s in enumerate(step.specs):
                    if si not in used_specs and s.matches(event):
                        spec_index = si
                        break
                if spec_index is None:
                    continue
                used_specs.add(spec_index)
            else:
                if not step.accepts(event):
                    continue
            taken.append((pos, event))
            last_view_index = view_index
            if len(taken) == step.n:
                return last_view_index, taken
        return None

    # -- each -----------------------------------------------------------
    def _match_each(self, positioned: _Positioned) -> List[Match]:
        """Enumerate matches by backtracking, earliest-first, capped."""
        assert isinstance(self.pattern, Pattern)
        matches: List[Match] = []
        consumed: set = set()

        def backtrack(step_index: int, cursor: int, bound: Match) -> None:
            if len(matches) >= self.max_matches:
                return
            steps = self.pattern.steps
            if step_index == len(steps):
                matches.append(sorted(bound, key=lambda pe: pe[0]))
                if self.consumption is ConsumptionPolicy.CONSUMED:
                    consumed.update(pos for pos, _e in bound)
                return
            step = steps[step_index]
            negation: Optional[NegationStep] = None
            if isinstance(step, NegationStep):
                negation = step
                step_index += 1
                step = steps[step_index]
            if isinstance(step, SingleStep):
                for view_index in range(cursor, len(positioned)):
                    pos, event = positioned[view_index]
                    if pos in consumed:
                        continue
                    if negation is not None and negation.accepts(event):
                        return
                    if step.accepts(event):
                        backtrack(step_index + 1, view_index + 1, bound + [(pos, event)])
                        if len(matches) >= self.max_matches:
                            return
            elif isinstance(step, AnyStep):
                found = self._scan_any(positioned, cursor, step, negation, consumed)
                if found is not None:
                    view_index, pos_events = found
                    backtrack(step_index + 1, view_index + 1, bound + pos_events)
            elif isinstance(step, KleeneStep):
                # kleene runs are matched greedily, not enumerated
                following = self._next_positive_step(self.pattern.steps, step_index + 1)
                found = self._scan_kleene(
                    positioned, cursor, step, negation, consumed, following
                )
                if found is not None:
                    view_index, pos_events = found
                    backtrack(step_index + 1, view_index + 1, bound + pos_events)
            else:  # pragma: no cover - defensive
                raise AssertionError(f"unknown step type {step!r}")

        backtrack(0, 0, [])
        return matches

    # -- cumulative ------------------------------------------------------
    def _match_cumulative(self, positioned: _Positioned) -> Optional[Match]:
        """Fold every instance of every step into one composite match.

        An instance of a later step counts only if it occurs after the
        first instance of the previous step (sequence semantics).
        """
        assert isinstance(self.pattern, Pattern)
        bound: Match = []
        cursor = 0
        for step in self.pattern.steps:
            if isinstance(step, NegationStep):
                continue
            instances = [
                (pos, event)
                for pos, event in positioned[cursor:]
                if step.accepts(event)
            ]
            if isinstance(step, AnyStep):
                need = step.n
            elif isinstance(step, KleeneStep):
                need = step.min_count
            else:
                need = 1
            if len(instances) < need:
                return None
            bound.extend(instances)
            first_pos = instances[0][0]
            cursor = self._view_index_of(positioned, first_pos) + 1
        return sorted(bound, key=lambda pe: pe[0])

    # ------------------------------------------------------------------
    # conjunction patterns
    # ------------------------------------------------------------------
    def _match_conjunction(self, positioned: _Positioned) -> List[Match]:
        assert isinstance(self.pattern, Conjunction)
        order = positioned
        if self.selection is SelectionPolicy.LAST:
            order = list(reversed(positioned))
        bound: Match = []
        used_positions: set = set()
        for s in self.pattern.specs:
            chosen: Optional[Tuple[int, Event]] = None
            for pos, event in order:
                if pos in used_positions:
                    continue
                if s.matches(event):
                    chosen = (pos, event)
                    break
            if chosen is None:
                return []
            used_positions.add(chosen[0])
            bound.append(chosen)
        return [sorted(bound, key=lambda pe: pe[0])]

"""Pattern language, policies and matcher for the CEP substrate.

A Tesla/SASE-like subset sufficient for the paper's evaluation queries:

- ``seq(s1; s2; ...; sk)`` -- the *sequence* operator with
  skip-till-next/any-match semantics (Q3, and Q4 with repetition).
- ``seq(anchor; any(n, s1..sm))`` -- *sequence with any*: an anchor
  event followed by any ``n`` events matching any of the given specs
  (Q1, Q2).
- ``negation`` -- an event that must *not* occur between two sequence
  steps.
- ``conjunction`` -- unordered co-occurrence of specs in a window (the
  paper's introductory QE example).

Selection policies (*first*, *last*, *each*, *cumulative*) and
consumption policies (*consumed*, *zero*) follow Snoop/Zimmer as
described in paper §2.
"""

from repro.cep.patterns.ast import (
    AnyStep,
    Conjunction,
    EventSpec,
    KleeneStep,
    NegationStep,
    Pattern,
    SingleStep,
    Step,
    any_of,
    kleene,
    seq,
    spec,
)
from repro.cep.patterns.policies import ConsumptionPolicy, SelectionPolicy
from repro.cep.patterns.matcher import Match, PatternMatcher
from repro.cep.patterns.query import Query

__all__ = [
    "AnyStep",
    "Conjunction",
    "ConsumptionPolicy",
    "EventSpec",
    "KleeneStep",
    "Match",
    "NegationStep",
    "Pattern",
    "PatternMatcher",
    "Query",
    "SelectionPolicy",
    "SingleStep",
    "Step",
    "any_of",
    "kleene",
    "seq",
    "spec",
]

"""Window-based data-parallel CEP (the paper's deployment context).

The paper's §1/§5 situate eSPICE inside window-based data-parallel CEP
(RIP, SPECTRE): complete windows are distributed round-robin over
several operator instances, each instance matches its windows
independently, and the merged complex events equal a sequential run's.
The paper claims eSPICE "is independent of the parallelism degree of
the operator" -- this module makes that claim testable: the same
shedder object is consulted by every instance with identical (type,
position) features, so detections are invariant in the degree.

This is a logical parallelisation (no threads): instances model the
per-node operators of a deployment, and the scheduler dispatches whole
windows, which is exactly the unit of distribution in window-based
parallelisation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional

from repro.cep.events import ComplexEvent, Event
from repro.cep.patterns.matcher import Match
from repro.cep.patterns.query import Query
from repro.cep.windows import Window


@dataclass
class _InstanceStats:
    """Per-instance accounting."""

    windows: int = 0
    memberships_kept: int = 0
    memberships_dropped: int = 0
    complex_events: int = 0


class WindowParallelOperator:
    """Round-robin window-parallel operator with optional shedding.

    Windows are dispatched to ``degree`` logical instances in
    round-robin order of window id.  Every instance applies the shared
    ``shedder`` (drop decisions depend only on type and position, so
    sharing is safe and mirrors a replicated utility model) and the
    query's matcher.

    Complex events are merged in window-id order, so the output is
    identical to a sequential operator's.
    """

    def __init__(
        self,
        query: Query,
        degree: int = 1,
        shedder: Optional[object] = None,
    ) -> None:
        if degree <= 0:
            raise ValueError("parallelism degree must be positive")
        self.query = query
        self.degree = degree
        self.shedder = shedder
        self.instance_stats: List[_InstanceStats] = [
            _InstanceStats() for _ in range(degree)
        ]
        self._matchers = [query.new_matcher() for _ in range(degree)]
        self._size_sum = 0.0
        self._size_count = 0

    # ------------------------------------------------------------------
    def predicted_window_size(self) -> float:
        """Running average of processed (complete) window sizes."""
        if self._size_count == 0:
            return 0.0
        return self._size_sum / self._size_count

    def prime_window_size(self, size: float, weight: int = 1) -> None:
        """Seed the window-size predictor."""
        self._size_sum += size * weight
        self._size_count += weight

    def instance_of(self, window: Window) -> int:
        """Which instance a window is dispatched to (round-robin)."""
        return window.window_id % self.degree

    # ------------------------------------------------------------------
    def process_window(self, window: Window, now: float = 0.0) -> List[ComplexEvent]:
        """Shed + match one complete window on its instance."""
        instance = self.instance_of(window)
        stats = self.instance_stats[instance]
        stats.windows += 1
        if not window.truncated:
            self._size_sum += window.size
            self._size_count += 1

        predicted = self.predicted_window_size()
        events = window.events
        shedder = self.shedder
        if shedder is not None and getattr(shedder, "active", True):
            # whole-window micro-batch: one vectorized kernel pass
            mask = shedder.should_drop_batch(events, range(len(events)), predicted)
            kept_positions = [p for p, drop in enumerate(mask) if not drop]
            kept_events = [events[p] for p in kept_positions]
            stats.memberships_dropped += len(events) - len(kept_events)
            stats.memberships_kept += len(kept_events)
        else:
            kept_positions = list(range(len(events)))
            kept_events = list(events)
            stats.memberships_kept += len(kept_events)

        matches: List[Match] = self._matchers[instance].match_window(
            kept_events, kept_positions
        )
        complex_events = [
            ComplexEvent(
                pattern_name=self.query.name,
                window_id=window.window_id,
                events=tuple(e for _pos, e in match),
                detection_time=now,
            )
            for match in matches
        ]
        stats.complex_events += len(complex_events)
        return complex_events

    def detect_all(self, stream: Iterable[Event]) -> List[ComplexEvent]:
        """Window the stream, dispatch round-robin, merge in window order.

        Equivalent to ``CEPOperator.detect_all`` for any parallelism
        degree (the invariant the paper claims for eSPICE).
        """
        assigner = self.query.new_assigner()
        out: List[ComplexEvent] = []
        for event in stream:
            for window in assigner.on_event(event).closed:
                out.extend(self.process_window(window, now=event.timestamp))
        for window in assigner.flush():
            out.extend(self.process_window(window))
        out.sort(key=lambda c: c.window_id)
        return out

    # ------------------------------------------------------------------
    def total_windows(self) -> int:
        """Windows processed across all instances."""
        return sum(s.windows for s in self.instance_stats)

    def load_imbalance(self) -> float:
        """max/mean windows per instance (1.0 = perfectly balanced)."""
        counts = [s.windows for s in self.instance_stats]
        mean = sum(counts) / len(counts)
        if mean == 0:
            return 1.0
        return max(counts) / mean

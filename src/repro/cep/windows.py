"""Window operators: count-, time- and pattern-based sliding windows.

The eSPICE paper assumes a window-based CEP system where the input
stream is partitioned into (possibly overlapping) windows by predicates
(paper §2): *count-based* windows open every ``slide`` events and span
``size`` events; *time-based* windows open every ``slide`` seconds and
span ``duration`` seconds; *pattern-based* windows open whenever an
event satisfies a logical predicate (e.g. Q1 opens a window on every
striker event) and span a count or time extent from the opening event.

Window assignment is a pure function of the raw input stream, and is
performed *before* load shedding: the shedder drops an event from
individual windows, so an event's *position within each window* (the
``P`` of ``UT(T, P)``) is its arrival index in that window regardless of
whether other events were shed.

Assigners are streaming objects: feed events one at a time with
:meth:`WindowAssigner.on_event` and they report, per event, the set of
``(window_id, position)`` assignments plus any windows that closed
strictly before the event.  :func:`iter_windows` is a batch convenience
used by ground-truth computation and model training.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, Iterator, List, Optional

from repro.cep.events import Event, EventStream


@dataclass(slots=True)
class WindowRef:
    """An event's membership in one window.

    Slotted: windows overlap, so several refs exist per event on the
    hot path.
    """

    window_id: int
    position: int  # 0-based arrival index of the event within the window


@dataclass(slots=True)
class AssignResult:
    """Result of feeding one event to a :class:`WindowAssigner`.

    Slotted: one instance per event (per chain) on the hot path.
    """

    assignments: List[WindowRef] = field(default_factory=list)
    closed: List["Window"] = field(default_factory=list)


@dataclass(slots=True)
class Window:
    """A closed (complete) window of events.

    ``events`` holds every event assigned to the window in arrival
    order, i.e. the *unshedded* content; position ``i`` in this list is
    the ``P`` used by the utility table.  ``truncated`` marks windows
    force-closed at end of stream (or by the open-window cap): they are
    still matched, but model training skips them so partial windows do
    not skew the reference window size.
    """

    window_id: int
    events: List[Event] = field(default_factory=list)
    open_time: float = 0.0
    close_time: float = 0.0
    truncated: bool = False

    @property
    def size(self) -> int:
        """Number of events assigned to this window."""
        return len(self.events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self.events)

    def __repr__(self) -> str:
        return f"Window(id={self.window_id}, size={self.size})"


class WindowAssigner:
    """Base class for streaming window assigners."""

    def __init__(self) -> None:
        self._next_id = 0
        self._open: Dict[int, Window] = {}

    def _new_window(self, open_time: float) -> Window:
        window = Window(self._next_id, open_time=open_time)
        self._next_id += 1
        self._open[window.window_id] = window
        return window

    def _close(self, window: Window, close_time: float) -> Window:
        window.close_time = close_time
        del self._open[window.window_id]
        return window

    @property
    def open_windows(self) -> List[Window]:
        """Currently open windows, oldest first."""
        return [self._open[wid] for wid in sorted(self._open)]

    def on_event(self, event: Event) -> AssignResult:
        """Assign ``event``; report memberships and windows closed before it."""
        raise NotImplementedError

    def on_events(self, events: Iterable[Event]) -> List[AssignResult]:
        """Assign a micro-batch of events in arrival order.

        Window membership is a pure streaming function, so the base
        implementation is a loop with the dispatch hoisted; assigners
        with cheaper bulk bookkeeping may override.  Results align with
        ``events`` one-to-one -- batched callers
        (:meth:`repro.pipeline.stages.WindowAssignStage.process_batch`)
        rely on that.
        """
        on_event = self.on_event
        return [on_event(event) for event in events]

    def flush(self) -> List[Window]:
        """Close and return every still-open window (end of stream).

        Flushed windows are marked ``truncated``.
        """
        remaining = self.open_windows
        for window in remaining:
            last = window.events[-1].timestamp if window.events else window.open_time
            window.truncated = True
            self._close(window, last)
        return remaining

    def expected_window_size(self, stream_rate: float) -> float:
        """Best-effort estimate of the window size in *events*.

        Used to size the utility table's reference dimension ``N`` and
        by the overload detector's partitioning.  Time-extent assigners
        need the stream rate to convert seconds to events.
        """
        raise NotImplementedError


class CountSlidingWindows(WindowAssigner):
    """Count-based sliding windows: open every ``slide`` events, span ``size``.

    With ``slide == size`` the windows are tumbling.  Q4 in the paper
    uses ``slide = 100`` events with various window sizes.
    """

    def __init__(self, size: int, slide: Optional[int] = None) -> None:
        super().__init__()
        if size <= 0:
            raise ValueError("window size must be positive")
        self.size = size
        self.slide = slide if slide is not None else size
        if self.slide <= 0:
            raise ValueError("slide must be positive")
        self._arrivals = 0

    def on_event(self, event: Event) -> AssignResult:
        result = AssignResult()
        if self._arrivals % self.slide == 0:
            self._new_window(event.timestamp)
        self._arrivals += 1
        for window in self.open_windows:
            window.events.append(event)
            result.assignments.append(WindowRef(window.window_id, window.size - 1))
            if window.size == self.size:
                result.closed.append(self._close(window, event.timestamp))
        return result

    def expected_window_size(self, stream_rate: float) -> float:
        return float(self.size)


class TimeSlidingWindows(WindowAssigner):
    """Time-based sliding windows: open every ``slide`` s, span ``duration`` s.

    A window covers timestamps in ``[open, open + duration)``.  Windows
    close lazily when an event at or past their end arrives (or on
    :meth:`flush`).
    """

    def __init__(self, duration: float, slide: Optional[float] = None) -> None:
        super().__init__()
        if duration <= 0.0:
            raise ValueError("window duration must be positive")
        self.duration = duration
        self.slide = slide if slide is not None else duration
        if self.slide <= 0.0:
            raise ValueError("slide must be positive")
        self._origin: Optional[float] = None
        self._opened_upto: int = 0  # number of slide multiples already opened

    def _open_due_windows(self, now: float) -> None:
        if self._origin is None:
            self._origin = now
        while self._origin + self._opened_upto * self.slide <= now:
            open_time = self._origin + self._opened_upto * self.slide
            self._new_window(open_time)
            self._opened_upto += 1

    def on_event(self, event: Event) -> AssignResult:
        result = AssignResult()
        self._open_due_windows(event.timestamp)
        for window in self.open_windows:
            if event.timestamp >= window.open_time + self.duration:
                result.closed.append(self._close(window, event.timestamp))
            else:
                window.events.append(event)
                result.assignments.append(WindowRef(window.window_id, window.size - 1))
        return result

    def expected_window_size(self, stream_rate: float) -> float:
        return self.duration * stream_rate


class PredicateWindows(WindowAssigner):
    """Pattern-based windows: open on a predicate, span a count or time extent.

    Exactly the strategy of Q1--Q3 in the paper: a new window is opened
    for each event satisfying ``open_predicate`` (e.g. each striker
    event for Q1, each leading-stock event for Q2/Q3) and spans either
    ``extent_seconds`` of event time or ``extent_events`` events,
    *starting with the opening event itself*.

    Parameters
    ----------
    open_predicate:
        Called on every event; a truthy return opens a new window.
    extent_seconds / extent_events:
        Exactly one must be given.
    include_opener:
        Whether the opening event is part of the window (default True).
    max_open:
        Safety cap on simultaneously open windows; the oldest window is
        force-closed when exceeded (high-rate predicate protection).
    """

    def __init__(
        self,
        open_predicate: Callable[[Event], bool],
        extent_seconds: Optional[float] = None,
        extent_events: Optional[int] = None,
        include_opener: bool = True,
        max_open: int = 1024,
    ) -> None:
        super().__init__()
        if (extent_seconds is None) == (extent_events is None):
            raise ValueError("give exactly one of extent_seconds / extent_events")
        if extent_seconds is not None and extent_seconds <= 0.0:
            raise ValueError("extent_seconds must be positive")
        if extent_events is not None and extent_events <= 0:
            raise ValueError("extent_events must be positive")
        self.open_predicate = open_predicate
        self.extent_seconds = extent_seconds
        self.extent_events = extent_events
        self.include_opener = include_opener
        self.max_open = max_open

    def _window_expired(self, window: Window, event: Event) -> bool:
        if self.extent_seconds is not None:
            return event.timestamp >= window.open_time + self.extent_seconds
        assert self.extent_events is not None
        return window.size >= self.extent_events

    def on_event(self, event: Event) -> AssignResult:
        result = AssignResult()
        for window in self.open_windows:
            if self._window_expired(window, event):
                result.closed.append(self._close(window, event.timestamp))
        opened: Optional[Window] = None
        if self.open_predicate(event):
            if len(self._open) >= self.max_open:
                oldest = self.open_windows[0]
                oldest.truncated = True
                result.closed.append(self._close(oldest, event.timestamp))
            opened = self._new_window(event.timestamp)
        for window in self.open_windows:
            if window is opened and not self.include_opener:
                continue
            window.events.append(event)
            result.assignments.append(WindowRef(window.window_id, window.size - 1))
        return result

    def expected_window_size(self, stream_rate: float) -> float:
        if self.extent_events is not None:
            return float(self.extent_events)
        assert self.extent_seconds is not None
        return self.extent_seconds * stream_rate


def iter_windows(
    stream: Iterable[Event], assigner: WindowAssigner
) -> Iterator[Window]:
    """Drive ``assigner`` over ``stream`` and yield closed windows in order.

    The assigner must be fresh (no events fed yet).  Windows still open
    at end of stream are flushed and yielded last.
    """
    for event in stream:
        for window in assigner.on_event(event).closed:
            yield window
    for window in assigner.flush():
        yield window


def collect_windows(stream: EventStream, assigner: WindowAssigner) -> List[Window]:
    """Materialise :func:`iter_windows` into a list."""
    return list(iter_windows(stream, assigner))


def average_window_size(windows: Iterable[Window]) -> float:
    """Mean number of events per window (0.0 for no windows).

    This is the paper's ``N`` -- "the average seen window size" -- used
    as the fixed position dimension of the utility table when window
    sizes vary (§3.6).
    """
    sizes = [w.size for w in windows]
    if not sizes:
        return 0.0
    return sum(sizes) / len(sizes)

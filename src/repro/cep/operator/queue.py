"""The operator's input queue.

Entries carry the event together with its window memberships (computed
by the window assigner upstream, see :mod:`repro.cep.windows`) and the
windows whose close was triggered by this event's arrival -- processing
an entry therefore also completes those windows (after applying the
entry's own memberships; a count-based window closes *with* its final
event).

The queue tracks enqueue timestamps so the runtime can measure queuing
latency ``l(q)`` and the overload detector can read the current queue
size ``qsize`` (paper §3.4).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, List, Optional

from repro.cep.events import Event
from repro.cep.windows import Window, WindowRef


@dataclass(slots=True)
class QueuedItem:
    """One input-queue entry: an event plus its window bookkeeping.

    Slotted: one instance exists per event on the hot path, and slots
    cut both the allocation cost and the attribute-access cost of the
    stage chain that threads it through.
    """

    event: Event
    refs: List[WindowRef] = field(default_factory=list)
    closed_windows: List[Window] = field(default_factory=list)
    enqueue_time: float = 0.0


class InputQueue:
    """FIFO input queue with size/latency accounting."""

    def __init__(self, capacity: Optional[int] = None) -> None:
        self._items: Deque[QueuedItem] = deque()
        self.capacity = capacity
        self.total_enqueued = 0
        self.total_dequeued = 0
        self.total_rejected = 0

    def push(self, item: QueuedItem) -> bool:
        """Enqueue ``item``; returns False if the queue is at capacity.

        A bounded queue models a system that would crash/backpressure
        without shedding; the default is unbounded (latency grows
        instead, which is what the paper's latency-bound machinery
        reacts to).
        """
        if self.capacity is not None and len(self._items) >= self.capacity:
            self.total_rejected += 1
            return False
        self._items.append(item)
        self.total_enqueued += 1
        return True

    def pop(self) -> QueuedItem:
        """Dequeue the oldest item (raises ``IndexError`` when empty)."""
        item = self._items.popleft()
        self.total_dequeued += 1
        return item

    def pop_all(self) -> List[QueuedItem]:
        """Dequeue every item at once (the batched path's single drain).

        One bulk operation instead of a pop-per-item loop; dequeue
        accounting matches popping each item individually.
        """
        items = list(self._items)
        self._items.clear()
        self.total_dequeued += len(items)
        return items

    def consume_all(self) -> int:
        """Dequeue everything without materialising the items.

        For batched callers that already hold the items (they travel on
        the stage contexts); returns how many were consumed.
        """
        count = len(self._items)
        self._items.clear()
        self.total_dequeued += count
        return count

    def peek(self) -> Optional[QueuedItem]:
        """The oldest item without removing it, or ``None``."""
        return self._items[0] if self._items else None

    def __len__(self) -> int:
        return len(self._items)

    def __bool__(self) -> bool:
        return bool(self._items)

    @property
    def size(self) -> int:
        """Current queue size ``qsize`` (paper §3.4)."""
        return len(self._items)

    def clear(self) -> None:
        """Drop every queued item (used between experiment runs)."""
        self._items.clear()

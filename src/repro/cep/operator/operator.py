"""The single CEP operator eSPICE attaches to.

The operator consumes :class:`~repro.cep.operator.queue.QueuedItem`
entries (event + window memberships), maintains per-window buffers of
the events *kept* by the load shedder, and, when a window closes, runs
the query's pattern matcher over the kept contents to emit complex
events.

Processing is synchronous -- the discrete-event simulation runtime
(:mod:`repro.runtime.simulation`) wraps it with virtual-time cost
accounting; batch ground-truth runs call :meth:`CEPOperator.detect_all`
directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Tuple

from repro.cep.events import ComplexEvent, Event
from repro.cep.operator.queue import QueuedItem
from repro.cep.patterns.matcher import Match
from repro.cep.patterns.query import Query
from repro.cep.windows import Window, WindowRef

# Listener signatures: (window with full unshedded content, matches found).
WindowListener = Callable[[Window, List[Match]], None]


@dataclass(slots=True)
class _WindowBuffer:
    """Kept (position, event) pairs of one in-flight window."""

    kept: List[Tuple[int, Event]] = field(default_factory=list)
    arrivals: int = 0
    dropped: int = 0


@dataclass
class OperatorStats:
    """Counters exposed for experiments and tests."""

    events_processed: int = 0
    memberships_kept: int = 0
    memberships_dropped: int = 0
    windows_completed: int = 0
    complex_events: int = 0

    def drop_ratio(self) -> float:
        """Fraction of (event, window) memberships dropped."""
        total = self.memberships_kept + self.memberships_dropped
        return self.memberships_dropped / total if total else 0.0


@dataclass(slots=True)
class ProcessResult:
    """Outcome of processing one queue item (slotted: one per event)."""

    complex_events: List[ComplexEvent] = field(default_factory=list)
    memberships_kept: int = 0
    memberships_dropped: int = 0


class CEPOperator:
    """Window-buffering, pattern-matching CEP operator.

    Parameters
    ----------
    query:
        The deployed :class:`~repro.cep.patterns.query.Query`.
    shedder:
        Optional load shedder implementing
        :class:`repro.shedding.base.LoadShedder`.  ``None`` (or an
        inactive shedder) keeps every event.
    """

    def __init__(self, query: Query, shedder: Optional[object] = None) -> None:
        self.query = query
        self.shedder = shedder
        self.stats = OperatorStats()
        self._matcher = query.new_matcher()
        self._buffers: Dict[int, _WindowBuffer] = {}
        self._window_listeners: List[WindowListener] = []
        self._size_sum = 0
        self._size_count = 0

    # ------------------------------------------------------------------
    # listeners (used by the eSPICE model builder)
    # ------------------------------------------------------------------
    def add_window_listener(self, listener: WindowListener) -> None:
        """Subscribe to (completed window, matches) notifications."""
        self._window_listeners.append(listener)

    def remove_window_listener(self, listener: WindowListener) -> None:
        """Unsubscribe a listener; unknown listeners are ignored."""
        try:
            self._window_listeners.remove(listener)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # window size prediction (needed for relative positions, §3.6)
    # ------------------------------------------------------------------
    def predicted_window_size(self) -> float:
        """Running average size of completed windows (their full content).

        Paper §3.6: the incoming window size must be predicted to map an
        event's relative position onto the utility table.  The running
        average of seen window sizes is the predictor; the runtime may
        refine it via :meth:`prime_window_size`.
        """
        if self._size_count == 0:
            return 0.0
        return self._size_sum / self._size_count

    def prime_window_size(self, size: float, weight: int = 1) -> None:
        """Seed the window-size predictor (e.g. from the training phase)."""
        self._size_sum += size * weight
        self._size_count += weight

    @property
    def predictor_state(self) -> Tuple[float, int]:
        """``(size_sum, size_count)`` of the running-average predictor.

        The sharded runtime seeds its coordinator-owned predictor from
        this so a cluster predicts window sizes exactly like the
        (possibly primed) sequential operator would.
        """
        return float(self._size_sum), self._size_count

    # ------------------------------------------------------------------
    # processing
    # ------------------------------------------------------------------
    def decide(
        self, item: QueuedItem, shedder: Optional[object] = None
    ) -> Optional[List[bool]]:
        """Drop decisions for ``item``'s memberships (True = drop).

        ``shedder`` overrides the operator's own shedder -- the
        pipeline's shedding stage owns the shedder and calls this
        against an operator built without one.  Returns ``None`` when
        no shedding applies (every membership kept), so the apply path
        can skip the per-ref zip entirely.
        """
        shedder = shedder if shedder is not None else self.shedder
        if shedder is None or not getattr(shedder, "active", True):
            return None
        event = item.event
        predicted = self.predicted_window_size()
        return [
            shedder.should_drop(event, ref.position, predicted) for ref in item.refs
        ]

    def decide_batch(
        self, items: List[QueuedItem], shedder: Optional[object] = None
    ) -> List[Optional[List[bool]]]:
        """Drop decisions for a batch of items in one shedder pass.

        All memberships of ``items`` are flattened into one
        (event, position) batch and resolved by the shedder's
        :meth:`~repro.shedding.base.LoadShedder.should_drop_batch`
        (vectorized for eSPICE, a faithful per-pair loop otherwise),
        then sliced back per item.  The caller must guarantee the
        predictor state is constant across ``items`` -- i.e. no window
        completes between them -- which is exactly the segment contract
        of the pipeline's batched egress.  Decisions are bit-identical
        to calling :meth:`decide` per item.
        """
        shedder = shedder if shedder is not None else self.shedder
        if shedder is None or not getattr(shedder, "active", True):
            return [None] * len(items)
        predicted = self.predicted_window_size()
        events: List[Event] = []
        positions: List[int] = []
        for item in items:
            event = item.event
            for ref in item.refs:
                events.append(event)
                positions.append(ref.position)
        mask = shedder.should_drop_batch(events, positions, predicted)
        out: List[Optional[List[bool]]] = []
        start = 0
        for item in items:
            count = len(item.refs)
            out.append(mask[start : start + count])
            start += count
        return out

    def process(self, item: QueuedItem, now: float = 0.0) -> ProcessResult:
        """Process one queue item; completes any windows it closed.

        Equivalent to :meth:`decide` followed by :meth:`apply` -- kept
        as the one-call path for direct (non-pipeline) users.
        """
        return self.apply(item, self.decide(item), now=now)

    def apply(
        self,
        item: QueuedItem,
        drops: Optional[List[bool]],
        now: float = 0.0,
    ) -> ProcessResult:
        """Apply pre-made drop decisions, then complete closed windows.

        ``drops`` aligns with ``item.refs``; ``None`` keeps everything.
        Memberships are applied before window completion: a count-based
        window closes *with* its final event, so that event's shedding
        decision and buffer append must land before the window is
        matched.  (Time-based windows close before a later event and
        carry no membership for it, so the order is safe for both.)
        """
        result = ProcessResult()
        event = item.event
        for index, ref in enumerate(item.refs):
            buffer = self._buffers.setdefault(ref.window_id, _WindowBuffer())
            buffer.arrivals += 1
            drop = drops[index] if drops is not None else False
            if drop:
                buffer.dropped += 1
                result.memberships_dropped += 1
            else:
                buffer.kept.append((ref.position, event))
                result.memberships_kept += 1

        for window in item.closed_windows:
            result.complex_events.extend(self._complete_window(window, now))

        self.stats.events_processed += 1
        self.stats.memberships_kept += result.memberships_kept
        self.stats.memberships_dropped += result.memberships_dropped
        return result

    def flush(self, windows: Iterable[Window], now: float = 0.0) -> List[ComplexEvent]:
        """Complete the given still-open windows at end of stream."""
        complex_events: List[ComplexEvent] = []
        for window in windows:
            complex_events.extend(self._complete_window(window, now))
        return complex_events

    def _complete_window(self, window: Window, now: float) -> List[ComplexEvent]:
        buffer = self._buffers.pop(window.window_id, _WindowBuffer())
        if not window.truncated:
            # truncated windows would skew the window-size predictor
            self._size_sum += window.size
            self._size_count += 1
        positions = [pos for pos, _e in buffer.kept]
        events = [e for _pos, e in buffer.kept]
        matches = self._matcher.match_window(events, positions)
        complex_events = [
            ComplexEvent(
                pattern_name=self.query.name,
                window_id=window.window_id,
                events=tuple(e for _pos, e in match),
                detection_time=now,
            )
            for match in matches
        ]
        self.stats.windows_completed += 1
        self.stats.complex_events += len(complex_events)
        for listener in self._window_listeners:
            listener(window, matches)
        return complex_events

    # ------------------------------------------------------------------
    # batch (no queue, no timing) -- ground truth & model training
    # ------------------------------------------------------------------
    def detect_all(self, stream: Iterable[Event]) -> List[ComplexEvent]:
        """Run the full pipeline over ``stream`` without timing.

        Window assignment, shedding (if a shedder is installed and
        active) and matching happen inline.  Used for ground-truth
        computation (without a shedder) and for model training.
        """
        assigner = self.query.new_assigner()
        out: List[ComplexEvent] = []
        for event in stream:
            assignment = assigner.on_event(event)
            item = QueuedItem(
                event=event,
                refs=assignment.assignments,
                closed_windows=assignment.closed,
                enqueue_time=event.timestamp,
            )
            out.extend(self.process(item, now=event.timestamp).complex_events)
        out.extend(self.flush(assigner.flush()))
        return out

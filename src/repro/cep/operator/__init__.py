"""The CEP operator: input queue + pattern-matching process function.

Mirrors Figure 1 of the paper: windows of primitive events are pushed
into the operator's input queue; the process function performs pattern
matching per window and emits complex events.  The load shedder (when
installed) sits between the queue and the process function and decides,
per (event, window) pair, whether the event is dropped from that
window.
"""

from repro.cep.operator.queue import InputQueue, QueuedItem
from repro.cep.operator.operator import CEPOperator, OperatorStats

__all__ = ["CEPOperator", "InputQueue", "OperatorStats", "QueuedItem"]

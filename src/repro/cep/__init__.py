"""CEP engine substrate for the eSPICE reproduction.

This package implements a self-contained, window-based complex event
processing engine in the style assumed by the eSPICE paper (Slo et al.,
Middleware '19):

- :mod:`repro.cep.events` -- typed primitive events, complex events and
  ordered event streams.
- :mod:`repro.cep.clock` -- a virtual clock used by the discrete-event
  simulation runtime.
- :mod:`repro.cep.windows` -- count-, time- and pattern-based sliding
  window assigners that partition a stream into (possibly overlapping)
  windows.
- :mod:`repro.cep.patterns` -- a Tesla/SASE-like pattern language
  (sequence, ``any``, repetition, negation, conjunction), selection and
  consumption policies, and a skip-till-next/any-match matcher.
- :mod:`repro.cep.operator` -- the single CEP operator with an input
  queue and a (throughput-limited) processing loop, the unit eSPICE
  attaches to.
- :mod:`repro.cep.language` -- a Tesla-like textual query front end.
- :mod:`repro.cep.parallel` -- window-based data-parallel operator
  (the paper's deployment context).
"""

from repro.cep.events import ComplexEvent, Event, EventStream, EventType
from repro.cep.clock import VirtualClock
from repro.cep.language import QueryParseError, parse_query
from repro.cep.parallel import WindowParallelOperator

__all__ = [
    "ComplexEvent",
    "Event",
    "EventStream",
    "EventType",
    "QueryParseError",
    "VirtualClock",
    "WindowParallelOperator",
    "parse_query",
]

"""The unified pipeline: composable middleware chains around CEP operators.

A :class:`Pipeline` is the single public entry point of the
reproduction: it owns one :class:`QueryChain` per deployed query (all
chains share the input stream -- multi-query fan-out) and drives each
chain's middleware stages (see :mod:`repro.pipeline.stages`).

Lifecycle::

    pipeline = (
        Pipeline.builder()
        .query(q1).query(q2)
        .shedder("espice", f=0.8)
        .latency_bound(1.0)
        .build()
    )
    pipeline.train(training_stream)       # fit utility models / warm baselines
    pipeline.deploy(expected_throughput=1000.0, expected_input_rate=1400.0)

    pipeline.feed(event)                  # push-based live ingestion
    result = pipeline.run(live_stream)    # batch replay (event time)
    outcome = pipeline.simulate(live_stream, input_rate=1400.0,
                                throughput=1000.0)   # virtual-time overload

    pipeline.retrain(fresh_stream)        # hot model swap, shedding uninterrupted

Live ``feed``/``run`` process events synchronously in event time (the
queue only buffers within one feed); the virtual-time overload
replay -- the paper's experimental setup -- is provided by
:func:`repro.runtime.simulation.simulate_pipeline`, which steps the
same chains under a configured arrival rate and operator throughput.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Dict, Iterable, List, Optional, Tuple

from repro.cep.events import ComplexEvent, Event, EventStream
from repro.cep.operator.operator import CEPOperator, ProcessResult
from repro.cep.operator.queue import InputQueue, QueuedItem
from repro.cep.parallel import WindowParallelOperator
from repro.cep.patterns.query import Query
from repro.core.adaptive import AdaptiveController
from repro.core.fvalue import effective_f
from repro.core.model import ModelBuilder, UtilityModel
from repro.core.overload import OverloadDetector
from repro.pipeline.batching import EventBatch, MicroBatcher, StageBatch
from repro.pipeline.stages import (
    AdmissionStage,
    EmitStage,
    EventSink,
    MatchStage,
    ParallelMatchStage,
    SheddingStage,
    Stage,
    StageContext,
    WindowAssignStage,
)
from repro.shedding.base import LoadShedder
from repro.shedding.registry import create_shedder, shedder_requirements

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (builder imports us)
    from repro.obs.instrument import Observability
    from repro.runtime.simulation import SimulationResult


def _materialise(stream: Iterable[Event]) -> Iterable[Event]:
    """A re-iterable view of ``stream``.

    Training passes iterate the stream more than once (model fitting,
    observer warm-up, one pass per fan-out chain); a plain generator
    would silently exhaust after the first pass.
    """
    return stream if hasattr(stream, "__len__") else list(stream)


@dataclass
class PipelineConfig:
    """Shared knobs of a pipeline (one copy per chain).

    The same knobs the deprecated ``ESpiceConfig`` carried, plus the
    queue capacity used for admission control in live mode.
    """

    latency_bound: float = 1.0
    f: Optional[float] = 0.8
    bin_size: int = 1
    check_interval: float = 0.1
    reference_size: Optional[int] = None
    queue_capacity: Optional[int] = None
    seed: int = 0
    #: Micro-batch size of the hot event path (1 = per-event execution).
    batch_size: int = 1
    #: Event-time seconds the oldest buffered event may wait before the
    #: micro-batch ships early (0 = flush purely by size).
    linger: float = 0.0

    def __post_init__(self) -> None:
        if self.latency_bound <= 0.0:
            raise ValueError("latency bound must be positive")
        if self.f is not None and not 0.0 <= self.f < 1.0:
            raise ValueError("f must lie in [0, 1)")
        if self.bin_size <= 0:
            raise ValueError("bin size must be positive")
        if self.check_interval <= 0.0:
            raise ValueError("check interval must be positive")
        if self.batch_size <= 0:
            raise ValueError("batch size must be positive")
        if self.linger < 0.0:
            raise ValueError("linger must be non-negative")


@dataclass
class PipelineResult:
    """Outcome of one :meth:`Pipeline.run` batch replay."""

    matches: Dict[str, List[ComplexEvent]]
    metrics: Dict[str, Dict[str, Dict[str, object]]]
    events_fed: int

    @property
    def complex_events(self) -> List[ComplexEvent]:
        """The first (or only) query's detections."""
        return next(iter(self.matches.values()), [])

    def for_query(self, name: str) -> List[ComplexEvent]:
        """Detections of query ``name``."""
        return self.matches[name]

    def totals(self) -> Dict[str, int]:
        """Detections per query."""
        return {name: len(events) for name, events in self.matches.items()}


class QueryChain:
    """One query's middleware chain: stages, queue, model and shedding.

    Built by :class:`repro.pipeline.builder.PipelineBuilder`; driven
    either by :class:`Pipeline` (live mode) or by the virtual-time
    simulation driver, both through the same four entry points:
    :meth:`ingest`, :meth:`process_item`, :meth:`on_tick`,
    :meth:`flush`.
    """

    def __init__(
        self,
        query: Query,
        config: PipelineConfig,
        strategy: Optional[str] = None,
        strategy_options: Optional[dict] = None,
        shedder: Optional[LoadShedder] = None,
        detector: Optional[OverloadDetector] = None,
        ingress_stages: Optional[List[Stage]] = None,
        egress_stages: Optional[List[Stage]] = None,
        degree: int = 1,
        adaptive_options: Optional[dict] = None,
        sinks: Optional[List[EventSink]] = None,
        model: Optional[UtilityModel] = None,
    ) -> None:
        self.query = query
        self.config = config
        self.strategy = strategy
        self.strategy_options = dict(strategy_options or {})
        self.degree = degree
        self.adaptive_options = adaptive_options
        self.controller: Optional[AdaptiveController] = None
        self.model: Optional[UtilityModel] = model
        self._model_builder = ModelBuilder(
            bin_size=config.bin_size, reference_size=config.reference_size
        )
        self._primed = False
        self.deployed = False

        # --- components ------------------------------------------------
        self.queue = InputQueue(capacity=config.queue_capacity)
        self.admission = AdmissionStage(self.queue, capacity=config.queue_capacity)
        self.window_assign = WindowAssignStage(query.new_assigner(), self.queue)
        if degree > 1:
            self.parallel: Optional[WindowParallelOperator] = WindowParallelOperator(
                query, degree=degree, shedder=None
            )
            self.operator: Optional[CEPOperator] = None
            match_stage: Stage = ParallelMatchStage(self.parallel)
        else:
            self.parallel = None
            self.operator = CEPOperator(query, shedder=None)
            match_stage = MatchStage(self.operator)
        self.match_stage = match_stage
        self.shedding = SheddingStage(per_event=degree == 1)
        self.shedding.operator = self.operator
        self.shedding.queue = self.queue
        self.emit = EmitStage(sinks)

        self.ingress: List[Stage] = [
            self.admission,
            *(ingress_stages or []),
            self.window_assign,
        ]
        self.egress: List[Stage] = [
            self.shedding,
            self.match_stage,
            self.emit,
            *(egress_stages or []),
        ]
        self.stages: List[Stage] = [*self.ingress, *self.egress]
        # hot-path dispatch: the per-event loops call prebound
        # ``on_event`` methods instead of re-resolving stage attributes
        # per event (the stage chain is fixed after construction); the
        # batched loops do the same with ``process_batch``.  Enabling
        # observability swaps these tuples for instrumented wrappers --
        # disabled, they are identical to an uninstrumented chain.
        self._ingress_dispatch = tuple(s.on_event for s in self.ingress)
        self._egress_dispatch = tuple(s.on_event for s in self.egress)
        self._ingress_batch_dispatch = tuple(s.process_batch for s in self.ingress)
        self._egress_batch_dispatch = tuple(s.process_batch for s in self.egress)

        # --- shedding machinery ---------------------------------------
        self.shedder: Optional[LoadShedder] = None
        self.detector: Optional[OverloadDetector] = None
        if shedder is not None:
            self._install_shedder(shedder)
        elif strategy is not None:
            requires_model, _requires_query = shedder_requirements(strategy)
            if not requires_model:
                # model-free strategies exist from the start so train()
                # can warm their online statistics (e.g. BL frequencies)
                self._install_shedder(self._create_shedder())
        if detector is not None:
            self._install_detector(detector)

    # ------------------------------------------------------------------
    # wiring helpers
    # ------------------------------------------------------------------
    def _create_shedder(self) -> LoadShedder:
        assert self.strategy is not None
        return create_shedder(
            self.strategy,
            query=self.query,
            model=self.model,
            seed=self.config.seed,
            **self.strategy_options,
        )

    def create_shedder(self) -> LoadShedder:
        """A fresh, unwired shedder of this chain's strategy.

        For callers that drive components manually (micro-benchmarks,
        the deprecated facade); :meth:`deploy` wires its own.
        """
        if self.strategy is None:
            raise RuntimeError("no shedding strategy configured")
        return self._create_shedder()

    def _install_shedder(self, shedder: LoadShedder) -> None:
        self.shedder = shedder
        self.shedding.shedder = shedder
        if self.parallel is not None:
            self.parallel.shedder = shedder

    def _install_detector(self, detector: OverloadDetector) -> None:
        self.detector = detector
        self.shedding.detector = detector
        self.admission.detector = detector

    def _prime(self, size: float, weight: int = 10) -> None:
        if self._primed or size <= 0:
            return
        target = self.operator if self.operator is not None else self.parallel
        target.prime_window_size(size, weight=weight)
        self._primed = True

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def train(self, stream: Iterable[Event]) -> UtilityModel:
        """Fit the utility model on ``stream``; statistics accumulate."""
        stream = _materialise(stream)
        trainer = CEPOperator(self.query, shedder=None)
        trainer.add_window_listener(self._model_builder.observe)
        trainer.detect_all(stream)
        self.model = self._model_builder.build()
        self._warm_observers(stream)
        return self.model

    def warm(self, stream: Iterable[Event]) -> None:
        """Feed ``stream`` to shedders that learn statistics online.

        Type-level baselines (BL, integral) learn per-type frequencies
        from observed events; warming them on the training stream makes
        their plan informed from the start without fitting a utility
        model.  No-op for strategies without online statistics.
        """
        self._warm_observers(stream)

    def _warm_observers(self, stream: Iterable[Event]) -> None:
        if self.shedder is not None and hasattr(self.shedder, "observe"):
            for event in stream:
                self.shedder.observe(event)

    def deploy(
        self,
        expected_throughput: Optional[float] = None,
        expected_input_rate: Optional[float] = None,
        f: Optional[float] = None,
        partition_override: Optional[int] = None,
        prime: bool = True,
    ) -> "QueryChain":
        """Build and wire the shedder + overload detector.

        ``expected_throughput`` / ``expected_input_rate`` pin the
        detector's estimators (deterministic experiments); leave them
        unset to let the detector estimate ``l(p)`` and ``R`` online.
        ``f`` overrides the configured trigger fraction for this
        deployment (parameter sweeps re-deploy the same trained
        pipeline).  ``prime=False`` leaves the window-size predictor
        cold (it then converges from observed windows only).
        """
        reference = (
            self.model.reference_size
            if self.model is not None
            else self.config.reference_size
        )
        if self.strategy is None:
            return self  # nothing to deploy: unshedded chain
        if self.strategy == "none":
            if prime:
                self._prime(reference or 0)
            self.deployed = True
            return self
        requires_model, _ = shedder_requirements(self.strategy)
        configured_f = f if f is not None else self.config.f
        if self.model is None and (requires_model or configured_f is None):
            raise RuntimeError("train() must be called before deploy()")
        if reference is None:
            raise RuntimeError(
                "deploy() needs a reference window size: call train() "
                "or pin it with reference_size()"
            )
        if requires_model or self.shedder is None:
            self._install_shedder(self._create_shedder())
        processing_latency = (
            1.0 / expected_throughput if expected_throughput else None
        )
        chosen_f = effective_f(
            self.model,
            self.config.latency_bound,
            configured_f,
            processing_latency,
            expected_input_rate,
        )
        self._install_detector(
            OverloadDetector(
                latency_bound=self.config.latency_bound,
                f=chosen_f,
                reference_size=reference,
                shedder=self.shedder,
                check_interval=self.config.check_interval,
                fixed_processing_latency=processing_latency,
                fixed_input_rate=expected_input_rate,
                partition_override=partition_override,
            )
        )
        if prime:
            self._prime(reference)
        if self.adaptive_options is not None and self.operator is not None:
            if self.controller is not None:
                # re-deploy: detach the previous controller so stale
                # instances neither double-count windows nor hot-swap
                # models into a shedder no longer wired to the chain
                self.operator.remove_window_listener(self.controller.observe)
            self.controller = AdaptiveController(
                self.model, self._adaptive_shedder(), **self.adaptive_options
            )
            self.operator.add_window_listener(self.controller.observe)
        self.deployed = True
        return self

    def _adaptive_shedder(self) -> Optional[LoadShedder]:
        # the controller hot-swaps utility models; only the eSPICE
        # shedder carries one
        return self.shedder if hasattr(self.shedder, "rebind_model") else None

    def retrain(self, stream: Iterable[Event]) -> UtilityModel:
        """Retrain from scratch on ``stream`` and hot-swap the model.

        The live shedder keeps serving O(1) decisions throughout
        (paper §3.6): the new model is swapped in atomically via
        :meth:`repro.core.shedder.ESpiceShedder.rebind_model`, the
        detector's reference size is updated, and any adaptive
        controller is rebound.
        """
        self._model_builder = ModelBuilder(
            bin_size=self.config.bin_size, reference_size=self.config.reference_size
        )
        new_model = self.train(stream)
        if self.shedder is not None and hasattr(self.shedder, "rebind_model"):
            self.shedder.rebind_model(new_model)
        if self.detector is not None:
            self.detector.reference_size = new_model.reference_size
        if self.controller is not None:
            self.controller.model = new_model
            self.controller.detector.rebind(new_model)
        return new_model

    # ------------------------------------------------------------------
    # event path (shared by live mode and the simulation driver)
    # ------------------------------------------------------------------
    def ingest(self, event: Event, now: float) -> bool:
        """Run the ingress half; returns False when the event was vetoed."""
        ctx = StageContext(event=event, now=now)
        for on_event in self._ingress_dispatch:
            if on_event(ctx) is False:
                return False
        return True

    def process_item(self, item: QueuedItem, now: float) -> ProcessResult:
        """Run the egress half over one dequeued item."""
        ctx = StageContext(event=item.event, now=now, item=item)
        for on_event in self._egress_dispatch:
            if on_event(ctx) is False:
                break
        return ctx.result if ctx.result is not None else ProcessResult()

    def drain(self, now: float) -> List[ComplexEvent]:
        """Process every queued item (live mode's synchronous drain)."""
        complex_events: List[ComplexEvent] = []
        while self.queue:
            item = self.queue.pop()
            complex_events.extend(self.process_item(item, now).complex_events)
        return complex_events

    # ------------------------------------------------------------------
    # micro-batched event path (amortized stage dispatch; detections are
    # bit-identical and identically ordered vs the per-event path)
    # ------------------------------------------------------------------
    def ingest_batch(self, batch: EventBatch) -> StageBatch:
        """Run the ingress half over a whole micro-batch.

        Each ingress stage processes the batch in one
        :meth:`~repro.pipeline.stages.Stage.process_batch` call (custom
        stages fall back to their per-event ``on_event``).  Requires an
        unbounded queue: per-event admission interleaves enqueue and
        drain, so capacity checks are only equivalent when they cannot
        trigger -- the pipeline falls back to per-event execution when
        a ``queue_capacity`` is configured.
        """
        stage_batch = StageBatch.from_events(batch)
        for process_batch in self._ingress_batch_dispatch:
            process_batch(stage_batch)
        return stage_batch

    def process_batch(self, stage_batch: StageBatch) -> None:
        """Run the egress half over an ingested micro-batch.

        When per-event shedding decisions are live, the batch is split
        into *segments* at window-closing items: completing a window
        updates the window-size predictor and may fire listeners (drift
        detection, adaptive retrain with a hot model swap), so the
        decisions of later items must see that new state exactly as
        they would per event.  Within a segment no such state change
        can occur, and the shedding stage resolves every (event,
        window) pair with one vectorized kernel pass.  Without live
        shedding the whole batch is one segment.
        """
        self.queue.consume_all()  # the batch's items leave the queue as one drain
        egress = self._egress_batch_dispatch
        shedding_live = (
            self.shedding.per_event
            and self.shedder is not None
            and self.shedder.active
            and self.operator is not None
        )
        if not shedding_live:
            for process_batch in egress:
                process_batch(stage_batch)
            return
        for segment in self._segments(stage_batch):
            for process_batch in egress:
                process_batch(segment)

    def run_batch(self, batch: EventBatch) -> StageBatch:
        """Ingest and immediately drain one micro-batch (synchronous mode).

        The queue exists only within this call, so the backpressure
        metric is reconciled to its per-event equivalent: interleaved
        execution never sees more than one item queued, and the staging
        depth of the batch must not masquerade as backlog.
        """
        assign_stage = self.window_assign
        depth_before = assign_stage.max_queue_depth
        stage_batch = self.ingest_batch(batch)
        pushed = self.queue.size
        self.process_batch(stage_batch)
        assign_stage.max_queue_depth = max(depth_before, 1 if pushed else 0)
        return stage_batch

    @staticmethod
    def _segments(stage_batch: StageBatch) -> List[StageBatch]:
        """Split a batch after every item that closes windows."""
        segments: List[StageBatch] = []
        current: List = []
        for ctx in stage_batch.contexts:
            current.append(ctx)
            if not ctx.stopped and ctx.item is not None and ctx.item.closed_windows:
                segments.append(StageBatch(current))
                current = []
        if current:
            segments.append(StageBatch(current))
        return segments

    def on_tick(self, now: float) -> None:
        """Periodic duty for every stage (detector checks, refills)."""
        for stage in self.stages:
            stage.on_tick(now)

    def flush(self, now: float = 0.0) -> List[ComplexEvent]:
        """Complete still-open windows at end of stream and emit them."""
        windows = self.window_assign.flush()
        complex_events = self.match_stage.flush(windows, now)
        if complex_events:
            self.emit.dispatch(complex_events)
        return complex_events

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def enable_obs(self, obs: "Observability") -> None:
        """Swap in instrumented dispatch (see :mod:`repro.obs.instrument`)."""
        from repro.obs.instrument import instrument_chain

        instrument_chain(self, obs)

    def disable_obs(self) -> None:
        """Restore plain prebound dispatch (observability off)."""
        from repro.obs.instrument import deinstrument_chain

        deinstrument_chain(self)

    def metrics(self) -> Dict[str, Dict[str, object]]:
        """Per-stage metrics, keyed by stage name."""
        from repro.obs.snapshot import chain_metrics

        return chain_metrics(self)

    def backpressure(self) -> Dict[str, object]:
        """Queue depth and rejection counters of this chain."""
        return {
            "queue_depth": self.queue.size,
            "max_queue_depth": self.window_assign.max_queue_depth,
            "rejected": self.admission.rejected + self.window_assign.rejected,
        }


class Pipeline:
    """Multi-query CEP pipeline with middleware-stage event paths."""

    def __init__(self, chains: List[QueryChain], config: PipelineConfig) -> None:
        if not chains:
            raise ValueError("a pipeline needs at least one query chain")
        names = [chain.query.name for chain in chains]
        if len(set(names)) != len(names):
            raise ValueError(f"query names must be unique, got {names}")
        self.chains = chains
        self.config = config
        self._events_fed = 0
        self._last_fed = 0.0
        self._next_tick: Optional[float] = None
        # observability bundle (repro.obs.Observability) when enabled
        self.observability = None
        self._obs_collector = None
        # live-mode micro-batcher (size-or-linger); None = per-event
        # feeds.  Bounded queues need per-event admission, so batching
        # only engages on unbounded pipelines.
        self._feed_batcher: Optional[MicroBatcher] = (
            MicroBatcher(config.batch_size, config.linger)
            if config.batch_size > 1 and config.queue_capacity is None
            else None
        )

    # ------------------------------------------------------------------
    @staticmethod
    def builder() -> "PipelineBuilder":
        """Start a fluent :class:`PipelineBuilder`."""
        from repro.pipeline.builder import PipelineBuilder

        return PipelineBuilder()

    # ------------------------------------------------------------------
    @property
    def queries(self) -> List[Query]:
        """The deployed queries, in chain order."""
        return [chain.query for chain in self.chains]

    @property
    def models(self) -> Dict[str, Optional[UtilityModel]]:
        """Trained models per query name."""
        return {chain.query.name: chain.model for chain in self.chains}

    @property
    def model(self) -> Optional[UtilityModel]:
        """The first (or only) chain's trained model."""
        return self.chains[0].model

    def chain(self, name: str) -> QueryChain:
        """The chain deployed for query ``name``."""
        for chain in self.chains:
            if chain.query.name == name:
                return chain
        raise KeyError(f"no chain for query {name!r}")

    def create_shedder(self) -> LoadShedder:
        """A fresh, unwired shedder of the first chain's strategy."""
        return self.chains[0].create_shedder()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def train(self, stream: Iterable[Event]) -> "Pipeline":
        """Fit every chain's utility model on ``stream`` (accumulates)."""
        stream = _materialise(stream)
        for chain in self.chains:
            chain.train(stream)
        return self

    def deploy(
        self,
        expected_throughput: Optional[float] = None,
        expected_input_rate: Optional[float] = None,
        f: Optional[float] = None,
        partition_override: Optional[int] = None,
        prime: bool = True,
    ) -> "Pipeline":
        """Build shedders and overload detectors for every chain."""
        for chain in self.chains:
            chain.deploy(
                expected_throughput=expected_throughput,
                expected_input_rate=expected_input_rate,
                f=f,
                partition_override=partition_override,
                prime=prime,
            )
        return self

    def warm(self, stream: Iterable[Event]) -> "Pipeline":
        """Warm shedders with online statistics (no model fitting)."""
        stream = _materialise(stream)
        for chain in self.chains:
            chain.warm(stream)
        return self

    def retrain(self, stream: Iterable[Event]) -> "Pipeline":
        """Retrain every chain on ``stream`` and hot-swap live models."""
        stream = _materialise(stream)
        for chain in self.chains:
            chain.retrain(stream)
        return self

    # ------------------------------------------------------------------
    # live ingestion (push-based, event time)
    # ------------------------------------------------------------------
    def feed(
        self, event: Event, now: Optional[float] = None
    ) -> Dict[str, List[ComplexEvent]]:
        """Push one live event through every chain.

        Time advances with the event's timestamp (or an explicit
        ``now``); periodic stage duty runs on the configured check
        interval.  Returns the complex events each query detected as a
        consequence of this event.

        With a configured micro-batch (``.batch(batch_size, linger)``)
        the event is buffered instead and the whole batch is processed
        -- with identical detections, in identical order -- once it
        fills, lingers out, or a detector tick is due; the return value
        then carries the flushed batch's detections (usually empty for
        buffering calls).  :meth:`flush_pending` forces the buffer
        through.
        """
        at = now if now is not None else event.timestamp
        if at > self._last_fed:
            self._last_fed = at
        if self._feed_batcher is not None:
            return self._feed_batched(event, at)
        self._advance_ticks(at)
        out: Dict[str, List[ComplexEvent]] = {}
        for chain in self.chains:
            admitted = chain.ingest(event, at)
            out[chain.query.name] = chain.drain(at) if admitted else []
        self._events_fed += 1
        return out

    def _feed_batched(self, event: Event, at: float) -> Dict[str, List[ComplexEvent]]:
        batcher = self._feed_batcher
        out = {chain.query.name: [] for chain in self.chains}
        if (
            self._next_tick is not None
            and self._next_tick <= at
            and batcher
            and self._ticks_observable()
        ):
            # a due tick is a batch boundary: buffered events must be
            # processed before detector duty runs, like per-event mode
            self._collect_batch(batcher.take(), out)
        self._advance_ticks(at)
        self._collect_batch(batcher.add(event, at), out)
        return out

    def feed_many(
        self, events: Iterable[Event], now: Optional[float] = None
    ) -> Dict[str, List[ComplexEvent]]:
        """Push a slice of live events through every chain, in order.

        The bulk ingest hook of network front doors
        (:mod:`repro.serve`) and other push-based producers: each event
        takes the exact :meth:`feed` path (micro-batching included),
        and the per-query detections of the whole slice are merged into
        one result mapping.
        """
        out: Dict[str, List[ComplexEvent]] = {
            chain.query.name: [] for chain in self.chains
        }
        for event in events:
            for name, detected in self.feed(event, now=now).items():
                if detected:
                    out[name].extend(detected)
        return out

    def finish(self) -> Dict[str, List[ComplexEvent]]:
        """End a live feed session: flush the micro-batcher and windows.

        Processes whatever the live micro-batcher still buffers, then
        completes every chain's still-open windows at the time of the
        last fed event -- the push-based equivalent of the end-of-stream
        flush inside :meth:`run`.  Detections are dispatched through
        the emit stage (sinks fire) and returned per query.  The
        pipeline stays usable: later feeds simply open new windows.
        """
        out = self.flush_pending()
        for chain in self.chains:
            flushed = chain.flush(now=self._last_fed)
            if flushed:
                out[chain.query.name].extend(flushed)
        return out

    def flush_pending(self) -> Dict[str, List[ComplexEvent]]:
        """Process whatever the live micro-batcher still buffers.

        No-op (empty result) without batching or with an empty buffer.
        Call at the end of a feed session -- or whenever a downstream
        consumer must observe everything fed so far.
        """
        out = {chain.query.name: [] for chain in self.chains}
        if self._feed_batcher is not None:
            self._collect_batch(self._feed_batcher.take(), out)
        return out

    def _collect_batch(
        self,
        batch: Optional[EventBatch],
        out: Dict[str, List[ComplexEvent]],
    ) -> None:
        """Run one micro-batch through every chain, appending detections."""
        if not batch:
            return
        for chain in self.chains:
            stage_batch = chain.run_batch(batch)
            collected = out[chain.query.name]
            for ctx in stage_batch.contexts:
                result = ctx.result
                if result is not None and result.complex_events:
                    collected.extend(result.complex_events)
        self._events_fed += len(batch.events)

    def _advance_ticks(self, now: float) -> None:
        if self._next_tick is None:
            self._next_tick = now + self.config.check_interval
            return
        while self._next_tick <= now:
            for chain in self.chains:
                chain.on_tick(self._next_tick)
            self._next_tick += self.config.check_interval

    def run(
        self, stream: Iterable[Event], batch_size: Optional[int] = None
    ) -> PipelineResult:
        """Replay ``stream`` through every chain in event time.

        Synchronous batch mode: no queueing delays, no shedding unless
        a shedder was activated explicitly -- with a default deployment
        this equals the ground truth of an unconstrained operator.
        Returns everything collected since the previous ``run``.

        ``batch_size`` overrides the configured micro-batch size for
        this replay (``None`` uses ``config.batch_size``).  Batched
        replays produce bit-identical, identically ordered detections;
        a bounded queue forces the per-event path (its admission checks
        interleave enqueue and drain).
        """
        for chain in self.chains:
            chain.emit.drain_collected()
            chain.emit.retain = True
        try:
            # events still buffered by a live feed session are flushed
            # with retention already on: their detections join this
            # run's result instead of being silently dropped
            self.flush_pending()
            bsize = self.config.batch_size if batch_size is None else batch_size
            if bsize > 1 and self.config.queue_capacity is None:
                return self._run_batched(stream, bsize, self.config.linger)
            fed_before = self._events_fed
            chains = self.chains
            last = 0.0
            # tighter per-event loop than feed(): detections accumulate
            # in the emit stages, so no per-event result dict is built
            for event in stream:
                last = event.timestamp
                self._advance_ticks(last)
                for chain in chains:
                    if chain.ingest(event, last):
                        queue = chain.queue
                        while queue:
                            chain.process_item(queue.pop(), last)
                self._events_fed += 1
            matches = {}
            for chain in self.chains:
                chain.flush(now=last)
                matches[chain.query.name] = chain.emit.drain_collected()
        finally:
            for chain in self.chains:
                chain.emit.retain = False
        return PipelineResult(
            matches=matches,
            metrics=self.metrics(),
            events_fed=self._events_fed - fed_before,
        )

    def _run_batched(
        self, stream: Iterable[Event], batch_size: int, linger: float
    ) -> PipelineResult:
        """Micro-batched replay: stage dispatch amortized per batch.

        Equivalence with the per-event loop is structural: per-event
        clocks travel with the batch, detector ticks force a flush
        before they fire, and the egress splits at window completions
        (see :meth:`QueryChain.process_batch`).  When no stage has
        periodic duty (no overload detector, no tick-driven custom
        stage) ticks are provably no-ops, so neither the flushes nor
        the tick bookkeeping run at all -- otherwise every due tick
        would cap the effective batch at ``check_interval``'s worth of
        events.

        Called by :meth:`run` only, inside its retain window (the
        caller drains stale collections, sets ``emit.retain`` and
        resets it afterwards).
        """
        fed_before = self._events_fed
        chains = self.chains
        last = 0.0
        ticks = self._ticks_observable()
        batcher = MicroBatcher(batch_size, linger)
        if ticks:
            for event in stream:
                last = event.timestamp
                if self._next_tick is not None and self._next_tick <= last:
                    self._flush_run_batch(batcher.take())
                self._advance_ticks(last)
                self._flush_run_batch(batcher.add(event, last))
        else:
            add = batcher.add
            flush = self._flush_run_batch
            for event in stream:
                last = event.timestamp
                flush(add(event, last))
            self._next_tick = None  # re-anchor: no tick was observable
        self._flush_run_batch(batcher.take())
        matches = {}
        for chain in chains:
            chain.flush(now=last)
            matches[chain.query.name] = chain.emit.drain_collected()
        return PipelineResult(
            matches=matches,
            metrics=self.metrics(),
            events_fed=self._events_fed - fed_before,
        )

    def _ticks_observable(self) -> bool:
        """Whether any stage would act on a periodic tick.

        The core stages' ``on_tick`` is a no-op unless the shedding
        stage carries an overload detector; a custom stage overriding
        ``on_tick`` (rate limiters, ...) is assumed to act.
        """
        base = Stage.on_tick
        for chain in self.chains:
            for stage in chain.stages:
                if isinstance(stage, SheddingStage):
                    if stage.detector is not None:
                        return True
                elif type(stage).on_tick is not base:
                    return True
        return False

    def _flush_run_batch(self, batch: Optional[EventBatch]) -> None:
        if not batch:
            return
        for chain in self.chains:
            chain.run_batch(batch)
        self._events_fed += len(batch.events)

    # ------------------------------------------------------------------
    # virtual-time overload simulation (the paper's experimental setup)
    # ------------------------------------------------------------------
    def simulate(
        self,
        stream: EventStream,
        input_rate: float,
        throughput: float,
        latency_bound: Optional[float] = None,
        check_interval: Optional[float] = None,
        mean_memberships: Optional[float] = None,
        idle_cost_fraction: float = 0.05,
        arrival_times: Optional[List[float]] = None,
    ) -> "SimulationResult":
        """Replay ``stream`` at ``input_rate`` against operator capacity
        ``throughput`` in deterministic virtual time.

        Convenience wrapper over
        :func:`repro.runtime.simulation.simulate_pipeline`; per-chain
        ``mean_memberships`` are measured from the stream when not
        given.  Returns the first chain's
        :class:`~repro.runtime.simulation.SimulationResult` for
        single-query pipelines; use
        :func:`~repro.runtime.simulation.simulate_pipeline` directly
        for per-query results of a fan-out pipeline.
        """
        from repro.runtime.simulation import (
            SimulationConfig,
            measure_mean_memberships,
            simulate_pipeline,
        )

        memberships = {
            chain.query.name: (
                mean_memberships
                if mean_memberships is not None
                else measure_mean_memberships(chain.query, stream)
            )
            for chain in self.chains
        }
        config = SimulationConfig(
            input_rate=input_rate,
            throughput=throughput,
            latency_bound=(
                latency_bound
                if latency_bound is not None
                else self.config.latency_bound
            ),
            check_interval=(
                check_interval
                if check_interval is not None
                else self.config.check_interval
            ),
            idle_cost_fraction=idle_cost_fraction,
            mean_memberships=memberships[self.chains[0].query.name],
        )
        results = simulate_pipeline(
            self,
            stream,
            config,
            arrival_times=arrival_times,
            mean_memberships=memberships,
        )
        return results[self.chains[0].query.name]

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def enable_observability(
        self, obs: Optional["Observability"] = None, **kwargs: Any
    ) -> "Observability":
        """Turn on unified observability (metrics registry + tracer).

        Instruments every chain's dispatch with stage-timing histograms
        and window-lifecycle tracing, and registers a scrape-time
        collector mirroring the stage counters into the registry.
        Pass an existing :class:`repro.obs.Observability` to share one
        registry across surfaces (the server does), or keyword options
        (``trace_capacity``, ``max_explanations``) to build a fresh
        bundle.  Idempotent per bundle; returns the active bundle.
        """
        from repro.obs.instrument import (
            Observability,
            instrument_chain,
            register_pipeline_collectors,
        )

        if obs is None:
            obs = self.observability or Observability(**kwargs)
        if self.observability is not None and self.observability is not obs:
            self.disable_observability()
        for chain in self.chains:
            instrument_chain(chain, obs)
        if self._obs_collector is None or self.observability is not obs:
            self._obs_collector = register_pipeline_collectors(self, obs.registry)
        self.observability = obs
        return obs

    def disable_observability(self) -> None:
        """Restore uninstrumented dispatch and drop the collector."""
        for chain in self.chains:
            chain.disable_obs()
        if self.observability is not None and self._obs_collector is not None:
            self.observability.registry.unregister_collector(self._obs_collector)
        self._obs_collector = None
        self.observability = None

    def metrics(self) -> Dict[str, Dict[str, Dict[str, object]]]:
        """Per-chain, per-stage metrics."""
        from repro.obs.snapshot import pipeline_metrics

        return pipeline_metrics(self)

    def backpressure(self) -> Dict[str, Dict[str, object]]:
        """Per-chain queue depth and rejection counters."""
        return {chain.query.name: chain.backpressure() for chain in self.chains}

"""Fluent construction of pipelines.

The builder is the declarative surface of the API redesign: queries,
shedding strategy, bounds and custom middleware are stated once, and
``build()`` wires the per-query chains (stages, queue, operator) that
the old code hand-assembled::

    pipeline = (
        Pipeline.builder()
        .query(q1)
        .query(q2)
        .shedder("espice", f=0.8)
        .latency_bound(1.0)
        .stage(LoggingStage())
        .build()
    )

Strategy names come from :mod:`repro.shedding.registry`; prebuilt
shedder/detector instances can be injected instead (the simulation
driver's compatibility path).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Dict, List, Optional, Tuple, Union

from repro.cep.patterns.query import Query
from repro.core.model import UtilityModel
from repro.core.overload import OverloadDetector
from repro.pipeline.pipeline import Pipeline, PipelineConfig, QueryChain
from repro.pipeline.stages import EventSink, Stage
from repro.shedding.base import LoadShedder
from repro.shedding.registry import available_shedders

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (cluster imports us)
    from repro.cluster import ShardedPipeline

#: A stage instance (single-query pipelines) or a zero-argument factory
#: producing one fresh stage per chain (required for fan-out pipelines,
#: since stages are stateful).
StageLike = Union[Stage, Callable[[], Stage]]


class PipelineBuilder:
    """Fluent builder for :class:`~repro.pipeline.pipeline.Pipeline`."""

    def __init__(self) -> None:
        self._queries: List[Query] = []
        self._config = PipelineConfig()
        self._strategy: Optional[str] = None
        self._strategy_options: Dict[str, Any] = {}
        self._shedder_instance: Optional[LoadShedder] = None
        self._detector_instance: Optional[OverloadDetector] = None
        self._ingress: List[StageLike] = []
        self._egress: List[StageLike] = []
        self._sinks: List[EventSink] = []
        self._degree = 1
        self._adaptive: Optional[Dict[str, Any]] = None
        self._model: Optional["UtilityModel"] = None
        self._distributed: Optional[Dict[str, Any]] = None
        self._observability: Optional[Dict[str, Any]] = None

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def query(self, query: Query) -> "PipelineBuilder":
        """Add a query; each gets its own chain, all share the input."""
        self._queries.append(query)
        return self

    # ------------------------------------------------------------------
    # shedding strategy
    # ------------------------------------------------------------------
    def shedder(
        self, strategy: Union[str, LoadShedder], **options: Any
    ) -> "PipelineBuilder":
        """Select the shedding strategy.

        ``strategy`` is a registry name (``"espice"``, ``"bl"``,
        ``"integral"``, ``"random"``, ``"none"``) with strategy options
        as keywords -- the detector knobs ``f`` and ``seed`` are routed
        to the pipeline config; everything else reaches the factory.
        Passing a prebuilt :class:`LoadShedder` instance injects it
        verbatim (single-query pipelines only).
        """
        if isinstance(strategy, LoadShedder):
            if options:
                raise ValueError("options only apply to registry strategy names")
            self._shedder_instance = strategy
            self._strategy = None
            return self
        if strategy not in available_shedders():
            known = ", ".join(available_shedders())
            raise ValueError(
                f"unknown shedder strategy {strategy!r}; registered: {known}"
            )
        if "f" in options:
            self._config.f = options.pop("f")
        if "seed" in options:
            self._config.seed = options.pop("seed")
        self._strategy = strategy
        self._strategy_options = options
        return self

    def model(self, model: "UtilityModel") -> "PipelineBuilder":
        """Deploy a pre-trained utility model (e.g. loaded from disk).

        Skips the training phase: ``deploy()`` can be called directly.
        ``train()`` still works and replaces the model.
        """
        self._model = model
        return self

    def detector(self, detector: OverloadDetector) -> "PipelineBuilder":
        """Inject a prebuilt overload detector (single-query pipelines).

        The detector is expected to be wired to the injected shedder
        already (``detector.shedder is shedder``); ``deploy()`` is then
        unnecessary.
        """
        self._detector_instance = detector
        return self

    # ------------------------------------------------------------------
    # config knobs
    # ------------------------------------------------------------------
    def latency_bound(self, seconds: float) -> "PipelineBuilder":
        """``LB``: the latency bound in seconds (paper default 1.0)."""
        self._config.latency_bound = seconds
        return self

    def f(self, value: Optional[float]) -> "PipelineBuilder":
        """Shedding trigger fraction; ``None`` auto-selects (§3.4)."""
        self._config.f = value
        return self

    def bin_size(self, bins: int) -> "PipelineBuilder":
        """``bs``: utility-table positions per bin (§3.6)."""
        self._config.bin_size = bins
        return self

    def check_interval(self, seconds: float) -> "PipelineBuilder":
        """Overload-detector period in seconds."""
        self._config.check_interval = seconds
        return self

    def reference_size(self, size: Optional[int]) -> "PipelineBuilder":
        """Pin the reference window size ``N`` instead of deriving it."""
        self._config.reference_size = size
        return self

    def queue_capacity(self, capacity: Optional[int]) -> "PipelineBuilder":
        """Bound the input queue; overflow is rejected at admission."""
        self._config.queue_capacity = capacity
        return self

    def batch(self, batch_size: int, linger: float = 0.0) -> "PipelineBuilder":
        """Micro-batch the hot event path (size-or-linger).

        ``run()``/``feed()`` then accumulate up to ``batch_size``
        events (shipping early once the oldest buffered event is
        ``linger`` event-time seconds old) and each stage processes the
        batch in one call, with the shedding decisions resolved by the
        vectorized kernel (:mod:`repro.core.kernel`).  Detections stay
        bit-identical and identically ordered; only constants drop.
        ``batch_size=1`` (the default) keeps per-event execution, and a
        bounded :meth:`queue_capacity` forces it.
        """
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        if linger < 0.0:
            raise ValueError("linger must be non-negative")
        self._config.batch_size = batch_size
        self._config.linger = linger
        return self

    def seed(self, seed: int) -> "PipelineBuilder":
        """RNG seed handed to sampling shedders."""
        self._config.seed = seed
        return self

    # ------------------------------------------------------------------
    # middleware extension points
    # ------------------------------------------------------------------
    def stage(self, stage: StageLike, where: str = "ingress") -> "PipelineBuilder":
        """Insert a custom middleware stage.

        ``where="ingress"`` places it between admission and window
        assignment (sees raw events, may veto them); ``"egress"``
        places it after the emit stage (sees processed items and their
        detections).  Pass a factory (``lambda: LoggingStage()``) when
        the pipeline fans out to several queries, so every chain gets
        its own stage instance.
        """
        if where not in ("ingress", "egress"):
            raise ValueError("where must be 'ingress' or 'egress'")
        (self._ingress if where == "ingress" else self._egress).append(stage)
        return self

    def sink(self, sink: EventSink) -> "PipelineBuilder":
        """Subscribe a callback to every emitted complex event."""
        self._sinks.append(sink)
        return self

    # ------------------------------------------------------------------
    # deployment shape
    # ------------------------------------------------------------------
    def parallel(self, degree: int) -> "PipelineBuilder":
        """Window-parallel matching over ``degree`` logical instances."""
        if degree <= 0:
            raise ValueError("parallelism degree must be positive")
        self._degree = degree
        return self

    def distributed(
        self,
        shards: int,
        router: Any = "round-robin",
        batch_size: int = 32,
        linger: float = 0.0,
        fault_tolerant: bool = False,
        checkpoint_dir: Optional[str] = None,
        checkpoint_interval: int = 200,
        heartbeat_timeout: float = 30.0,
        autoscaler: Any = None,
    ) -> "PipelineBuilder":
        """Execute across ``shards`` real worker processes.

        ``build()`` then returns a
        :class:`repro.cluster.ShardedPipeline`: complete windows are
        routed to forked shard workers (``router`` names a
        :mod:`repro.cluster.routing` policy or is a ``Router``
        instance), events travel in batches of ``batch_size`` messages
        (shipped early once the oldest waits ``linger`` seconds), and
        the coordinator merges detections back into sequential order.
        Train and deploy before iterating -- workers inherit the
        deployed state at fork.

        ``fault_tolerant=True`` makes the cluster crash-safe: dead
        workers are respawned and their unacked windows replayed
        (exactly-once detections).  ``checkpoint_dir`` additionally
        persists per-shard state every ``checkpoint_interval`` windows
        so a respawned worker resumes its counters and shedder state.
        ``heartbeat_timeout`` bounds how long a silent worker that owes
        results survives before it is declared failed.  ``autoscaler``
        takes a :class:`repro.cluster.Autoscaler` to drive
        scale-up/scale-down from live utilization and queue depth --
        pair it with ``router="consistent-hash"`` so membership changes
        rebalance only the moved key ranges.
        """
        if shards <= 0:
            raise ValueError("shard count must be positive")
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        self._distributed = {
            "shards": shards,
            "router": router,
            "batch_size": batch_size,
            "linger": linger,
            "fault_tolerant": fault_tolerant,
            "checkpoint_dir": checkpoint_dir,
            "checkpoint_interval": checkpoint_interval,
            "heartbeat_timeout": heartbeat_timeout,
            "autoscaler": autoscaler,
        }
        return self

    def observability(self, obs: Any = True, **options: Any) -> "PipelineBuilder":
        """Enable unified observability on the built pipeline.

        ``build()`` then calls ``enable_observability()`` on the result
        -- sequential or sharded alike -- so the pipeline starts with
        instrumented stage dispatch, the shared metrics
        :class:`~repro.obs.registry.Registry` and window tracing with
        shed explanations.  Pass a prebuilt
        :class:`~repro.obs.instrument.Observability` to share one
        registry across pipelines, or keyword options
        (``trace_capacity``, ``max_explanations``) to configure a fresh
        bundle; ``observability(False)`` cancels an earlier call.
        """
        if obs is False:
            self._observability = None
            if options:
                raise ValueError("options make no sense with observability(False)")
            return self
        self._observability = {"obs": None if obs is True else obs, **options}
        return self

    def adaptive(self, **options: Any) -> "PipelineBuilder":
        """Enable drift-driven automatic retraining (§3.6).

        Options are forwarded to
        :class:`repro.core.adaptive.AdaptiveController`
        (``check_every``, ``min_training_windows``, plus
        :class:`~repro.core.drift.DriftDetector` knobs).
        """
        self._adaptive = options
        return self

    # ------------------------------------------------------------------
    # build
    # ------------------------------------------------------------------
    def _materialise(self, stages: List[StageLike], multi: bool) -> List[Stage]:
        built: List[Stage] = []
        for stage in stages:
            if isinstance(stage, Stage):
                if multi:
                    raise ValueError(
                        "pass stage factories (callables) when the pipeline "
                        "has several queries; stage instances are stateful"
                    )
                built.append(stage)
            else:
                built.append(stage())
        return built

    def build(self) -> Union[Pipeline, "ShardedPipeline"]:
        """Validate and assemble the pipeline.

        Returns a :class:`Pipeline`, or a
        :class:`repro.cluster.ShardedPipeline` wrapping one when
        :meth:`distributed` was called.
        """
        if not self._queries:
            raise ValueError("a pipeline needs at least one query")
        multi = len(self._queries) > 1
        if multi and (
            self._shedder_instance is not None or self._detector_instance is not None
        ):
            raise ValueError(
                "shedder/detector injection only supports single-query "
                "pipelines; use a registry strategy name for fan-out"
            )
        if self._adaptive is not None and self._degree > 1:
            raise ValueError(
                "adaptive retraining requires the sequential operator "
                "(parallel chains have no window listeners)"
            )
        if self._distributed is not None:
            if self._degree > 1:
                raise ValueError(
                    "combine either .parallel() or .distributed(): shards "
                    "already parallelise over windows"
                )
            if self._adaptive is not None:
                raise ValueError(
                    "adaptive retraining is coordinator work in a cluster: "
                    "drop .adaptive() and call retrain() on the "
                    "ShardedPipeline"
                )
        chains = []
        for query in self._queries:
            chains.append(
                QueryChain(
                    query=query,
                    config=self._config,
                    strategy=self._strategy,
                    strategy_options=self._strategy_options,
                    shedder=self._shedder_instance,
                    detector=self._detector_instance,
                    ingress_stages=self._materialise(self._ingress, multi),
                    egress_stages=self._materialise(self._egress, multi),
                    degree=self._degree,
                    adaptive_options=self._adaptive,
                    sinks=list(self._sinks),
                    model=self._model,
                )
            )
        pipeline = Pipeline(chains, self._config)
        if self._distributed is not None:
            from repro.cluster import ShardedPipeline

            sharded = ShardedPipeline(pipeline, **self._distributed)
            if self._observability is not None:
                sharded.enable_observability(
                    self._observability["obs"],
                    **{k: v for k, v in self._observability.items() if k != "obs"},
                )
            return sharded
        if self._observability is not None:
            pipeline.enable_observability(
                self._observability["obs"],
                **{k: v for k, v in self._observability.items() if k != "obs"},
            )
        return pipeline

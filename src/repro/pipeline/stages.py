"""Middleware stages of the pipeline's event path.

A :class:`~repro.pipeline.pipeline.Pipeline` routes every input event
through an explicit chain of stages (the middleware idiom of web
frameworks, applied to a CEP operator)::

    AdmissionStage -> [custom ingress stages] -> WindowAssignStage
        ||  (input queue)
    SheddingStage -> MatchStage -> EmitStage -> [custom egress stages]

The queue splits the chain into an *ingress* half (runs at arrival
time: admission control, user middleware, window assignment, enqueue)
and an *egress* half (runs when the operator picks the item up:
shedding decision, pattern matching, emission).  Live feeds drain the
queue synchronously; the virtual-time simulation driver
(:func:`repro.runtime.simulation.simulate_pipeline`) schedules the two
halves itself, which is how the same chain serves both push-based
ingestion and deterministic replay.

Every stage implements the common :class:`Stage` protocol --
``on_event`` / ``process_batch`` / ``on_tick`` / ``metrics`` -- so
cross-cutting concerns (rate limiting, sampling, logging, ...) drop
into the chain exactly like framework middleware; :class:`RateLimitStage`,
:class:`SamplingStage` and :class:`LoggingStage` are ready-made
examples.  ``process_batch`` is the micro-batched hot path (see
:mod:`repro.pipeline.batching`); its default implementation loops
``on_event``, so a custom stage needs nothing extra to stay correct.
"""

from __future__ import annotations

import logging
import random
from typing import TYPE_CHECKING, Callable, Dict, List, Optional

from repro.cep.events import ComplexEvent, Event
from repro.cep.operator.operator import CEPOperator, ProcessResult
from repro.cep.operator.queue import InputQueue, QueuedItem
from repro.cep.parallel import WindowParallelOperator
from repro.cep.windows import Window, WindowAssigner
from repro.core.overload import OverloadDetector
from repro.shedding.base import LoadShedder

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pipeline.batching import StageBatch

#: Signature of a complex-event subscriber attached to the emit stage.
EventSink = Callable[[ComplexEvent], None]


class StageContext:
    """Mutable context threaded through the chain for one event.

    Ingress stages read/replace :attr:`event` and may veto it; the
    window-assign stage fills :attr:`item`; egress stages fill
    :attr:`drops` and :attr:`result`.  :attr:`stopped` is the batched
    path's veto marker: once a stage stops a context, every later stage
    skips it (the per-event path short-circuits the loop instead).
    """

    __slots__ = ("event", "now", "item", "drops", "result", "stopped")

    def __init__(
        self,
        event: Optional[Event] = None,
        now: float = 0.0,
        item: Optional[QueuedItem] = None,
    ) -> None:
        self.event = event
        self.now = now
        self.item = item
        self.drops: Optional[List[bool]] = None
        self.result: Optional[ProcessResult] = None
        self.stopped = False


class Stage:
    """Base middleware stage: ``on_event`` / ``on_tick`` / ``metrics``.

    ``on_event`` returns ``False`` to stop the chain for this event
    (admission reject, sampling drop, rate limit, ...); anything else
    continues.  ``on_tick`` receives the advancing (virtual or event)
    time so periodic work -- overload checks, token refills -- happens
    without piggybacking on event arrivals.  ``metrics`` reports the
    stage's counters; the pipeline aggregates them per query chain, so
    backpressure and drop behaviour are observable per stage.
    """

    __slots__ = ()

    #: Stable name used as the metrics key; subclasses override.
    name: str = "stage"

    def on_event(self, ctx: StageContext) -> bool:
        return True

    def process_batch(self, batch: "StageBatch") -> None:
        """Process a micro-batch of contexts (see :mod:`.batching`).

        The default loops :meth:`on_event` over the batch's live
        contexts in stream order -- custom stages that never heard of
        batching keep their exact per-event semantics, vetoes included.
        Core stages override this with amortized implementations.
        """
        on_event = self.on_event
        for ctx in batch.contexts:
            if not ctx.stopped and on_event(ctx) is False:
                ctx.stopped = True

    def on_tick(self, now: float) -> None:
        pass

    def metrics(self) -> Dict[str, object]:
        return {}


# ----------------------------------------------------------------------
# the five core stages
# ----------------------------------------------------------------------
class AdmissionStage(Stage):
    """Entry of the chain: arrival accounting and admission control.

    Counts every offered event, feeds the overload detector's
    input-rate estimator, and -- when a queue capacity is configured --
    rejects events that would overflow the queue (reported as
    backpressure instead of unbounded latency growth).
    """

    name = "admission"

    __slots__ = ("queue", "capacity", "detector", "arrivals", "rejected")

    def __init__(
        self, queue: InputQueue, capacity: Optional[int] = None
    ) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError("queue capacity must be positive")
        self.queue = queue
        self.capacity = capacity
        self.detector: Optional[OverloadDetector] = None
        self.arrivals = 0
        self.rejected = 0

    def on_event(self, ctx: StageContext) -> bool:
        self.arrivals += 1
        if self.capacity is not None and self.queue.size >= self.capacity:
            self.rejected += 1
            return False
        if self.detector is not None:
            self.detector.record_arrival(ctx.now)
        return True

    def process_batch(self, batch: "StageBatch") -> None:
        if self.capacity is not None:
            # bounded queues are driven per event (the pipeline falls
            # back before batching; this guard keeps direct callers safe)
            super().process_batch(batch)
            return
        self.arrivals += len(batch.contexts)
        if self.detector is not None:
            record = self.detector.record_arrival
            for ctx in batch.contexts:
                record(ctx.now)

    def metrics(self) -> Dict[str, object]:
        return {
            "arrivals": self.arrivals,
            "rejected": self.rejected,
            "queue_depth": self.queue.size,
        }


class WindowAssignStage(Stage):
    """Window assignment at arrival, then enqueue (paper §2).

    Window membership is a pure function of the raw stream and happens
    *before* the queue -- the shedder later drops an event from
    individual windows, not from the stream -- so this stage converts
    an event into a :class:`QueuedItem` carrying its memberships and
    any windows its arrival closed, and pushes it onto the input queue.
    """

    name = "window_assign"

    __slots__ = (
        "assigner",
        "queue",
        "assigned_memberships",
        "windows_closed",
        "rejected",
        "max_queue_depth",
    )

    def __init__(self, assigner: WindowAssigner, queue: InputQueue) -> None:
        self.assigner = assigner
        self.queue = queue
        self.assigned_memberships = 0
        self.windows_closed = 0
        self.rejected = 0
        self.max_queue_depth = 0

    def on_event(self, ctx: StageContext) -> bool:
        assignment = self.assigner.on_event(ctx.event)
        ctx.item = QueuedItem(
            event=ctx.event,
            refs=assignment.assignments,
            closed_windows=assignment.closed,
            enqueue_time=ctx.now,
        )
        self.assigned_memberships += len(assignment.assignments)
        self.windows_closed += len(assignment.closed)
        if not self.queue.push(ctx.item):
            self.rejected += 1
            return False
        self.max_queue_depth = max(self.max_queue_depth, self.queue.size)
        return True

    def process_batch(self, batch: "StageBatch") -> None:
        live = [ctx for ctx in batch.contexts if not ctx.stopped]
        assignments = self.assigner.on_events([ctx.event for ctx in live])
        push = self.queue.push
        memberships = 0
        closed = 0
        for ctx, assignment in zip(live, assignments):
            item = QueuedItem(
                event=ctx.event,
                refs=assignment.assignments,
                closed_windows=assignment.closed,
                enqueue_time=ctx.now,
            )
            ctx.item = item
            memberships += len(assignment.assignments)
            closed += len(assignment.closed)
            if not push(item):
                self.rejected += 1
                ctx.stopped = True
        self.assigned_memberships += memberships
        self.windows_closed += closed
        # the queue only grows during batched ingress, so the depth
        # after the last push is the batch's maximum
        if self.queue.size > self.max_queue_depth:
            self.max_queue_depth = self.queue.size

    def flush(self) -> List[Window]:
        """Close every still-open window (end of stream)."""
        return self.assigner.flush()

    def metrics(self) -> Dict[str, object]:
        return {
            "memberships": self.assigned_memberships,
            "windows_closed": self.windows_closed,
            "rejected": self.rejected,
            "max_queue_depth": self.max_queue_depth,
        }


class SheddingStage(Stage):
    """Per-membership drop decisions plus overload-detector duty.

    Owns the chain's load shedder and overload detector.  Per item it
    asks the shedder, per (event, window) membership, whether to drop
    (an O(1) decision, paper §3.5) and records the verdicts on the
    context for the match stage to apply.  Per tick it runs the
    detector's periodic queue check (paper §3.4), which
    activates/deactivates the shedder and renews its drop command.

    ``per_event=False`` (window-parallel chains) skips the per-event
    decisions: there the operator sheds whole windows at completion.
    """

    name = "shedding"

    __slots__ = ("shedder", "detector", "per_event", "operator", "queue")

    def __init__(
        self,
        shedder: Optional[LoadShedder] = None,
        detector: Optional[OverloadDetector] = None,
        per_event: bool = True,
    ) -> None:
        self.shedder = shedder
        self.detector = detector
        self.per_event = per_event
        # wired by the chain: decisions scale positions against the
        # match operator's predicted window size, checks read the queue
        self.operator: Optional[CEPOperator] = None
        self.queue: Optional[InputQueue] = None

    def on_event(self, ctx: StageContext) -> bool:
        if self.per_event and self.shedder is not None and self.operator is not None:
            ctx.drops = self.operator.decide(ctx.item, shedder=self.shedder)
        return True

    def process_batch(self, batch: "StageBatch") -> None:
        """Resolve every (event, window) pair of the batch in one pass.

        The caller guarantees one shared predictor state for the batch
        (the chain splits batches at window completions), so a single
        window-size prediction covers every pair and the shedder's
        vectorized kernel resolves the whole drop mask at once.
        """
        shedder = self.shedder
        if not (self.per_event and shedder is not None and self.operator is not None):
            return
        if not getattr(shedder, "active", True):
            return  # operator.decide would return None per item
        live = [ctx for ctx in batch.contexts if not ctx.stopped]
        drops = self.operator.decide_batch(
            [ctx.item for ctx in live], shedder=shedder
        )
        for ctx, item_drops in zip(live, drops):
            ctx.drops = item_drops

    def on_tick(self, now: float) -> None:
        if self.detector is not None and self.queue is not None:
            self.detector.check(now, self.queue.size)

    def metrics(self) -> Dict[str, object]:
        if self.shedder is None:
            return {"active": False, "decisions": 0, "drops": 0}
        return {
            "active": self.shedder.active,
            "decisions": self.shedder.decisions,
            "drops": self.shedder.drops,
            "drop_rate": self.shedder.observed_drop_rate(),
        }


class MatchStage(Stage):
    """The CEP operator: window buffers and pattern matching.

    Applies the shedding stage's decisions to the operator's window
    buffers and, when the item closed windows, runs the query's matcher
    over their kept contents to produce complex events
    (:class:`ProcessResult` on the context).
    """

    name = "match"

    __slots__ = ("operator",)

    def __init__(self, operator: CEPOperator) -> None:
        self.operator = operator

    def on_event(self, ctx: StageContext) -> bool:
        ctx.result = self.operator.apply(ctx.item, ctx.drops, now=ctx.now)
        return True

    def process_batch(self, batch: "StageBatch") -> None:
        apply = self.operator.apply
        for ctx in batch.contexts:
            if not ctx.stopped:
                ctx.result = apply(ctx.item, ctx.drops, now=ctx.now)

    def flush(self, windows: List[Window], now: float) -> List[ComplexEvent]:
        """Complete still-open windows at end of stream."""
        return self.operator.flush(windows, now=now)

    def metrics(self) -> Dict[str, object]:
        stats = self.operator.stats
        return {
            "events_processed": stats.events_processed,
            "memberships_kept": stats.memberships_kept,
            "memberships_dropped": stats.memberships_dropped,
            "windows_completed": stats.windows_completed,
            "complex_events": stats.complex_events,
            "drop_ratio": stats.drop_ratio(),
        }


class ParallelMatchStage(Stage):
    """Window-parallel matching (RIP/SPECTRE deployment shape, §5).

    Complete windows are dispatched round-robin over ``degree`` logical
    operator instances of a shared
    :class:`~repro.cep.parallel.WindowParallelOperator`; shedding (if
    any) happens per window at completion through the shared shedder,
    which is what makes detections invariant in the parallelism degree.
    """

    name = "match"

    __slots__ = ("parallel",)

    def __init__(self, parallel: WindowParallelOperator) -> None:
        self.parallel = parallel

    def on_event(self, ctx: StageContext) -> bool:
        complex_events: List[ComplexEvent] = []
        for window in ctx.item.closed_windows:
            complex_events.extend(self.parallel.process_window(window, now=ctx.now))
        ctx.result = ProcessResult(complex_events=complex_events)
        return True

    def flush(self, windows: List[Window], now: float) -> List[ComplexEvent]:
        complex_events: List[ComplexEvent] = []
        for window in windows:
            complex_events.extend(self.parallel.process_window(window, now=now))
        return complex_events

    def metrics(self) -> Dict[str, object]:
        return {
            "degree": self.parallel.degree,
            "windows_completed": self.parallel.total_windows(),
            "load_imbalance": self.parallel.load_imbalance(),
            "complex_events": sum(
                s.complex_events for s in self.parallel.instance_stats
            ),
        }


class EmitStage(Stage):
    """Exit of the chain: fan out complex events, optionally collect.

    Notifies subscribed sinks (callbacks) -- the hook a downstream
    operator, dashboard or alerting integration attaches to.  While
    :attr:`retain` is set (``Pipeline.run`` sets it for the duration of
    a batch replay) detections are also collected for the result
    object; push-based ``feed()`` and the simulation driver leave it
    off, so a long-running live deployment does not accumulate
    detections unboundedly.
    """

    name = "emit"

    __slots__ = ("sinks", "collected", "retain", "emitted")

    def __init__(self, sinks: Optional[List[EventSink]] = None) -> None:
        self.sinks: List[EventSink] = list(sinks or [])
        self.collected: List[ComplexEvent] = []
        self.retain = False
        self.emitted = 0

    def subscribe(self, sink: EventSink) -> None:
        self.sinks.append(sink)

    def on_event(self, ctx: StageContext) -> bool:
        if ctx.result is not None and ctx.result.complex_events:
            self.dispatch(ctx.result.complex_events)
        return True

    def process_batch(self, batch: "StageBatch") -> None:
        dispatch = self.dispatch
        for ctx in batch.contexts:
            if ctx.stopped:
                continue
            result = ctx.result
            if result is not None and result.complex_events:
                dispatch(result.complex_events)

    def dispatch(self, complex_events: List[ComplexEvent]) -> None:
        """Record and fan out detections (also used by the flush path)."""
        if self.retain:
            self.collected.extend(complex_events)
        self.emitted += len(complex_events)
        for sink in self.sinks:
            for complex_event in complex_events:
                sink(complex_event)

    def drain_collected(self) -> List[ComplexEvent]:
        """Return and clear the collected detections."""
        collected = self.collected
        self.collected = []
        return collected

    def metrics(self) -> Dict[str, object]:
        return {"emitted": self.emitted, "sinks": len(self.sinks)}


# ----------------------------------------------------------------------
# ready-made custom stages (the middleware extension point)
# ----------------------------------------------------------------------
class LoggingStage(Stage):
    """Observability middleware: per-type counts plus optional logging."""

    # ``name`` is an instance slot here (configurable per stage); the
    # base class attribute still provides the "stage" fallback.
    __slots__ = ("name", "logger", "level", "seen", "by_type")

    def __init__(
        self,
        logger: Optional[logging.Logger] = None,
        level: int = logging.DEBUG,
        name: str = "logging",
    ) -> None:
        self.name = name
        self.logger = logger
        self.level = level
        self.seen = 0
        self.by_type: Dict[str, int] = {}

    def on_event(self, ctx: StageContext) -> bool:
        self.seen += 1
        event_type = ctx.event.event_type
        self.by_type[event_type] = self.by_type.get(event_type, 0) + 1
        if self.logger is not None:
            self.logger.log(
                self.level, "event %s seq=%d t=%.3f", event_type, ctx.event.seq, ctx.now
            )
        return True

    def metrics(self) -> Dict[str, object]:
        return {"seen": self.seen, "by_type": dict(self.by_type)}


class SamplingStage(Stage):
    """Input sampling middleware: keep each event with probability ``p``."""

    name = "sampling"

    __slots__ = ("keep_probability", "_rng", "kept", "dropped")

    def __init__(self, keep_probability: float, seed: int = 0) -> None:
        if not 0.0 <= keep_probability <= 1.0:
            raise ValueError("keep probability must lie in [0, 1]")
        self.keep_probability = keep_probability
        self._rng = random.Random(seed)
        self.kept = 0
        self.dropped = 0

    def on_event(self, ctx: StageContext) -> bool:
        if self._rng.random() < self.keep_probability:
            self.kept += 1
            return True
        self.dropped += 1
        return False

    def metrics(self) -> Dict[str, object]:
        return {"kept": self.kept, "dropped": self.dropped}


class RateLimitStage(Stage):
    """Token-bucket rate limiting middleware (events/second of stream time).

    A coarse admission guard upstream of the window assigner -- unlike
    load shedding it is utility-blind, which makes it the right tool
    only for abusive sources, not for overload quality control.
    """

    name = "rate_limit"

    __slots__ = ("rate", "burst", "_tokens", "_last_refill", "passed", "limited")

    def __init__(self, events_per_second: float, burst: Optional[float] = None) -> None:
        if events_per_second <= 0.0:
            raise ValueError("rate limit must be positive")
        self.rate = events_per_second
        self.burst = burst if burst is not None else events_per_second
        self._tokens = self.burst
        self._last_refill: Optional[float] = None
        self.passed = 0
        self.limited = 0

    def _refill(self, now: float) -> None:
        if self._last_refill is None:
            self._last_refill = now
            return
        elapsed = max(0.0, now - self._last_refill)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._last_refill = now

    def on_event(self, ctx: StageContext) -> bool:
        self._refill(ctx.now)
        # epsilon absorbs float drift from repeated elapsed-time sums
        if self._tokens >= 1.0 - 1e-9:
            self._tokens = max(0.0, self._tokens - 1.0)
            self.passed += 1
            return True
        self.limited += 1
        return False

    def on_tick(self, now: float) -> None:
        self._refill(now)

    def metrics(self) -> Dict[str, object]:
        return {"passed": self.passed, "limited": self.limited, "tokens": self._tokens}

"""The unified public API: composable middleware-stage pipelines.

This package is the single entry point of the reproduction.  Queries,
shedding strategies (by registry name), bounds and custom middleware
are declared fluently, and the resulting :class:`Pipeline` serves
training, deployment, push-based live ingestion, batch replay,
deterministic overload simulation and hot model retraining::

    from repro.pipeline import Pipeline

    pipeline = (
        Pipeline.builder()
        .query(query)
        .shedder("espice", f=0.8)
        .latency_bound(1.0)
        .build()
    )
    pipeline.train(training_stream)
    pipeline.deploy(expected_throughput=1000.0, expected_input_rate=1400.0)
    result = pipeline.simulate(live_stream, input_rate=1400.0, throughput=1000.0)

Event path (per query chain)::

    AdmissionStage -> [custom stages] -> WindowAssignStage
        ||  (input queue)
    SheddingStage -> MatchStage -> EmitStage -> [custom stages]

Cross-cutting helpers that the old wiring scattered over ``repro.core``
and ``repro.runtime`` are re-exported here so typical applications
import one module: quality comparison (:func:`ground_truth`,
:func:`compare_results`), the simulation types, and the ready-made
middleware stages.
"""

from repro.pipeline.batching import EventBatch, MicroBatcher, StageBatch
from repro.pipeline.builder import PipelineBuilder
from repro.pipeline.pipeline import (
    Pipeline,
    PipelineConfig,
    PipelineResult,
    QueryChain,
)
from repro.pipeline.stages import (
    AdmissionStage,
    EmitStage,
    LoggingStage,
    MatchStage,
    ParallelMatchStage,
    RateLimitStage,
    SamplingStage,
    SheddingStage,
    Stage,
    StageContext,
    WindowAssignStage,
)
from repro.runtime.quality import QualityReport, compare_results, ground_truth
from repro.runtime.simulation import (
    SimulationConfig,
    SimulationResult,
    measure_mean_memberships,
    simulate_pipeline,
    simulate_sharded,
)
from repro.shedding.registry import (
    available_shedders,
    create_shedder,
    describe_shedders,
    register_shedder,
)

__all__ = [
    "AdmissionStage",
    "EmitStage",
    "EventBatch",
    "LoggingStage",
    "MatchStage",
    "MicroBatcher",
    "StageBatch",
    "ParallelMatchStage",
    "Pipeline",
    "PipelineBuilder",
    "PipelineConfig",
    "PipelineResult",
    "QualityReport",
    "QueryChain",
    "RateLimitStage",
    "SamplingStage",
    "SheddingStage",
    "SimulationConfig",
    "SimulationResult",
    "Stage",
    "StageContext",
    "WindowAssignStage",
    "available_shedders",
    "compare_results",
    "create_shedder",
    "describe_shedders",
    "ground_truth",
    "measure_mean_memberships",
    "register_shedder",
    "simulate_pipeline",
    "simulate_sharded",
]

"""Micro-batching of the pipeline's event path.

The per-event stage chain pays interpreter constants -- stage dispatch,
context allocation, queue round-trips -- for every single event.
Micro-batching amortises them: events are accumulated into
:class:`EventBatch` objects under the classic *size-or-linger* rule
(mirroring :class:`repro.cluster.transport.BatchingSender`, but in
event time so replays stay deterministic) and each stage processes the
whole batch in one call (:meth:`repro.pipeline.stages.Stage.process_batch`).

Batched execution is semantically transparent: detections are
bit-for-bit identical, and identically ordered, to per-event execution
(property-tested across batch sizes).  ``batch_size=1`` degenerates to
the per-event path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, List, Optional

from repro.cep.events import Event
from repro.pipeline.stages import StageContext


@dataclass(slots=True)
class EventBatch:
    """An ordered slice of the input stream plus per-event clocks.

    ``nows[i]`` is the time at which ``events[i]`` is (or was) fed --
    the event's own timestamp in replay mode, the explicit feed time in
    live mode.  Keeping the per-event clock is what lets a batched run
    stamp detections and enqueue times exactly like the per-event path.
    """

    events: List[Event] = field(default_factory=list)
    nows: List[float] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def append(self, event: Event, now: float) -> None:
        self.events.append(event)
        self.nows.append(now)


class MicroBatcher:
    """Size-or-linger accumulator of :class:`EventBatch` objects.

    ``add`` buffers one event and returns the completed batch when the
    buffer reached ``batch_size`` or the oldest buffered event has
    waited ``linger`` (event-time) seconds; ``take`` flushes whatever
    is pending (tick boundaries, end of stream).
    """

    __slots__ = ("batch_size", "linger", "_batch", "_oldest")

    def __init__(self, batch_size: int, linger: float = 0.0) -> None:
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        if linger < 0.0:
            raise ValueError("linger must be non-negative")
        self.batch_size = batch_size
        self.linger = linger
        self._batch = EventBatch()
        self._oldest = 0.0

    def __len__(self) -> int:
        return len(self._batch)

    def __bool__(self) -> bool:
        return bool(self._batch)

    def add(self, event: Event, now: float) -> Optional[EventBatch]:
        """Buffer one event; return the batch if it is due for flush."""
        batch = self._batch
        if not batch.events:
            self._oldest = now
        batch.append(event, now)
        if len(batch.events) >= self.batch_size:
            return self.take()
        if self.linger > 0.0 and now - self._oldest >= self.linger:
            return self.take()
        return None

    def take(self) -> Optional[EventBatch]:
        """Flush and return the pending batch (``None`` when empty)."""
        if not self._batch.events:
            return None
        batch = self._batch
        self._batch = EventBatch()
        return batch


def iter_batches(
    stream: Iterable[Event], batch_size: int, linger: float = 0.0
) -> Iterator[EventBatch]:
    """Chop ``stream`` into :class:`EventBatch` objects (replay clocks).

    Each event's clock is its own timestamp -- the convention of
    ``Pipeline.run``.  Used by batch replays that need no tick
    interleaving (e.g. the sharded router).
    """
    batcher = MicroBatcher(batch_size, linger)
    for event in stream:
        batch = batcher.add(event, event.timestamp)
        if batch is not None:
            yield batch
    tail = batcher.take()
    if tail is not None:
        yield tail


class StageBatch:
    """One :class:`EventBatch` threaded through a stage chain.

    Wraps the per-event :class:`StageContext` objects so batch-aware
    stages can process them in one call while per-event (custom) stages
    keep their exact semantics: a stage vetoing an event marks its
    context ``stopped`` and every later stage skips it -- the batched
    equivalent of ``on_event`` returning ``False``.
    """

    __slots__ = ("contexts",)

    def __init__(self, contexts: List[StageContext]) -> None:
        self.contexts = contexts

    @classmethod
    def from_events(cls, batch: EventBatch) -> "StageBatch":
        return cls(
            [
                StageContext(event=event, now=now)
                for event, now in zip(batch.events, batch.nows)
            ]
        )

    def __len__(self) -> int:
        return len(self.contexts)

    def live(self) -> Iterator[StageContext]:
        """The contexts no stage has vetoed yet, in stream order."""
        return (ctx for ctx in self.contexts if not ctx.stopped)

"""eSPICE reproduction: probabilistic load shedding for CEP.

A complete Python implementation of "eSPICE: Probabilistic Load
Shedding from Input Event Streams in Complex Event Processing"
(Slo, Bhowmik, Rothermel -- Middleware '19), together with every
substrate the paper's system depends on:

- :mod:`repro.cep` -- a window-based CEP engine (events, windows, a
  Tesla/SASE-like pattern language and matcher, the operator).
- :mod:`repro.core` -- eSPICE itself: the utility model, overload
  detector and O(1) load shedder.
- :mod:`repro.shedding` -- the shedder interface plus the paper's
  comparators (BL, random).
- :mod:`repro.datasets` -- synthetic stand-ins for the NYSE and RTLS
  soccer datasets.
- :mod:`repro.queries` -- the evaluation queries Q1..Q4.
- :mod:`repro.runtime` -- deterministic virtual-time overload
  simulation, latency and quality metrics.
- :mod:`repro.experiments` -- one runner per paper figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

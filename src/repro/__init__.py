"""eSPICE reproduction: probabilistic load shedding for CEP.

A complete Python implementation of "eSPICE: Probabilistic Load
Shedding from Input Event Streams in Complex Event Processing"
(Slo, Bhowmik, Rothermel -- Middleware '19), together with every
substrate the paper's system depends on.

**Public API**: :mod:`repro.pipeline` -- composable middleware-stage
pipelines (``Pipeline.builder().query(q).shedder("espice", f=0.8)
.latency_bound(1.0).build()``) covering training, deployment, live
ingestion, virtual-time overload simulation and hot model retraining.
The manual wiring of earlier versions (``ESpice`` facade + loose
shedder/detector construction) is deprecated and kept only as thin
shims.

Subsystems:

- :mod:`repro.pipeline` -- **the public API**: builder, pipeline and
  middleware stages.
- :mod:`repro.cluster` -- the scale-out runtime: sharded multi-process
  execution of a pipeline (window routing, batched IPC transport, a
  coordinator owning the model and coordinated shedding), built via
  ``Pipeline.builder()...distributed(shards=N)``.
- :mod:`repro.cep` -- a window-based CEP engine (events, windows, a
  Tesla/SASE-like pattern language and matcher, the operator).
- :mod:`repro.core` -- eSPICE itself: the utility model, overload
  detector and O(1) load shedder.
- :mod:`repro.shedding` -- the shedder interface, the paper's
  comparators (BL, random) and the named strategy registry.
- :mod:`repro.datasets` -- synthetic stand-ins for the NYSE and RTLS
  soccer datasets.
- :mod:`repro.queries` -- the evaluation queries Q1..Q4.
- :mod:`repro.runtime` -- deterministic virtual-time overload
  simulation (a driver stepping a pipeline), latency and quality
  metrics.
- :mod:`repro.experiments` -- one runner per paper figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]

"""Q1: soccer man-marking -- sequence with *any* over a time window.

Paper form: ``seq(STR; any(n, DF1, DF2, .., DFm))`` -- a complex event
when any ``n`` defenders defend against a striker within ``ws`` seconds
of the striker's ball possession.  A new window opens for each incoming
striker event (pattern-based window with a time extent).
"""

from __future__ import annotations

from repro.cep.patterns import SelectionPolicy, any_of, seq, spec
from repro.cep.patterns.query import Query
from repro.cep.windows import PredicateWindows
from repro.datasets.soccer import (
    STRIKER_TYPES,
    SoccerStreamConfig,
    defender_name,
    is_possession,
)


def build_q1(
    pattern_size: int,
    window_seconds: float = 15.0,
    defenders: int = 8,
    selection: SelectionPolicy = SelectionPolicy.FIRST,
    marking_distance: float = 5.0,
) -> Query:
    """Build Q1.

    Parameters
    ----------
    pattern_size:
        ``n``: defenders required after the possession (paper sweeps
        2..6).
    window_seconds:
        ``ws`` in seconds (paper: 15 s).
    defenders:
        Number of defend-event types available to the *any* step; must
        match the dataset's :class:`SoccerStreamConfig.defenders`.
    selection:
        First or last selection policy (paper evaluates both).
    marking_distance:
        "The defending action is defined by a certain distance between
        the striker and the defenders" (paper §4.1): a defend event
        only matches if its ``distance`` attribute is at most this.
    """
    if pattern_size <= 0:
        raise ValueError("pattern size must be positive")
    if pattern_size > defenders:
        raise ValueError("pattern size cannot exceed the defender count")

    def defending(event) -> bool:
        return event.attr("distance", 0.0) <= marking_distance

    striker = spec(STRIKER_TYPES, label="STR")
    defender_specs = [
        spec(defender_name(i), predicate=defending)
        for i in range(1, defenders + 1)
    ]
    pattern = seq(
        f"q1_man_marking_n{pattern_size}",
        striker,
        any_of(pattern_size, defender_specs),
    )
    return Query(
        name=pattern.name,
        pattern=pattern,
        window_factory=lambda: PredicateWindows(
            open_predicate=is_possession,
            extent_seconds=window_seconds,
        ),
        selection=selection,
    )


def default_dataset_config(**overrides) -> SoccerStreamConfig:
    """Dataset config matching Q1's defaults (tweakable via kwargs)."""
    return SoccerStreamConfig(**overrides)

"""Q2: stock influence -- sequence with *any* over a time window.

Paper form: ``seq(MLE; any(n, RE1, .., REm))`` (adopted from SPECTRE):
a complex event when any ``n`` rising (or falling) follower quotes
occur within ``ws`` seconds of a rising (falling) quote of a leading
symbol.  A new window opens for each leading-symbol event of the
chosen direction.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cep.events import Event
from repro.cep.patterns import SelectionPolicy, any_of, seq, spec
from repro.cep.patterns.query import Query
from repro.cep.windows import PredicateWindows
from repro.datasets.stock import StockStreamConfig, symbol_name


def build_q2(
    pattern_size: int,
    window_seconds: float = 240.0,
    direction: str = "rise",
    leaders: int = 5,
    follower_pool: Optional[Sequence[str]] = None,
    symbols: int = 50,
    selection: SelectionPolicy = SelectionPolicy.FIRST,
) -> Query:
    """Build Q2.

    Parameters
    ----------
    pattern_size:
        ``n``: follower moves required (paper sweeps 10..80).
    window_seconds:
        ``ws`` in seconds (paper: 240 s).
    direction:
        ``"rise"`` (paper's RE variant) or ``"fall"`` (FE variant).
    leaders:
        Number of leading symbols; their events of the chosen direction
        open windows (paper: 5 blue chips).
    follower_pool:
        Names eligible for the *any* step; defaults to every non-leader
        symbol of a universe of ``symbols`` symbols.
    selection:
        First or last selection policy.
    """
    if direction not in ("rise", "fall"):
        raise ValueError("direction must be 'rise' or 'fall'")
    if pattern_size <= 0:
        raise ValueError("pattern size must be positive")
    if follower_pool is None:
        follower_pool = [symbol_name(i) for i in range(leaders, symbols)]
    if pattern_size > len(follower_pool):
        raise ValueError("pattern size cannot exceed the follower pool")

    leader_names = frozenset(symbol_name(i) for i in range(leaders))

    def moves(event: Event) -> bool:
        return event.attr("direction") == direction

    def opens(event: Event) -> bool:
        return event.event_type in leader_names and moves(event)

    mle = spec(leader_names, predicate=moves, label=f"MLE_{direction}")
    follower_specs = [spec(name, predicate=moves) for name in follower_pool]
    pattern = seq(
        f"q2_influence_{direction}_n{pattern_size}",
        mle,
        any_of(pattern_size, follower_specs),
    )
    return Query(
        name=pattern.name,
        pattern=pattern,
        window_factory=lambda: PredicateWindows(
            open_predicate=opens,
            extent_seconds=window_seconds,
        ),
        selection=selection,
    )


def default_dataset_config(**overrides) -> StockStreamConfig:
    """Dataset config matching Q2's defaults (tweakable via kwargs)."""
    return StockStreamConfig(**overrides)

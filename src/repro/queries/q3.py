"""Q3: exact symbol cascade -- the plain sequence operator.

Paper form: ``seq(RE1; RE2; ..; RE20)`` -- a complex event when rising
(or falling) quotes of 20 *specific* symbols occur in a given order
within ``ws`` events.  Windows are count-extent and open on each
leading-symbol event.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cep.events import Event
from repro.cep.patterns import SelectionPolicy, seq, spec
from repro.cep.patterns.query import Query
from repro.cep.windows import PredicateWindows
from repro.datasets.stock import StockStreamConfig, symbol_name


def build_q3(
    window_events: int,
    direction: str = "rise",
    sequence_symbols: Optional[Sequence[str]] = None,
    sequence_length: int = 20,
    leaders: int = 5,
    selection: SelectionPolicy = SelectionPolicy.FIRST,
) -> Query:
    """Build Q3.

    Parameters
    ----------
    window_events:
        ``ws`` in events (paper sweeps 300..2000).
    direction:
        ``"rise"`` (RE variant) or ``"fall"`` (FE variant).
    sequence_symbols:
        The exact ordered symbol names to match; defaults to the first
        ``sequence_length`` follower symbols in index order, which is
        the order cascades fire in the synthetic dataset.
    leaders:
        Leading symbols whose events (of the chosen direction) open
        windows.
    """
    if direction not in ("rise", "fall"):
        raise ValueError("direction must be 'rise' or 'fall'")
    if window_events <= 0:
        raise ValueError("window extent must be positive")
    if sequence_symbols is None:
        sequence_symbols = [
            symbol_name(i) for i in range(leaders, leaders + sequence_length)
        ]
    if not sequence_symbols:
        raise ValueError("the sequence needs at least one symbol")

    leader_names = frozenset(symbol_name(i) for i in range(leaders))

    def moves(event: Event) -> bool:
        return event.attr("direction") == direction

    def opens(event: Event) -> bool:
        return event.event_type in leader_names and moves(event)

    steps = [spec(name, predicate=moves) for name in sequence_symbols]
    pattern = seq(f"q3_cascade_{direction}_len{len(steps)}", *steps)
    return Query(
        name=pattern.name,
        pattern=pattern,
        window_factory=lambda: PredicateWindows(
            open_predicate=opens,
            extent_events=window_events,
        ),
        selection=selection,
    )


def default_dataset_config(
    sequence_length: int = 20, leaders: int = 5, **overrides
) -> StockStreamConfig:
    """Dataset config whose cascades feed Q3's default sequence."""
    overrides.setdefault("symbols", max(50, leaders + sequence_length))
    overrides.setdefault(
        "cascade_symbols", tuple(range(leaders, leaders + sequence_length))
    )
    overrides.setdefault("leaders", leaders)
    return StockStreamConfig(**overrides)

"""The paper's evaluation queries Q1--Q4 (§4.1).

Each builder returns a :class:`repro.cep.patterns.query.Query` wired to
the matching synthetic dataset:

- :func:`~repro.queries.q1.build_q1` -- soccer man-marking: a striker
  possession followed by any ``n`` defender events within a time
  window (sequence with *any*).
- :func:`~repro.queries.q2.build_q2` -- stock influence: a leading
  symbol's move followed by any ``n`` same-direction follower moves
  within a time window (sequence with *any*).
- :func:`~repro.queries.q3.build_q3` -- exact rising/falling cascade of
  20 specific symbols within a count extent (sequence).
- :func:`~repro.queries.q4.build_q4` -- 10-symbol cascade with
  repetitions over a count-based sliding window (sequence with
  repetition).
"""

from repro.queries.q1 import build_q1
from repro.queries.q2 import build_q2
from repro.queries.q3 import build_q3
from repro.queries.q4 import build_q4

__all__ = ["build_q1", "build_q2", "build_q3", "build_q4"]

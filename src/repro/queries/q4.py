"""Q4: cascade with repetition -- the sequence operator with repeats.

Paper form: ``seq(RE1; RE1; RE2; RE3; RE2; RE4; RE2; RE5; RE6; RE7;
RE2; RE8; RE9; RE10)`` -- 10 distinct rising (falling) symbols, some
repeated, in a fixed 14-step order, over a count-based sliding window
with slide 100.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cep.events import Event
from repro.cep.patterns import SelectionPolicy, seq, spec
from repro.cep.patterns.query import Query
from repro.cep.windows import CountSlidingWindows
from repro.datasets.stock import StockStreamConfig, symbol_name

# The paper's repetition template over 10 distinct symbols (1-based).
PAPER_REPETITION_TEMPLATE = (1, 1, 2, 3, 2, 4, 2, 5, 6, 7, 2, 8, 9, 10)


def build_q4(
    window_events: int,
    slide_events: int = 100,
    direction: str = "rise",
    base_symbols: Optional[Sequence[str]] = None,
    leaders: int = 5,
    template: Sequence[int] = PAPER_REPETITION_TEMPLATE,
    selection: SelectionPolicy = SelectionPolicy.FIRST,
) -> Query:
    """Build Q4.

    Parameters
    ----------
    window_events:
        ``ws`` in events (paper sweeps 300..2000).
    slide_events:
        Window slide (paper: 100 events).
    direction:
        ``"rise"`` or ``"fall"``.
    base_symbols:
        The 10 distinct symbols the template indexes into; defaults to
        the first followers in cascade order.
    template:
        1-based indices into ``base_symbols`` defining the repetition
        order; defaults to the paper's 14-step template.
    """
    if direction not in ("rise", "fall"):
        raise ValueError("direction must be 'rise' or 'fall'")
    if window_events <= 0:
        raise ValueError("window extent must be positive")
    if slide_events <= 0:
        raise ValueError("slide must be positive")
    distinct = max(template)
    if base_symbols is None:
        base_symbols = [symbol_name(i) for i in range(leaders, leaders + distinct)]
    if len(base_symbols) < distinct:
        raise ValueError(
            f"template references {distinct} symbols, got {len(base_symbols)}"
        )

    def moves(event: Event) -> bool:
        return event.attr("direction") == direction

    steps: List = [
        spec(base_symbols[index - 1], predicate=moves) for index in template
    ]
    pattern = seq(f"q4_repetition_{direction}_len{len(steps)}", *steps)
    return Query(
        name=pattern.name,
        pattern=pattern,
        window_factory=lambda: CountSlidingWindows(window_events, slide_events),
        selection=selection,
    )


def default_dataset_config(
    distinct_symbols: int = 10, leaders: int = 5, **overrides
) -> StockStreamConfig:
    """Dataset config whose cascades can satisfy Q4's template.

    Cascades repeat per tick, so a template symbol repeated in the
    pattern (e.g. RE2) recurs across consecutive cascade firings within
    one window.
    """
    overrides.setdefault("symbols", max(50, leaders + distinct_symbols))
    overrides.setdefault(
        "cascade_symbols", tuple(range(leaders, leaders + distinct_symbols))
    )
    overrides.setdefault("leaders", leaders)
    return StockStreamConfig(**overrides)

"""The utility table ``UT(T, P)`` (paper §3.2--§3.3).

``UT`` is an ``M x Nb`` integer matrix -- ``M`` event types by ``Nb``
position bins -- whose cells hold the utility of an event of type ``T``
in (binned, reference-scaled) window position ``P``.  Utilities are the
normalised counts of (type, position) occurrences *inside detected
complex events*, discretised to integers in ``[0, 100]`` to bound the
number of distinct utility values (and hence the CDT size).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core import scaling


class UtilityTable:
    """Integer utility matrix with O(1) lookup.

    Parameters
    ----------
    type_ids:
        Mapping from event-type name to row index.
    reference_size:
        ``N``: the reference window size in positions.
    bin_size:
        ``bs``: positions per bin (paper §3.6); 1 disables binning.
    """

    MAX_UTILITY = 100

    def __init__(
        self,
        type_ids: Dict[str, int],
        reference_size: int,
        bin_size: int = 1,
    ) -> None:
        if reference_size <= 0:
            raise ValueError("reference size must be positive")
        if bin_size <= 0:
            raise ValueError("bin size must be positive")
        self.type_ids = dict(type_ids)
        self.reference_size = reference_size
        self.bin_size = bin_size
        self.bins = scaling.bin_count(reference_size, bin_size)
        self._cells: List[List[int]] = [
            [0] * self.bins for _ in range(len(self.type_ids))
        ]

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------
    @classmethod
    def from_counts(
        cls,
        counts: Dict[str, Dict[int, float]],
        type_ids: Dict[str, int],
        reference_size: int,
        bin_size: int = 1,
    ) -> "UtilityTable":
        """Build a table from raw contribution counts.

        ``counts[type_name][bin_index]`` is how often events of that
        type, in that bin, contributed to a detected complex event.
        Counts are normalised by the global maximum and discretised to
        ``[0, 100]`` (paper §3.3).  A cell that contributed at least
        once never rounds down to 0: utility 0 is reserved for "no
        evidence of contribution", so the shedder's lowest threshold
        cannot wipe out rarely-but-genuinely contributing cells.
        """
        table = cls(type_ids, reference_size, bin_size)
        peak = 0.0
        for per_bin in counts.values():
            for value in per_bin.values():
                peak = max(peak, value)
        if peak <= 0.0:
            return table
        for type_name, per_bin in counts.items():
            row = table._cells[table.type_ids[type_name]]
            for bin_index, value in per_bin.items():
                if 0 <= bin_index < table.bins and value > 0.0:
                    row[bin_index] = max(1, round(value / peak * cls.MAX_UTILITY))
        return table

    @classmethod
    def from_matrix(
        cls,
        matrix: Sequence[Sequence[int]],
        type_names: Sequence[str],
        bin_size: int = 1,
    ) -> "UtilityTable":
        """Build directly from an explicit integer matrix (tests, Table 1)."""
        if len(matrix) != len(type_names):
            raise ValueError("one row per type name required")
        reference_size = len(matrix[0]) * bin_size if matrix else bin_size
        type_ids = {name: i for i, name in enumerate(type_names)}
        table = cls(type_ids, reference_size, bin_size)
        for row_index, row in enumerate(matrix):
            if len(row) != table.bins:
                raise ValueError("ragged utility matrix")
            for bin_index, value in enumerate(row):
                if not 0 <= value <= cls.MAX_UTILITY:
                    raise ValueError(f"utility {value} outside [0, 100]")
                table._cells[row_index][bin_index] = int(value)
        return table

    def set_cell(self, type_name: str, bin_index: int, utility: int) -> None:
        """Directly set one cell (model retraining, tests)."""
        if not 0 <= utility <= self.MAX_UTILITY:
            raise ValueError(f"utility {utility} outside [0, 100]")
        self._cells[self.type_ids[type_name]][bin_index] = utility

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    @property
    def type_count(self) -> int:
        """``M``: number of event types."""
        return len(self.type_ids)

    def row(self, type_name: str) -> List[int]:
        """Utility row of a type (a copy)."""
        return list(self._cells[self.type_ids[type_name]])

    def cell(self, type_name: str, bin_index: int) -> int:
        """Raw cell value ``UT(T, bin)``."""
        return self._cells[self.type_ids[type_name]][bin_index]

    def utility(self, type_name: str, position: int, window_size: float) -> int:
        """Utility of type ``type_name`` at window ``position``.

        The position is scaled from the incoming window (of
        ``window_size`` events, possibly a prediction) onto the
        reference positions and bins.  When a position covers several
        bins (scale-up, ``ws < N``), the utility is the average of the
        covered cells (paper §3.6); an unknown type has utility 0 (no
        evidence it ever contributed, hence safe to drop first).
        """
        row_index = self.type_ids.get(type_name)
        if row_index is None:
            return 0
        first, last = scaling.position_to_bins(
            position, window_size, self.reference_size, self.bin_size
        )
        row = self._cells[row_index]
        if first == last:
            return row[first]
        span = row[first : last + 1]
        return round(sum(span) / len(span))

    def utilities_in_bin(self, bin_index: int) -> List[int]:
        """Column slice: each type's utility in ``bin_index``."""
        return [row[bin_index] for row in self._cells]

    def distinct_utilities(self) -> List[int]:
        """Sorted distinct utility values present in the table."""
        values = {value for row in self._cells for value in row}
        return sorted(values)

    def as_matrix(self) -> List[List[int]]:
        """Copy of the underlying matrix (row per type)."""
        return [list(row) for row in self._cells]

    def rows_by_type(self) -> Dict[str, List[int]]:
        """Live views of the rows keyed by type name.

        The returned lists are the table's own storage -- callers must
        treat them as read-only.  Used by the load shedder's O(1) hot
        path to skip per-decision indirection.
        """
        return {name: self._cells[i] for name, i in self.type_ids.items()}

    def __repr__(self) -> str:
        return (
            f"UtilityTable(types={self.type_count}, N={self.reference_size}, "
            f"bs={self.bin_size}, bins={self.bins})"
        )

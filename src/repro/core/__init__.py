"""eSPICE: the paper's contribution -- probabilistic load shedding.

The public entry point of the project is :mod:`repro.pipeline`
(``Pipeline.builder() ... .build()``); the pieces below are the
building blocks it composes.

Building blocks
---------------

- :class:`~repro.core.model.UtilityModel` /
  :class:`~repro.core.model.ModelBuilder` -- the learned model: the
  utility table ``UT(T, P)``, position shares ``S(T, P)`` and
  per-partition ``CDT`` tables (paper §3.2--§3.3).
- :class:`~repro.core.shedder.ESpiceShedder` -- the O(1) load shedder
  (Algorithm 2).
- :class:`~repro.core.overload.OverloadDetector` -- queue monitoring,
  ``qmax``/``f`` logic and drop-amount computation (paper §3.4).
- :func:`~repro.core.fvalue.select_f` -- utility-clustering based
  choice of the ``f`` parameter (paper §3.4, "appropriate f value").

Deprecated
----------

- :class:`~repro.core.espice.ESpice` /
  :class:`~repro.core.espice.ESpiceConfig` -- the pre-pipeline manual
  wiring facade, kept as a thin shim over the same shared factories
  the :class:`repro.pipeline.PipelineBuilder` uses.  New code should
  build a pipeline instead.
"""

from repro.core.adaptive import AdaptiveController, RetrainEvent
from repro.core.cdt import CDT, build_cdt
from repro.core.drift import DriftDetector, DriftStatus
from repro.core.espice import ESpice, ESpiceConfig
from repro.core.fvalue import select_f
from repro.core.model import ModelBuilder, UtilityModel
from repro.core.overload import OverloadDetector, OverloadSample
from repro.core.partitions import PartitionPlan, plan_partitions
from repro.core.persistence import load_model, save_model
from repro.core.position_shares import PositionShares
from repro.core.shedder import ESpiceShedder
from repro.core.utility_table import UtilityTable

__all__ = [
    "AdaptiveController",
    "CDT",
    "DriftDetector",
    "DriftStatus",
    "RetrainEvent",
    "ESpice",
    "ESpiceConfig",
    "ESpiceShedder",
    "ModelBuilder",
    "OverloadDetector",
    "OverloadSample",
    "PartitionPlan",
    "PositionShares",
    "UtilityModel",
    "UtilityTable",
    "build_cdt",
    "load_model",
    "plan_partitions",
    "save_model",
    "select_f",
]

"""Closed-loop adaptation: drift detection driving model retraining.

Completes the paper's §3.6 story: the :class:`DriftDetector` watches
completed windows; when it signals that the deployed utility model no
longer describes the stream, the controller retrains a fresh model from
the windows it has been buffering, swaps it into the live shedder
atomically (the shedder keeps serving O(1) decisions throughout) and
rebinds the detector.

The controller is an operator window listener, so wiring it up is one
line::

    controller = AdaptiveController(espice_model, shedder)
    operator.add_window_listener(controller.observe)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Sequence

from repro.cep.patterns.matcher import Match
from repro.cep.windows import Window
from repro.core.drift import DriftDetector, DriftStatus
from repro.core.model import ModelBuilder, UtilityModel
from repro.core.shedder import ESpiceShedder


@dataclass
class RetrainEvent:
    """Record of one automatic retraining."""

    at_window: int
    reason: str
    old_reference_size: int
    new_reference_size: int


class AdaptiveController:
    """Watches windows, retrains and hot-swaps the model on drift.

    Parameters
    ----------
    model:
        The currently deployed model.
    shedder:
        The live shedder whose model is swapped on retrain (may be
        ``None`` for monitor-only operation).
    check_every:
        Drift check cadence in completed windows.
    min_training_windows:
        Retraining is deferred until the buffer holds this many
        (non-truncated) windows.
    detector_kwargs:
        Extra arguments for the underlying :class:`DriftDetector`.
    """

    def __init__(
        self,
        model: UtilityModel,
        shedder: Optional[ESpiceShedder] = None,
        check_every: int = 25,
        min_training_windows: int = 40,
        **detector_kwargs: Any,
    ) -> None:
        if check_every <= 0:
            raise ValueError("check_every must be positive")
        if min_training_windows <= 0:
            raise ValueError("min_training_windows must be positive")
        self.model = model
        self.shedder = shedder
        self.check_every = check_every
        self.min_training_windows = min_training_windows
        self.detector = DriftDetector(model, **detector_kwargs)
        self.builder = ModelBuilder(bin_size=model.bin_size)
        self.retrain_log: List[RetrainEvent] = []
        self._windows_since_check = 0
        self.last_status: Optional[DriftStatus] = None

    # ------------------------------------------------------------------
    def observe(self, window: Window, matches: Sequence[Match]) -> None:
        """Operator window-listener entry point."""
        self.detector.observe(window, matches)
        self.builder.observe(window, matches)
        self._windows_since_check += 1
        if self._windows_since_check >= self.check_every:
            self._windows_since_check = 0
            self.last_status = self.detector.check()
            if self.last_status.drifted:
                self._retrain(self.last_status.reason)

    # ------------------------------------------------------------------
    def _retrain(self, reason: str) -> None:
        if self.builder.windows_seen < self.min_training_windows:
            return  # not enough fresh evidence yet; keep serving
        old_reference = self.model.reference_size
        new_model = self.builder.build()
        self.model = new_model
        if self.shedder is not None:
            self._swap_shedder_model(new_model)
        self.detector.rebind(new_model)
        self.builder = ModelBuilder(bin_size=new_model.bin_size)
        self.retrain_log.append(
            RetrainEvent(
                at_window=self.detector.model.windows_trained,
                reason=reason,
                old_reference_size=old_reference,
                new_reference_size=new_model.reference_size,
            )
        )

    def _swap_shedder_model(self, model: UtilityModel) -> None:
        """Atomically repoint the live shedder at the fresh model."""
        assert self.shedder is not None
        self.shedder.rebind_model(model)

    # ------------------------------------------------------------------
    @property
    def retrain_count(self) -> int:
        """How many automatic retrains have happened."""
        return len(self.retrain_log)

"""Deprecated eSPICE facade -- use :mod:`repro.pipeline` instead.

This module predates the unified pipeline API and survives as a thin
shim: the model training, shedder construction and detector wiring it
used to hand-roll are now the same shared pieces the
:class:`repro.pipeline.PipelineBuilder` composes
(:class:`~repro.core.model.ModelBuilder`,
:func:`repro.shedding.registry.create_shedder`,
:func:`repro.core.fvalue.effective_f`).  New code should write::

    pipeline = (
        Pipeline.builder()
        .query(query)
        .shedder("espice", f=0.8)
        .latency_bound(1.0)
        .build()
    )
    pipeline.train(training_stream)
    pipeline.deploy(expected_throughput=th, expected_input_rate=rate)
    result = pipeline.simulate(live_stream, input_rate=rate, throughput=th)

The legacy usage (see the old ``examples/quickstart.py``) keeps
working::

    espice = ESpice(query, ESpiceConfig(latency_bound=1.0, f=0.8))
    espice.train(training_stream)

    shedder = espice.build_shedder()
    detector = espice.build_detector(shedder)
    result = simulate(query, live_stream, shedder=shedder, detector=detector, ...)
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from typing import Iterable, Optional

from repro.cep.events import Event
from repro.cep.operator.operator import CEPOperator
from repro.cep.patterns.query import Query
from repro.core.fvalue import effective_f as _effective_f
from repro.core.model import ModelBuilder, UtilityModel
from repro.core.overload import OverloadDetector
from repro.core.shedder import ESpiceShedder
from repro.shedding.registry import create_shedder


@dataclass
class ESpiceConfig:
    """Knobs of the eSPICE framework.

    Deprecated alongside :class:`ESpice`; the pipeline builder exposes
    the same knobs (``latency_bound``, ``f``, ``bin_size``,
    ``check_interval``, ``reference_size``) as fluent setters.

    Attributes
    ----------
    latency_bound:
        ``LB`` in seconds (paper evaluation default: 1.0).
    f:
        Shedding trigger fraction.  ``None`` selects ``f`` automatically
        from the trained model (paper §3.4); the evaluation default is
        0.8.
    bin_size:
        ``bs``: utility-table positions per bin (§3.6).
    check_interval:
        Overload-detector period in seconds.
    reference_size:
        Pin the reference window size ``N``; ``None`` derives it from
        the average seen window size during training.
    """

    latency_bound: float = 1.0
    f: Optional[float] = 0.8
    bin_size: int = 1
    check_interval: float = 0.1
    reference_size: Optional[int] = None

    def __post_init__(self) -> None:
        warnings.warn(
            "ESpiceConfig is deprecated; configure the same knobs through "
            "Pipeline.builder() (.latency_bound()/.f()/.bin_size()/"
            ".check_interval()/.reference_size())",
            DeprecationWarning,
            # 3, not 2: the dataclass-generated __init__ ("<string>")
            # sits between this frame and the deprecated call site
            stacklevel=3,
        )


class ESpice:
    """Deprecated facade wiring model, shedder and detector together.

    Thin shim over the shared factories used by
    :class:`repro.pipeline.PipelineBuilder`; prefer the builder.
    """

    def __init__(self, query: Query, config: Optional[ESpiceConfig] = None) -> None:
        warnings.warn(
            "ESpice is deprecated; use Pipeline.builder().query(...)"
            '.shedder("espice", ...) and train()/deploy() instead',
            DeprecationWarning,
            stacklevel=2,
        )
        self.query = query
        if config is None:
            # the facade already warned above; constructing the default
            # config must not blame ESpiceConfig on a user who never
            # touched it
            with warnings.catch_warnings():
                warnings.simplefilter("ignore", DeprecationWarning)
                config = ESpiceConfig()
        self.config = config
        self.builder = ModelBuilder(
            bin_size=self.config.bin_size,
            reference_size=self.config.reference_size,
        )
        self.model: Optional[UtilityModel] = None

    # ------------------------------------------------------------------
    # training (not time-critical, paper §3.1)
    # ------------------------------------------------------------------
    def train(self, stream: Iterable[Event]) -> UtilityModel:
        """Run the operator over ``stream`` (no shedding) and fit the model.

        Can be called repeatedly with fresh streams; statistics
        accumulate (periodic model updates, §3.3).  Call
        :meth:`retrain` instead to discard old statistics first.
        """
        operator = CEPOperator(self.query, shedder=None)
        operator.add_window_listener(self.builder.observe)
        operator.detect_all(stream)
        self.model = self.builder.build()
        return self.model

    def retrain(self, stream: Iterable[Event]) -> UtilityModel:
        """Reset statistics and train from scratch (§3.6, retraining)."""
        self.builder.reset()
        return self.train(stream)

    def _require_model(self) -> UtilityModel:
        if self.model is None:
            raise RuntimeError("train() must be called before building components")
        return self.model

    # ------------------------------------------------------------------
    # component factories
    # ------------------------------------------------------------------
    def build_shedder(self) -> ESpiceShedder:
        """A fresh load shedder backed by the trained model."""
        return create_shedder("espice", model=self._require_model())

    def effective_f(
        self,
        expected_processing_latency: float,
        expected_input_rate: float,
    ) -> float:
        """The configured ``f``, or the auto-selected one when unset."""
        if self.config.f is not None:
            return self.config.f
        return _effective_f(
            self._require_model(),
            self.config.latency_bound,
            None,
            expected_processing_latency,
            expected_input_rate,
        )

    def build_detector(
        self,
        shedder: ESpiceShedder,
        fixed_processing_latency: Optional[float] = None,
        fixed_input_rate: Optional[float] = None,
    ) -> OverloadDetector:
        """An overload detector driving ``shedder``.

        When ``config.f`` is ``None`` the detector uses the
        automatically selected ``f`` -- this requires
        ``fixed_processing_latency`` and ``fixed_input_rate`` so the
        selection has numbers to work with.
        """
        model = self._require_model()
        f = self.effective_f(fixed_processing_latency, fixed_input_rate)
        return OverloadDetector(
            latency_bound=self.config.latency_bound,
            f=f,
            reference_size=model.reference_size,
            shedder=shedder,
            check_interval=self.config.check_interval,
            fixed_processing_latency=fixed_processing_latency,
            fixed_input_rate=fixed_input_rate,
        )

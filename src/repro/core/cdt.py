"""Cumulative utility-occurrence tables (``CDT``, Algorithm 1).

``CDT(u)`` is the expected number of events per window (or per window
*partition*) whose utility is at most ``u``.  It is built from the
utility table and the position shares: every cell ``UT(T, bin)`` adds
its share ``S(T, bin)`` to the occurrence count of its utility value,
and the counts are then accumulated over ascending utility.

The utility threshold for dropping ``x`` events is the inverse lookup:
the smallest ``u`` with ``CDT(u) ≥ x`` (paper §3.2/§3.3).
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from repro.core.partitions import PartitionPlan
from repro.core.position_shares import PositionShares
from repro.core.utility_table import UtilityTable


class CDT:
    """One cumulative distribution over utility values 0..100."""

    SIZE = UtilityTable.MAX_UTILITY + 1  # 101 distinct utility values

    def __init__(self, occurrences: Optional[Iterable[float]] = None) -> None:
        values = list(occurrences) if occurrences is not None else [0.0] * self.SIZE
        if len(values) != self.SIZE:
            raise ValueError(f"CDT needs exactly {self.SIZE} occurrence counts")
        self._cumulative: List[float] = []
        running = 0.0
        for value in values:
            if value < 0.0:
                raise ValueError("occurrence counts must be non-negative")
            running += value
            self._cumulative.append(running)

    def value(self, utility: int) -> float:
        """``CDT(u)``: events per window with utility ≤ ``u``."""
        if not 0 <= utility < self.SIZE:
            raise ValueError(f"utility {utility} outside [0, 100]")
        return self._cumulative[utility]

    @property
    def total(self) -> float:
        """Total expected events per window (partition)."""
        return self._cumulative[-1]

    def threshold_for(self, x: float) -> int:
        """Smallest utility ``u`` with ``CDT(u) ≥ x``.

        Dropping every event whose utility is ≤ this threshold removes
        at least ``x`` events per window (partition).  If even the full
        population cannot supply ``x`` events the maximum utility is
        returned (drop everything).  ``x ≤ 0`` yields -1: drop nothing
        (no utility is ≤ -1).
        """
        if x <= 0.0:
            return -1
        # binary search over the monotone cumulative array
        lo, hi = 0, self.SIZE - 1
        if self._cumulative[hi] < x:
            return UtilityTable.MAX_UTILITY
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cumulative[mid] >= x:
                hi = mid
            else:
                lo = mid + 1
        return lo

    def as_list(self) -> List[float]:
        """Copy of the cumulative array (diagnostics, tests)."""
        return list(self._cumulative)

    def __repr__(self) -> str:
        return f"CDT(total={self.total:.3f})"


def build_cdt(
    table: UtilityTable,
    shares: PositionShares,
    bins: Optional[Iterable[int]] = None,
) -> CDT:
    """Algorithm 1: build a CDT from ``UT`` and the position shares.

    ``bins`` restricts the build to a subset of bins -- used to build
    one CDT per window partition.  ``None`` covers the whole table.
    """
    occurrences = [0.0] * CDT.SIZE
    bin_range = range(table.bins) if bins is None else bins
    for type_name in table.type_ids:
        for bin_index in bin_range:
            utility = table.cell(type_name, bin_index)
            occurrences[utility] += shares.share(type_name, bin_index)
    return CDT(occurrences)


def build_partition_cdts(
    table: UtilityTable,
    shares: PositionShares,
    plan: PartitionPlan,
) -> List[CDT]:
    """One CDT per partition of ``plan`` (paper §3.4, dropping interval)."""
    return [
        build_cdt(
            table,
            shares,
            plan.bins_of_partition(part, table.bin_size, table.bins),
        )
        for part in range(plan.partition_count)
    ]

"""Overload detection (paper §3.4).

The overload detector periodically inspects the operator's input queue
and estimates the latency an incoming event would incur:
``l(e) = l(q) + l(p) = qsize · l(p) + l(p)``.  From the latency bound
``LB`` it derives the maximum tolerable queue size ``qmax = LB / l(p)``
and triggers shedding when ``qsize > f · qmax``.

When triggered it computes the *dropping amount*: with input rate ``R``
and operator throughput ``th = 1 / l(p)``, the surplus is
``δ = R − th`` events/second, and ``x = δ · psize / R`` events must be
dropped from every partition of size ``psize`` (``psize / R`` being the
partition's span in seconds).

Estimators: ``l(p)`` is an exponential moving average over measured
per-event processing times; ``R`` is measured by counting arrivals
between checks.  Both can be pinned for deterministic tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.partitions import PartitionPlan, plan_partitions
from repro.shedding.base import DropCommand, LoadShedder


@dataclass
class OverloadSample:
    """One periodic check, recorded for diagnostics and Fig. 7."""

    time: float
    qsize: int
    processing_latency: float  # l(p)
    input_rate: float  # R
    qmax: float
    shedding: bool
    drop_amount: float  # x per partition (0 when not shedding)
    estimated_latency: float  # l(e) = (qsize + 1) * l(p)


class OverloadDetector:
    """Queue monitor that drives a load shedder.

    Parameters
    ----------
    latency_bound:
        ``LB`` in seconds.
    f:
        Shedding trigger fraction of ``qmax`` (paper default 0.8).
    reference_size:
        Model reference window size ``N``; partitions are planned over
        it.
    check_interval:
        Seconds of (virtual) time between checks.
    shedder:
        The shedder to activate/deactivate and command.
    ema_alpha:
        Smoothing factor for the ``l(p)`` moving average.
    fixed_processing_latency / fixed_input_rate:
        Pin the estimators (deterministic tests and simulations where
        the true values are configured anyway).
    partition_override:
        Force a fixed partition count instead of the paper's
        buffer-derived ``ρ`` (used by the partitioning ablation).
    """

    def __init__(
        self,
        latency_bound: float,
        f: float,
        reference_size: int,
        shedder: Optional[LoadShedder] = None,
        check_interval: float = 0.1,
        ema_alpha: float = 0.2,
        fixed_processing_latency: Optional[float] = None,
        fixed_input_rate: Optional[float] = None,
        partition_override: Optional[int] = None,
    ) -> None:
        if latency_bound <= 0.0:
            raise ValueError("latency bound must be positive")
        if not 0.0 <= f < 1.0:
            raise ValueError("f must lie in [0, 1)")
        if reference_size <= 0:
            raise ValueError("reference size must be positive")
        if check_interval <= 0.0:
            raise ValueError("check interval must be positive")
        self.latency_bound = latency_bound
        self.f = f
        self.reference_size = reference_size
        self.shedder = shedder
        self.check_interval = check_interval
        self.ema_alpha = ema_alpha
        self._fixed_lp = fixed_processing_latency
        self._fixed_rate = fixed_input_rate
        self.partition_override = partition_override
        if partition_override is not None and partition_override <= 0:
            raise ValueError("partition override must be positive")
        self._lp_estimate: Optional[float] = fixed_processing_latency
        self._arrivals_since_check = 0
        self._last_check_time: Optional[float] = None
        self._rate_estimate: Optional[float] = fixed_input_rate
        self.samples: List[OverloadSample] = []
        self.current_plan: Optional[PartitionPlan] = None
        self.shedding = False

    # ------------------------------------------------------------------
    # estimator feed (called by the runtime)
    # ------------------------------------------------------------------
    def record_arrival(self, timestamp: float) -> None:
        """Count one event arrival (input-rate estimation)."""
        self._arrivals_since_check += 1

    def record_processing(self, duration: float) -> None:
        """Fold one measured per-event processing time into ``l(p)``."""
        if self._fixed_lp is not None:
            return
        if duration <= 0.0:
            return
        if self._lp_estimate is None:
            self._lp_estimate = duration
        else:
            self._lp_estimate += self.ema_alpha * (duration - self._lp_estimate)

    @property
    def processing_latency(self) -> Optional[float]:
        """Current ``l(p)`` estimate in seconds (None before any data)."""
        return self._lp_estimate

    @property
    def input_rate(self) -> Optional[float]:
        """Current ``R`` estimate in events/second."""
        return self._rate_estimate

    @property
    def throughput(self) -> Optional[float]:
        """``th = 1 / l(p)`` (None before any processing data)."""
        if self._lp_estimate is None or self._lp_estimate <= 0.0:
            return None
        return 1.0 / self._lp_estimate

    def qmax(self) -> Optional[float]:
        """``qmax = LB / l(p)`` (None before any processing data)."""
        if self._lp_estimate is None or self._lp_estimate <= 0.0:
            return None
        return self.latency_bound / self._lp_estimate

    # ------------------------------------------------------------------
    # periodic check
    # ------------------------------------------------------------------
    def check(self, now: float, qsize: int) -> Optional[DropCommand]:
        """One periodic check; drives the shedder, returns any command.

        The runtime calls this every ``check_interval`` seconds with the
        current queue size.
        """
        self._update_rate(now)
        lp = self._lp_estimate
        rate = self._rate_estimate
        qmax = self.qmax()

        command: Optional[DropCommand] = None
        if qmax is not None and rate is not None:
            if qsize > self.f * qmax:
                command = self._command_for(rate, qmax)
                self.shedding = True
                if self.shedder is not None:
                    self.shedder.on_drop_command(command)
                    self.shedder.activate()
            elif self.shedding:
                self.shedding = False
                if self.shedder is not None:
                    self.shedder.deactivate()

        self.samples.append(
            OverloadSample(
                time=now,
                qsize=qsize,
                processing_latency=lp or 0.0,
                input_rate=rate or 0.0,
                qmax=qmax or 0.0,
                shedding=self.shedding,
                drop_amount=command.x if command else 0.0,
                estimated_latency=(qsize + 1) * (lp or 0.0),
            )
        )
        return command

    def _command_for(self, rate: float, qmax: float) -> DropCommand:
        if self.partition_override is not None:
            count = min(self.partition_override, self.reference_size)
            plan = PartitionPlan(
                reference_size=self.reference_size,
                partition_count=count,
                partition_size=self.reference_size / count,
            )
        else:
            plan = plan_partitions(self.reference_size, qmax, self.f)
        self.current_plan = plan
        throughput = self.throughput or rate
        surplus = max(0.0, rate - throughput)
        if rate <= 0.0:
            x = 0.0
        else:
            x = surplus * plan.partition_size / rate
        return DropCommand(
            x=x,
            partition_count=plan.partition_count,
            partition_size=plan.partition_size,
        )

    def _update_rate(self, now: float) -> None:
        if self._fixed_rate is not None:
            self._rate_estimate = self._fixed_rate
        elif self._last_check_time is not None and now > self._last_check_time:
            measured = self._arrivals_since_check / (now - self._last_check_time)
            if self._rate_estimate is None:
                self._rate_estimate = measured
            else:
                self._rate_estimate += self.ema_alpha * (
                    measured - self._rate_estimate
                )
        self._arrivals_since_check = 0
        self._last_check_time = now

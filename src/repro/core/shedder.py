"""The eSPICE load shedder (paper §3.5, Algorithm 2).

Given a drop command "drop ``x`` events from every partition", the
shedder derives, from the per-partition CDTs, one utility threshold
``uth(part)`` per partition (the smallest utility ``u`` with
``CDT(part, u) ≥ x``).  Per (event, window) pair the decision is then a
single utility-table lookup plus a comparison -- O(1):

    drop  ⇔  UT(T, P) ≤ uth(partition(P))

Positions are scaled onto the model's reference window before both the
lookup and the partition computation, which is what makes the shedder
robust to variable window sizes (§3.6).
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.cep.events import Event
from repro.core import scaling
from repro.core.cdt import CDT
from repro.core.kernel import SheddingKernel
from repro.core.model import UtilityModel
from repro.core.partitions import PartitionPlan
from repro.shedding.base import DropCommand, LoadShedder


class ESpiceShedder(LoadShedder):
    """Utility-threshold shedder backed by a trained model."""

    def __init__(
        self, model: UtilityModel, kernel_backend: Optional[str] = None
    ) -> None:
        super().__init__()
        self.model = model
        self._plan: Optional[PartitionPlan] = None
        self._cdts: List[CDT] = []
        self._thresholds: List[int] = []
        self._command: Optional[DropCommand] = None
        # hot-path caches: direct row access and scalar parameters avoid
        # per-decision attribute chains (the decision is O(1) and must
        # also be cheap in constants, paper §3.5)
        self._rows = model.table.rows_by_type()
        self._reference = model.reference_size
        self._bin_size = model.bin_size
        self._partition_size = float(model.reference_size)
        # the vectorized batch kernel is built lazily from the same
        # model state; ``kernel_backend`` pins numpy/fallback (tests,
        # benchmarks), None auto-detects
        self._kernel_backend = kernel_backend
        self._kernel: Optional[SheddingKernel] = None

    # ------------------------------------------------------------------
    # drop command handling (Algorithm 2, lines 1-7)
    # ------------------------------------------------------------------
    def on_drop_command(self, command: DropCommand) -> None:
        """Receive a new dropping amount; recompute per-partition ``uth``.

        Per-partition CDTs are rebuilt only when the partitioning
        changes; a changed ``x`` alone is a cheap threshold re-lookup.
        """
        plan_changed = (
            self._plan is None
            or self._plan.partition_count != command.partition_count
        )
        if plan_changed:
            self._plan = PartitionPlan(
                reference_size=self.model.reference_size,
                partition_count=max(1, command.partition_count),
                partition_size=(
                    command.partition_size
                    if command.partition_size > 0
                    else self.model.reference_size
                    / max(1, command.partition_count)
                ),
            )
            self._cdts = self.model.partition_cdts(self._plan)
        self._command = command
        self._thresholds = [cdt.threshold_for(command.x) for cdt in self._cdts]
        self._partition_size = self._plan.partition_size
        if self._kernel is not None:
            # thresholds are the only kernel state a command changes;
            # the flattened rows survive (they depend on the model only)
            self._kernel.set_thresholds(self._thresholds, self._partition_size)

    @property
    def thresholds(self) -> List[int]:
        """Current per-partition utility thresholds (diagnostics)."""
        return list(self._thresholds)

    @property
    def plan(self) -> Optional[PartitionPlan]:
        """Current partition plan (None before any command)."""
        return self._plan

    # ------------------------------------------------------------------
    # hot model swap (§3.6 retraining; used by AdaptiveController and
    # Pipeline.retrain)
    # ------------------------------------------------------------------
    def rebind_model(self, model: UtilityModel) -> None:
        """Atomically repoint the live shedder at a fresh model.

        The hot-path caches and per-partition thresholds are rebuilt by
        replaying the current drop command against the new model --
        decisions before and after the swap are each fully consistent
        with one model, and the shedder keeps serving O(1) decisions
        throughout.
        """
        command = self._command
        was_active = self.active
        self.model = model
        self._rows = model.table.rows_by_type()
        self._reference = model.reference_size
        self._bin_size = model.bin_size
        self._plan = None  # force partition/CDT rebuild
        self._cdts = []
        self._thresholds = []
        self._partition_size = float(model.reference_size)
        # the flattened kernel arrays mirror the *old* model's utility
        # rows -- invalidate them with the swap, or a mid-batch swap
        # would keep deciding against stale utilities (the next batch
        # rebuilds the kernel lazily from the new model)
        self._kernel = None
        if command is not None:
            self.on_drop_command(command)
        if was_active:
            self.activate()

    # ------------------------------------------------------------------
    # per-event decision (Algorithm 2, lines 8-17)
    # ------------------------------------------------------------------
    def _decide(self, event: Event, position: int, predicted_ws: float) -> bool:
        thresholds = self._thresholds
        if not thresholds:
            return False
        reference = self._reference
        window_size = predicted_ws if predicted_ws > 0 else reference

        if window_size >= reference - 1.0:
            # fast exact path: each window position covers at most one
            # reference position (scale-down or identity)
            if window_size <= reference + 1.0:
                ref_position = position if position < reference else reference - 1
            else:
                ref_position = int(position * reference / window_size)
                if ref_position >= reference:
                    ref_position = reference - 1
            row = self._rows.get(event.event_type)
            utility = row[ref_position // self._bin_size] if row is not None else 0
        else:
            # scale-up (ws < N): a position covers several cells whose
            # utilities are averaged (paper §3.6) -- precise slow path
            utility = self.model.table.utility(
                event.event_type, position, window_size
            )
            ref_position = int(
                scaling.scale_position(position, window_size, reference)[0]
            )

        partition = int(ref_position / self._partition_size)
        if partition >= len(thresholds):
            partition = len(thresholds) - 1
        return utility <= thresholds[partition]

    # ------------------------------------------------------------------
    # batched decision (vectorized kernel; bit-identical to the scalar
    # path, property-tested)
    # ------------------------------------------------------------------
    def kernel(self) -> SheddingKernel:
        """The flattened batch kernel (built lazily from the live model).

        Rebuilt automatically after :meth:`rebind_model`; a new drop
        command only swaps the threshold arrays in place.
        """
        kernel = self._kernel
        if kernel is None:
            table = self.model.table
            kernel = SheddingKernel(
                rows=table.as_matrix(),
                type_ids=table.type_ids,
                reference=self._reference,
                bin_size=self._bin_size,
                table_reference=table.reference_size,
                table_bin_size=table.bin_size,
                backend=self._kernel_backend,
            )
            kernel.set_thresholds(self._thresholds, self._partition_size)
            self._kernel = kernel
        return kernel

    def should_drop_batch(
        self,
        events: Sequence[Event],
        positions: Sequence[int],
        predicted_ws: float,
    ) -> List[bool]:
        """Batched :meth:`should_drop`: one kernel pass per batch.

        Counter semantics match the scalar loop exactly: every pair
        counts as a decision, every ``True`` as a drop.
        """
        n = len(positions)
        if not self._active or n == 0:
            return [False] * n
        self.decisions += n
        if not self._thresholds:
            return [False] * n
        mask = self.kernel().decide(events, positions, predicted_ws)
        self.drops += mask.count(True)
        return mask

    def threshold_for_partition(self, partition: int) -> int:
        """``uth(part)`` (diagnostics, tests)."""
        return self._thresholds[partition]

    # ------------------------------------------------------------------
    # shed-decision explainability (repro.obs)
    # ------------------------------------------------------------------
    def explain(self, event: Event, position: int, predicted_ws: float) -> dict:
        """The exact inputs of :meth:`_decide` for this pair.

        Re-derives utility, reference position, partition and the
        threshold compared against -- the same arithmetic as the
        decision, with no side effects -- plus the drop command in
        force (``x``, ρ).  Attached to dropped windows' traces by the
        observability layer.
        """
        explanation = {
            "strategy": type(self).__name__,
            "utility": None,
            "threshold": None,
            "partition": None,
            "partition_count": (
                self._command.partition_count if self._command else None
            ),
            "drop_amount": self._command.x if self._command else None,
        }
        thresholds = self._thresholds
        if not thresholds:
            return explanation
        reference = self._reference
        window_size = predicted_ws if predicted_ws > 0 else reference
        if window_size >= reference - 1.0:
            if window_size <= reference + 1.0:
                ref_position = position if position < reference else reference - 1
            else:
                ref_position = int(position * reference / window_size)
                if ref_position >= reference:
                    ref_position = reference - 1
            row = self._rows.get(event.event_type)
            utility = row[ref_position // self._bin_size] if row is not None else 0
        else:
            utility = self.model.table.utility(
                event.event_type, position, window_size
            )
            ref_position = int(
                scaling.scale_position(position, window_size, reference)[0]
            )
        partition = int(ref_position / self._partition_size)
        if partition >= len(thresholds):
            partition = len(thresholds) - 1
        explanation["utility"] = float(utility)
        explanation["threshold"] = float(thresholds[partition])
        explanation["partition"] = partition
        return explanation

"""Position shares ``S(T, P)`` (paper §3.3).

When several event types exist, one utility-table position holds one
utility value *per type*, so a position contributes to the occurrence
count of multiple utility values.  The paper resolves this by counting
fractional occurrences: the share ``S(T, P)`` of type ``T`` at position
``P`` is the probability that the event arriving at position ``P`` has
type ``T``, estimated from the observed distribution of events in
training windows.

With bins of size ``bs`` each bin covers ``bs`` positions, so the
shares of a bin sum to ``bs`` (the expected number of events a window
contributes to that bin), and the total over the whole table sums to
the reference window size ``N`` -- which is exactly what makes the
cumulative table ``CDT`` count *events per window*.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core import scaling


class PositionShares:
    """Expected per-window event counts by (type, bin)."""

    def __init__(
        self,
        type_ids: Dict[str, int],
        reference_size: int,
        bin_size: int = 1,
    ) -> None:
        if reference_size <= 0:
            raise ValueError("reference size must be positive")
        if bin_size <= 0:
            raise ValueError("bin size must be positive")
        self.type_ids = dict(type_ids)
        self.reference_size = reference_size
        self.bin_size = bin_size
        self.bins = scaling.bin_count(reference_size, bin_size)
        self._counts: List[List[float]] = [
            [0.0] * self.bins for _ in range(len(self.type_ids))
        ]
        self._windows_observed = 0

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def observe_window(self, typed_positions: List) -> None:
        """Account one training window.

        ``typed_positions`` is a list of ``(type_name, reference_position)``
        pairs -- every event of the window mapped onto reference
        positions (see :func:`repro.core.scaling.reference_position`).
        """
        for type_name, ref_pos in typed_positions:
            row_index = self.type_ids.get(type_name)
            if row_index is None:
                continue
            bin_index = scaling.bin_of_reference_position(
                ref_pos, self.reference_size, self.bin_size
            )
            self._counts[row_index][bin_index] += 1.0
        self._windows_observed += 1

    @property
    def windows_observed(self) -> int:
        """Number of training windows accounted so far."""
        return self._windows_observed

    # ------------------------------------------------------------------
    # lookup
    # ------------------------------------------------------------------
    def share(self, type_name: str, bin_index: int) -> float:
        """``S(T, bin)``: expected events of ``type_name`` in the bin
        per window (0.0 before any window was observed)."""
        row_index = self.type_ids.get(type_name)
        if row_index is None or self._windows_observed == 0:
            return 0.0
        return self._counts[row_index][bin_index] / self._windows_observed

    def shares_in_bin(self, bin_index: int) -> List[float]:
        """Each type's share in ``bin_index`` (row order of ``type_ids``)."""
        if self._windows_observed == 0:
            return [0.0] * len(self.type_ids)
        return [row[bin_index] / self._windows_observed for row in self._counts]

    def total(self) -> float:
        """Sum of all shares; approximately the mean window size."""
        if self._windows_observed == 0:
            return 0.0
        return sum(sum(row) for row in self._counts) / self._windows_observed

    @classmethod
    def uniform(
        cls,
        type_ids: Dict[str, int],
        reference_size: int,
        bin_size: int = 1,
    ) -> "PositionShares":
        """Shares assuming types are uniform across positions.

        Useful as a prior before any window has been observed: each of
        the ``M`` types receives ``bs / M`` per bin.
        """
        shares = cls(type_ids, reference_size, bin_size)
        shares._windows_observed = 1
        m = max(len(type_ids), 1)
        for row in shares._counts:
            for bin_index in range(shares.bins):
                # last bin may be partial when bs does not divide N
                covered = min(
                    bin_size, reference_size - bin_index * bin_size
                )
                row[bin_index] = covered / m
        return shares

    def __repr__(self) -> str:
        return (
            f"PositionShares(types={len(self.type_ids)}, bins={self.bins}, "
            f"windows={self._windows_observed})"
        )

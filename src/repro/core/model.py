"""The utility model and its builder (paper §3.3, "Model Building").

Training is *not* time-critical (paper §3.1): the model builder watches
the operator during normal (non-overloaded) processing, records which
(event-type, window-position) pairs contributed to detected complex
events as well as the overall distribution of types over positions, and
periodically produces a :class:`UtilityModel`:

- the utility table ``UT(T, P)`` -- normalised contribution counts,
- the position shares ``S(T, P)`` -- expected per-window type counts,
- the reference window size ``N`` -- the average seen window size,
  which also handles variable-size windows (§3.6).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cep.events import Event
from repro.cep.patterns.matcher import Match
from repro.cep.windows import Window
from repro.core import scaling
from repro.core.cdt import CDT, build_cdt, build_partition_cdts
from repro.core.partitions import PartitionPlan
from repro.core.position_shares import PositionShares
from repro.core.utility_table import UtilityTable


@dataclass
class UtilityModel:
    """Everything the load shedder needs, frozen after training."""

    table: UtilityTable
    shares: PositionShares
    reference_size: int
    bin_size: int = 1
    windows_trained: int = 0
    matches_trained: int = 0

    def utility(self, type_name: str, position: int, window_size: float) -> int:
        """``U(T, P)`` for an event at ``position`` of a window predicted
        to hold ``window_size`` events."""
        return self.table.utility(type_name, position, window_size)

    def whole_window_cdt(self) -> CDT:
        """CDT over the complete reference window (``ρ = 1``)."""
        return build_cdt(self.table, self.shares)

    def partition_cdts(self, plan: PartitionPlan) -> List[CDT]:
        """One CDT per partition of ``plan``."""
        return build_partition_cdts(self.table, self.shares, plan)

    def fingerprint(self) -> str:
        """Short content hash of the model's decision-relevant state.

        Two models with equal fingerprints make identical shedding
        decisions; the cluster coordinator uses this to verify that a
        broadcast hot swap actually landed on every shard.
        """
        payload = repr(
            (
                sorted(self.table.type_ids.items()),
                self.table.as_matrix(),
                self.reference_size,
                self.bin_size,
            )
        )
        return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:12]

    def __repr__(self) -> str:
        return (
            f"UtilityModel(N={self.reference_size}, bs={self.bin_size}, "
            f"windows={self.windows_trained}, matches={self.matches_trained})"
        )


@dataclass
class _WindowRecord:
    """Compact training record of one completed window."""

    size: int
    event_positions: List[Tuple[str, int]]  # (type, window position), all events
    match_positions: List[Tuple[str, int]]  # (type, window position), contributors


class ModelBuilder:
    """Collects statistics from completed windows and builds the model.

    Use as an operator window listener::

        builder = ModelBuilder(bin_size=1)
        operator.add_window_listener(builder.observe)
        operator.detect_all(training_stream)
        model = builder.build()

    ``reference_size`` may be pinned up-front (count-based windows);
    otherwise the builder buffers compact per-window records and derives
    ``N`` as the average seen window size at :meth:`build` time.
    """

    def __init__(
        self,
        bin_size: int = 1,
        reference_size: Optional[int] = None,
        max_records: int = 100_000,
    ) -> None:
        if bin_size <= 0:
            raise ValueError("bin size must be positive")
        if reference_size is not None and reference_size <= 0:
            raise ValueError("reference size must be positive")
        self.bin_size = bin_size
        self.pinned_reference_size = reference_size
        self.max_records = max_records
        self._records: List[_WindowRecord] = []
        self._windows_seen = 0
        self._matches_seen = 0

    # ------------------------------------------------------------------
    # observation (operator listener)
    # ------------------------------------------------------------------
    def observe(self, window: Window, matches: Sequence[Match]) -> None:
        """Record one completed window and the matches found in it.

        Truncated windows (end-of-stream flushes) are skipped: their
        partial sizes would skew the reference window size and their
        position statistics are incomplete.
        """
        if window.size == 0 or window.truncated:
            return
        event_positions = [
            (event.event_type, pos) for pos, event in enumerate(window.events)
        ]
        match_positions: List[Tuple[str, int]] = []
        for match in matches:
            for pos, event in match:
                match_positions.append((event.event_type, pos))
        record = _WindowRecord(window.size, event_positions, match_positions)
        if len(self._records) >= self.max_records:
            # ring behaviour: oldest training data ages out
            self._records.pop(0)
        self._records.append(record)
        self._windows_seen += 1
        self._matches_seen += len(matches)

    @property
    def windows_seen(self) -> int:
        """Completed windows observed so far."""
        return self._windows_seen

    @property
    def matches_seen(self) -> int:
        """Matches observed so far."""
        return self._matches_seen

    def reset(self) -> None:
        """Discard all collected statistics (model retraining, §3.6)."""
        self._records.clear()
        self._windows_seen = 0
        self._matches_seen = 0

    # ------------------------------------------------------------------
    # building
    # ------------------------------------------------------------------
    def average_window_size(self) -> float:
        """Mean size of the observed windows (0.0 when none)."""
        if not self._records:
            return 0.0
        return sum(r.size for r in self._records) / len(self._records)

    def build(self) -> UtilityModel:
        """Produce a :class:`UtilityModel` from the collected statistics.

        Raises ``ValueError`` when no window has been observed.
        """
        if not self._records:
            raise ValueError("cannot build a model from zero observed windows")
        reference_size = self.pinned_reference_size
        if reference_size is None:
            reference_size = max(1, round(self.average_window_size()))

        type_ids: Dict[str, int] = {}
        for record in self._records:
            for type_name, _pos in record.event_positions:
                if type_name not in type_ids:
                    type_ids[type_name] = len(type_ids)

        shares = PositionShares(type_ids, reference_size, self.bin_size)
        contribution: Dict[str, Dict[int, float]] = {}
        for record in self._records:
            mapped = [
                (
                    type_name,
                    scaling.reference_position(pos, record.size, reference_size),
                )
                for type_name, pos in record.event_positions
            ]
            shares.observe_window(mapped)
            for type_name, pos in record.match_positions:
                ref_pos = scaling.reference_position(pos, record.size, reference_size)
                bin_index = scaling.bin_of_reference_position(
                    ref_pos, reference_size, self.bin_size
                )
                per_bin = contribution.setdefault(type_name, {})
                per_bin[bin_index] = per_bin.get(bin_index, 0.0) + 1.0

        table = UtilityTable.from_counts(
            contribution, type_ids, reference_size, self.bin_size
        )
        return UtilityModel(
            table=table,
            shares=shares,
            reference_size=reference_size,
            bin_size=self.bin_size,
            windows_trained=len(self._records),
            matches_trained=self._matches_seen,
        )

"""Saving and loading trained utility models.

In a production deployment the model is trained continuously but
shipped to operators periodically (paper §3.1: model building is not
time-critical and can run out-of-band).  This module serialises a
:class:`~repro.core.model.UtilityModel` to a single JSON document so a
trained model can be persisted, versioned and loaded into a fresh
shedder without retraining.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.core.model import UtilityModel
from repro.core.position_shares import PositionShares
from repro.core.utility_table import UtilityTable

FORMAT_VERSION = 1


def model_to_dict(model: UtilityModel) -> dict:
    """Serialisable representation of ``model``."""
    type_names = sorted(model.table.type_ids, key=model.table.type_ids.get)
    return {
        "format_version": FORMAT_VERSION,
        "reference_size": model.reference_size,
        "bin_size": model.bin_size,
        "windows_trained": model.windows_trained,
        "matches_trained": model.matches_trained,
        "type_names": type_names,
        "utility_matrix": model.table.as_matrix(),
        "share_matrix": [
            [model.shares.share(name, b) for b in range(model.shares.bins)]
            for name in type_names
        ],
    }


def model_from_dict(payload: dict) -> UtilityModel:
    """Rebuild a model from :func:`model_to_dict` output."""
    version = payload.get("format_version")
    if version != FORMAT_VERSION:
        raise ValueError(f"unsupported model format version {version!r}")
    type_names = payload["type_names"]
    reference_size = payload["reference_size"]
    bin_size = payload["bin_size"]
    table = UtilityTable.from_matrix(
        payload["utility_matrix"], type_names, bin_size=bin_size
    )
    shares = PositionShares(table.type_ids, reference_size, bin_size)
    # restore shares as one pseudo-observation carrying the exact means
    shares._windows_observed = 1  # noqa: SLF001 - controlled rehydration
    for row_index, row in enumerate(payload["share_matrix"]):
        if len(row) != shares.bins:
            raise ValueError("share matrix does not match the bin count")
        shares._counts[row_index] = [float(v) for v in row]  # noqa: SLF001
    return UtilityModel(
        table=table,
        shares=shares,
        reference_size=reference_size,
        bin_size=bin_size,
        windows_trained=payload.get("windows_trained", 0),
        matches_trained=payload.get("matches_trained", 0),
    )


def save_model(model: UtilityModel, path: Union[str, Path]) -> None:
    """Write ``model`` to ``path`` as JSON."""
    Path(path).write_text(json.dumps(model_to_dict(model), indent=1))


def load_model(path: Union[str, Path]) -> UtilityModel:
    """Read a model previously written by :func:`save_model`."""
    return model_from_dict(json.loads(Path(path).read_text()))

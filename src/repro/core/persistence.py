"""Saving and loading trained utility models and runtime state.

In a production deployment the model is trained continuously but
shipped to operators periodically (paper §3.1: model building is not
time-critical and can run out-of-band).  This module serialises a
:class:`~repro.core.model.UtilityModel` to a single JSON document so a
trained model can be persisted, versioned and loaded into a fresh
shedder without retraining.

Beyond models, the elastic cluster (``repro.cluster``) needs the rest
of a shard's working state to survive a worker crash: per-shard window
buffers, the shedder's counters and drop command, and (for incremental
deployments) the matcher's partial-match progress.  The serializers
here are the shared vocabulary of that checkpoint format -- every
payload carries a ``format_version`` and every loader validates it, so
a stale or foreign file fails loudly instead of resuming from garbage.

:func:`write_json_atomic` is the durability primitive: write to a
sibling temp file, then ``os.replace`` -- a reader (or a respawned
worker) only ever sees the previous complete checkpoint or the new
complete checkpoint, never a torn write.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.cep.events import Event
from repro.cep.patterns.incremental import IncrementalWindowMatcher
from repro.cep.windows import Window
from repro.core.model import UtilityModel
from repro.core.position_shares import PositionShares
from repro.core.utility_table import UtilityTable
from repro.shedding.base import DropCommand, LoadShedder

FORMAT_VERSION = 1

#: Version of the runtime-state (event/window/shedder/matcher/checkpoint)
#: payloads.  Independent of the model format: models are long-lived
#: artifacts, checkpoints are crash-recovery scratch.
STATE_FORMAT_VERSION = 1


def _require_version(
    payload: Mapping[str, Any], expected: int, what: str
) -> None:
    """Validate a payload's ``format_version`` with a clear error."""
    if not isinstance(payload, Mapping):
        raise ValueError(f"{what} payload must be a mapping, got {payload!r}")
    if "format_version" not in payload:
        raise ValueError(
            f"{what} payload has no format_version field -- not a "
            f"persisted {what} (or written by an incompatible tool)"
        )
    version = payload["format_version"]
    if version != expected:
        raise ValueError(
            f"unsupported {what} format version {version!r} "
            f"(this build reads version {expected})"
        )


def model_to_dict(model: UtilityModel) -> Dict[str, Any]:
    """Serialisable representation of ``model``."""
    type_names = sorted(model.table.type_ids, key=model.table.type_ids.get)
    return {
        "format_version": FORMAT_VERSION,
        "reference_size": model.reference_size,
        "bin_size": model.bin_size,
        "windows_trained": model.windows_trained,
        "matches_trained": model.matches_trained,
        "type_names": type_names,
        "utility_matrix": model.table.as_matrix(),
        "share_matrix": [
            [model.shares.share(name, b) for b in range(model.shares.bins)]
            for name in type_names
        ],
    }


def model_from_dict(payload: Mapping[str, Any]) -> UtilityModel:
    """Rebuild a model from :func:`model_to_dict` output."""
    _require_version(payload, FORMAT_VERSION, "model")
    type_names = payload["type_names"]
    reference_size = payload["reference_size"]
    bin_size = payload["bin_size"]
    table = UtilityTable.from_matrix(
        payload["utility_matrix"], type_names, bin_size=bin_size
    )
    shares = PositionShares(table.type_ids, reference_size, bin_size)
    # restore shares as one pseudo-observation carrying the exact means
    shares._windows_observed = 1  # noqa: SLF001 - controlled rehydration
    for row_index, row in enumerate(payload["share_matrix"]):
        if len(row) != shares.bins:
            raise ValueError("share matrix does not match the bin count")
        shares._counts[row_index] = [float(v) for v in row]  # noqa: SLF001
    return UtilityModel(
        table=table,
        shares=shares,
        reference_size=reference_size,
        bin_size=bin_size,
        windows_trained=payload.get("windows_trained", 0),
        matches_trained=payload.get("matches_trained", 0),
    )


def save_model(model: UtilityModel, path: Union[str, Path]) -> None:
    """Write ``model`` to ``path`` as JSON (atomically)."""
    write_json_atomic(model_to_dict(model), path, indent=1)


def load_model(path: Union[str, Path]) -> UtilityModel:
    """Read a model previously written by :func:`save_model`."""
    return model_from_dict(json.loads(Path(path).read_text()))


# ----------------------------------------------------------------------
# events and windows (the cluster's per-shard window buffers)
# ----------------------------------------------------------------------
def event_to_dict(event: Event) -> Dict[str, Any]:
    """Serialisable representation of one :class:`Event`."""
    return {
        "event_type": event.event_type,
        "seq": event.seq,
        "timestamp": event.timestamp,
        "attrs": dict(event.attrs),
    }


def event_from_dict(payload: Mapping[str, Any]) -> Event:
    """Rebuild an :class:`Event` from :func:`event_to_dict` output."""
    try:
        return Event(
            event_type=payload["event_type"],
            seq=int(payload["seq"]),
            timestamp=float(payload["timestamp"]),
            attrs=dict(payload.get("attrs", {})),
        )
    except (KeyError, TypeError) as exc:
        raise ValueError(f"malformed event payload: {payload!r}") from exc


def window_to_dict(window: Window) -> Dict[str, Any]:
    """Serialisable representation of a complete :class:`Window`.

    The events travel in arrival order -- position ``i`` in the list is
    the ``P`` of ``UT(T, P)`` -- so a restored window sheds and matches
    exactly like the original.
    """
    return {
        "format_version": STATE_FORMAT_VERSION,
        "window_id": window.window_id,
        "open_time": window.open_time,
        "close_time": window.close_time,
        "truncated": window.truncated,
        "events": [event_to_dict(event) for event in window.events],
    }


def window_from_dict(payload: Mapping[str, Any]) -> Window:
    """Rebuild a :class:`Window` from :func:`window_to_dict` output."""
    _require_version(payload, STATE_FORMAT_VERSION, "window")
    return Window(
        window_id=int(payload["window_id"]),
        events=[event_from_dict(e) for e in payload["events"]],
        open_time=float(payload["open_time"]),
        close_time=float(payload["close_time"]),
        truncated=bool(payload["truncated"]),
    )


# ----------------------------------------------------------------------
# shedder state (counters + drop command + activation)
# ----------------------------------------------------------------------
def shedder_state_to_dict(shedder: LoadShedder) -> Dict[str, Any]:
    """The shedder's replayable runtime state.

    Covers exactly what a respawned worker cannot reconstruct from the
    model broadcast alone: the cumulative decision/drop counters and
    the drop command in force (with its activation flag).  The model
    itself is *not* embedded -- it is coordinator-owned and re-shipped
    on recovery, so checkpoints stay small.
    """
    command = getattr(shedder, "_command", None)
    return {
        "format_version": STATE_FORMAT_VERSION,
        "decisions": shedder.decisions,
        "drops": shedder.drops,
        "active": shedder.active,
        "command": None
        if command is None
        else {
            "x": command.x,
            "partition_count": command.partition_count,
            "partition_size": command.partition_size,
        },
    }


def apply_shedder_state(
    shedder: LoadShedder, payload: Mapping[str, Any]
) -> None:
    """Restore :func:`shedder_state_to_dict` output onto ``shedder``."""
    _require_version(payload, STATE_FORMAT_VERSION, "shedder state")
    command = payload.get("command")
    if command is not None:
        shedder.on_drop_command(
            DropCommand(
                x=float(command["x"]),
                partition_count=int(command["partition_count"]),
                partition_size=float(command["partition_size"]),
            )
        )
    if payload.get("active"):
        shedder.activate()
    else:
        shedder.deactivate()
    shedder.decisions = int(payload["decisions"])
    shedder.drops = int(payload["drops"])


# ----------------------------------------------------------------------
# matcher partial-match state (incremental evaluation)
# ----------------------------------------------------------------------
def _positioned_to_list(
    pairs: List[Tuple[int, Event]]
) -> List[List[Any]]:
    return [[position, event_to_dict(event)] for position, event in pairs]


def _positioned_from_list(
    payload: List[Any],
) -> List[Tuple[int, Event]]:
    return [
        (int(position), event_from_dict(event)) for position, event in payload
    ]


def matcher_state_to_dict(
    matcher: IncrementalWindowMatcher,
) -> Dict[str, Any]:
    """Serialise an incremental matcher's partial-match progress.

    The batch :class:`~repro.cep.patterns.matcher.PatternMatcher` is
    stateless across windows (each window is evaluated whole), but the
    event-at-a-time :class:`IncrementalWindowMatcher` carries a live
    run: which step the automaton has reached, the events already
    bound, and the positions consumed by earlier matches.  This
    captures that run exactly, so a checkpointed window can resume
    matching mid-window after a crash.
    """
    return {
        "format_version": STATE_FORMAT_VERSION,
        "pattern": matcher.pattern.name,
        "max_matches": matcher.max_matches,
        "matches_found": matcher._matches_found,  # noqa: SLF001
        "consumed": sorted(matcher._consumed),  # noqa: SLF001
        "step_index": matcher._step_index,  # noqa: SLF001
        "bound": _positioned_to_list(matcher._bound),  # noqa: SLF001
        "any_used_specs": sorted(matcher._any_used_specs),  # noqa: SLF001
        "any_taken": _positioned_to_list(matcher._any_taken),  # noqa: SLF001
        "kleene_taken": _positioned_to_list(
            matcher._kleene_taken  # noqa: SLF001
        ),
    }


def apply_matcher_state(
    matcher: IncrementalWindowMatcher, payload: Mapping[str, Any]
) -> None:
    """Restore :func:`matcher_state_to_dict` output onto ``matcher``.

    The matcher must be built for the same pattern; resuming a run
    against a different pattern would silently mis-match, so the
    pattern name is validated first.
    """
    _require_version(payload, STATE_FORMAT_VERSION, "matcher state")
    if payload["pattern"] != matcher.pattern.name:
        raise ValueError(
            f"matcher state is for pattern {payload['pattern']!r}, "
            f"not {matcher.pattern.name!r}"
        )
    matcher._matches_found = int(payload["matches_found"])  # noqa: SLF001
    matcher._consumed = set(payload["consumed"])  # noqa: SLF001
    matcher._step_index = int(payload["step_index"])  # noqa: SLF001
    matcher._bound = _positioned_from_list(payload["bound"])  # noqa: SLF001
    matcher._any_used_specs = set(  # noqa: SLF001
        payload["any_used_specs"]
    )
    matcher._any_taken = _positioned_from_list(  # noqa: SLF001
        payload["any_taken"]
    )
    matcher._kleene_taken = _positioned_from_list(  # noqa: SLF001
        payload["kleene_taken"]
    )


# ----------------------------------------------------------------------
# atomic JSON files (the checkpoint durability primitive)
# ----------------------------------------------------------------------
def write_json_atomic(
    payload: Mapping[str, Any],
    path: Union[str, Path],
    indent: Optional[int] = None,
) -> int:
    """Write ``payload`` as JSON via temp-file + ``os.replace``.

    Returns the number of bytes written.  A concurrent reader -- or a
    worker respawned after a kill -9 mid-write -- only ever observes
    the previous complete file or the new complete file; the temp file
    of a torn write is ignored by every loader.
    """
    target = Path(path)
    text = json.dumps(payload, indent=indent, sort_keys=True)
    data = text.encode("utf-8")
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_bytes(data)
    os.replace(tmp, target)
    return len(data)


def read_json_checkpoint(
    path: Union[str, Path], kind: str
) -> Optional[Dict[str, Any]]:
    """Load a checkpoint written by :func:`write_json_atomic`.

    Returns ``None`` when no checkpoint exists yet (first boot of a
    shard).  Raises :class:`ValueError` on version or ``kind``
    mismatch -- a checkpoint of the wrong kind must never be resumed
    from silently.
    """
    target = Path(path)
    if not target.exists():
        return None
    payload = json.loads(target.read_text())
    _require_version(payload, STATE_FORMAT_VERSION, kind)
    found = payload.get("kind")
    if found != kind:
        raise ValueError(
            f"checkpoint at {target} has kind {found!r}, expected {kind!r}"
        )
    return payload

"""Position scaling: mapping window positions onto the utility table.

The utility table has a fixed number of *reference* positions ``N``
(the average seen window size), grouped into bins of ``bs`` neighbouring
positions (paper §3.6).  Incoming windows may be larger or smaller than
``N``; an event at position ``P`` of a window of size ``ws`` is mapped
to reference positions via the scaling factor ``sf = ws / N``:

- ``ws > N`` (scale down): several window positions share one reference
  position;
- ``ws < N`` (scale up): one window position covers several reference
  positions, and the event's utility is the *average* of the covered
  cells.

All of that reduces to: position ``P`` covers the reference interval
``[P/sf, (P+1)/sf)``, which in turn covers a contiguous range of bins.
"""

from __future__ import annotations

import math
from typing import List, Sequence, Tuple


def bin_count(reference_size: int, bin_size: int) -> int:
    """Number of bins covering ``reference_size`` positions."""
    if reference_size <= 0:
        raise ValueError("reference size must be positive")
    if bin_size <= 0:
        raise ValueError("bin size must be positive")
    return math.ceil(reference_size / bin_size)


def scale_position(
    position: int, window_size: float, reference_size: int
) -> Tuple[float, float]:
    """Reference-position interval ``[lo, hi)`` covered by ``position``.

    ``window_size`` is the (possibly predicted, hence float) size of the
    incoming window.  With ``window_size <= 0`` the window size is
    unknown; the position is passed through unscaled and clamped.
    """
    if position < 0:
        raise ValueError("position must be non-negative")
    if window_size <= 0.0:
        lo = float(min(position, reference_size - 1))
        return lo, lo + 1.0
    factor = reference_size / window_size  # = 1 / sf
    lo = position * factor
    hi = (position + 1) * factor
    # clamp into [0, reference_size)
    lo = min(lo, reference_size - 1e-9)
    hi = min(max(hi, lo + 1e-9), float(reference_size))
    return lo, hi


def position_to_bins(
    position: int, window_size: float, reference_size: int, bin_size: int
) -> Tuple[int, int]:
    """Inclusive bin range ``(first_bin, last_bin)`` covered by a position."""
    lo, hi = scale_position(position, window_size, reference_size)
    first = int(lo) // bin_size
    last = int(math.ceil(hi) - 1) // bin_size
    top = bin_count(reference_size, bin_size) - 1
    return min(first, top), min(max(last, first), top)


def bin_of_reference_position(
    reference_position: int, reference_size: int, bin_size: int
) -> int:
    """Bin index of an exact reference position (training-time mapping)."""
    if not 0 <= reference_position < reference_size:
        reference_position = min(max(reference_position, 0), reference_size - 1)
    return reference_position // bin_size


def reference_position(
    position: int, window_size: float, reference_size: int
) -> int:
    """Single representative reference position for ``position``.

    Used at training time, where a point mapping is sufficient (the
    paper maps each window position to one UT position when building
    the model).
    """
    lo, _hi = scale_position(position, window_size, reference_size)
    return min(int(lo), reference_size - 1)


# ----------------------------------------------------------------------
# batch-level scaling (the vectorized shedding kernel's fallback path)
# ----------------------------------------------------------------------
def reference_positions_batch(
    positions: Sequence[int], window_size: float, reference_size: int
) -> List[int]:
    """``int(scale_position(p, ws, N)[0])`` for every position at once.

    One pass with the scaling factor hoisted out of the loop; produces
    exactly the per-position values of the scalar function (used by the
    shedding kernel's partition computation).
    """
    if window_size <= 0.0:
        top = reference_size - 1
        return [position if position < top else top for position in positions]
    factor = reference_size / window_size
    clamp = reference_size - 1e-9
    return [
        int(lo if (lo := position * factor) < clamp else clamp)
        for position in positions
    ]


def positions_to_bins_batch(
    positions: Sequence[int],
    window_size: float,
    reference_size: int,
    bin_size: int,
) -> List[Tuple[int, int]]:
    """Inclusive bin ranges for a batch of positions (one pass).

    Bit-identical to calling :func:`position_to_bins` per position,
    with the scaling factor and clamps hoisted out of the loop.
    """
    top = bin_count(reference_size, bin_size) - 1
    if window_size <= 0.0:
        return [position_to_bins(p, window_size, reference_size, bin_size)
                for p in positions]
    factor = reference_size / window_size
    lo_clamp = reference_size - 1e-9
    hi_clamp = float(reference_size)
    ceil = math.ceil
    out: List[Tuple[int, int]] = []
    for position in positions:
        lo = position * factor
        hi = (position + 1) * factor
        if lo > lo_clamp:
            lo = lo_clamp
        lo_eps = lo + 1e-9
        if hi < lo_eps:
            hi = lo_eps
        if hi > hi_clamp:
            hi = hi_clamp
        first = int(lo) // bin_size
        last = int(ceil(hi) - 1) // bin_size
        out.append((min(first, top), min(max(last, first), top)))
    return out


def partitions_batch(
    reference_positions: Sequence[int],
    partition_size: float,
    partition_count: int,
) -> List[int]:
    """Partition index of every (already scaled) reference position.

    Mirrors the scalar shedder's ``int(ref_pos / psize)`` with the
    clamp into ``[0, partition_count)``.
    """
    top = partition_count - 1
    return [
        part if (part := int(ref_pos / partition_size)) <= top else top
        for ref_pos in reference_positions
    ]

"""Statistical retraining trigger (the paper's §3.6 future work).

"We can either periodically retrain the model ... or we can use a
statistical approach that triggers the need to retrain the model (we
leave this approach for future work)."  This module implements that
statistical approach.

The detector watches completed windows (the same listener feed the
model builder uses) and maintains, over a sliding window of recent
matches, the *model hit rate*: the fraction of contributing primitive
events whose learned utility is above the low boundary.  When the hit
rate of recent matches drops below ``hit_rate_threshold`` (the learned
utilities no longer describe where contributions happen -- i.e. the
(type, position) distribution drifted), retraining is signalled.

A second, cheaper signal guards against silent drift when matching
*stops* entirely: if the match rate per window collapses relative to
the training period, retraining is also signalled.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional, Sequence

from repro.cep.patterns.matcher import Match
from repro.cep.windows import Window
from repro.core.model import UtilityModel


@dataclass
class DriftStatus:
    """One evaluation of the drift detector."""

    windows_seen: int
    hit_rate: Optional[float]  # None before min_matches matches
    match_rate: Optional[float]
    drifted: bool
    reason: str = ""


class DriftDetector:
    """Signals when the utility model no longer fits the stream.

    Parameters
    ----------
    model:
        The currently deployed model.
    utility_floor:
        A contributing event whose learned utility is above this floor
        counts as a *hit* (the model knew it mattered).
    hit_rate_threshold:
        Signal drift when the recent-match hit rate falls below this.
    match_rate_threshold:
        Signal drift when the matches-per-window rate falls below this
        fraction of the training-time match rate.
    history:
        Number of recent windows considered.
    min_windows:
        Do not judge before this many windows were observed.
    """

    def __init__(
        self,
        model: UtilityModel,
        utility_floor: int = 0,
        hit_rate_threshold: float = 0.6,
        match_rate_threshold: float = 0.3,
        history: int = 50,
        min_windows: int = 20,
    ) -> None:
        if not 0.0 <= hit_rate_threshold <= 1.0:
            raise ValueError("hit_rate_threshold must lie in [0, 1]")
        if history <= 0 or min_windows <= 0:
            raise ValueError("history and min_windows must be positive")
        self.model = model
        self.utility_floor = utility_floor
        self.hit_rate_threshold = hit_rate_threshold
        self.match_rate_threshold = match_rate_threshold
        self.history = history
        self.min_windows = min_windows
        self._window_hits: Deque[tuple] = deque(maxlen=history)  # (hits, total)
        self._window_matches: Deque[int] = deque(maxlen=history)
        self._windows_seen = 0
        # training-time reference: matches per trained window
        if model.windows_trained > 0:
            self.trained_match_rate = model.matches_trained / model.windows_trained
        else:
            self.trained_match_rate = 0.0

    # ------------------------------------------------------------------
    # observation (operator window listener)
    # ------------------------------------------------------------------
    def observe(self, window: Window, matches: Sequence[Match]) -> None:
        """Account one completed window (compatible listener signature)."""
        if window.truncated or window.size == 0:
            return
        self._windows_seen += 1
        self._window_matches.append(len(matches))
        hits = total = 0
        for match in matches:
            for position, event in match:
                total += 1
                utility = self.model.utility(
                    event.event_type, position, float(window.size)
                )
                if utility > self.utility_floor:
                    hits += 1
        if total:
            self._window_hits.append((hits, total))

    # ------------------------------------------------------------------
    # judgement
    # ------------------------------------------------------------------
    def hit_rate(self) -> Optional[float]:
        """Fraction of recent contributing events the model valued."""
        totals = sum(t for _h, t in self._window_hits)
        if totals == 0:
            return None
        return sum(h for h, _t in self._window_hits) / totals

    def match_rate(self) -> Optional[float]:
        """Recent matches per window."""
        if not self._window_matches:
            return None
        return sum(self._window_matches) / len(self._window_matches)

    def check(self) -> DriftStatus:
        """Evaluate the drift signals."""
        hit = self.hit_rate()
        match = self.match_rate()
        if self._windows_seen < self.min_windows:
            return DriftStatus(self._windows_seen, hit, match, False, "warming up")
        if hit is not None and hit < self.hit_rate_threshold:
            return DriftStatus(
                self._windows_seen,
                hit,
                match,
                True,
                f"hit rate {hit:.2f} below {self.hit_rate_threshold:.2f}",
            )
        if (
            match is not None
            and self.trained_match_rate > 0.0
            and match < self.match_rate_threshold * self.trained_match_rate
        ):
            return DriftStatus(
                self._windows_seen,
                hit,
                match,
                True,
                f"match rate {match:.2f} collapsed vs trained "
                f"{self.trained_match_rate:.2f}",
            )
        return DriftStatus(self._windows_seen, hit, match, False, "model fits")

    def rebind(self, model: UtilityModel) -> None:
        """Point the detector at a freshly retrained model and reset."""
        self.model = model
        if model.windows_trained > 0:
            self.trained_match_rate = model.matches_trained / model.windows_trained
        self._window_hits.clear()
        self._window_matches.clear()
        self._windows_seen = 0

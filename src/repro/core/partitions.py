"""Window partitioning for the dropping interval (paper §3.4).

Once the load shedder starts at queue size ``f·qmax``, the headroom
before the latency bound is violated is ``qmax − f·qmax`` events (the
*buffer*).  ``x`` events must therefore be dropped from every stretch
of at most buffer-many events, not merely from every window: a window
larger than the buffer is split into ``ρ = ceil(ws / (qmax − f·qmax))``
equal partitions of size ``psize = ws / ρ``, each with its own CDT and
utility threshold.

Partitions are defined over the *reference* positions of the utility
table (size ``N``); incoming windows of different sizes map onto them
through the usual position scaling.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List


@dataclass(frozen=True)
class PartitionPlan:
    """How a reference window is split into dropping intervals."""

    reference_size: int
    partition_count: int  # ρ
    partition_size: float  # psize, in reference positions

    def partition_of_position(self, reference_position: float) -> int:
        """Partition index of a reference position."""
        if self.partition_count <= 1:
            return 0
        index = int(reference_position / self.partition_size)
        return min(max(index, 0), self.partition_count - 1)

    def partition_of_bin(self, bin_index: int, bin_size: int) -> int:
        """Partition owning a bin (by the bin's centre position)."""
        centre = bin_index * bin_size + bin_size / 2.0
        return self.partition_of_position(centre)

    def bins_of_partition(self, partition: int, bin_size: int, bins: int) -> List[int]:
        """All bin indices owned by ``partition``."""
        return [
            b
            for b in range(bins)
            if self.partition_of_bin(b, bin_size) == partition
        ]


def plan_partitions(
    reference_size: int, qmax: float, f: float
) -> PartitionPlan:
    """Compute ``ρ`` and ``psize`` from the latency-bound headroom.

    Parameters
    ----------
    reference_size:
        Window size ``N`` in events (reference positions).
    qmax:
        Maximum tolerable queue size ``LB / l(p)``.
    f:
        Shedding trigger fraction, ``0 < f < 1``.
    """
    if reference_size <= 0:
        raise ValueError("reference size must be positive")
    if not 0.0 <= f < 1.0:
        raise ValueError("f must lie in [0, 1)")
    buffer = qmax * (1.0 - f)
    if buffer <= 0.0:
        # no headroom at all: every position is its own partition
        count = reference_size
    else:
        count = max(1, math.ceil(reference_size / buffer))
    count = min(count, reference_size)
    return PartitionPlan(
        reference_size=reference_size,
        partition_count=count,
        partition_size=reference_size / count,
    )

"""Choosing an appropriate ``f`` value (paper §3.4).

A high ``f`` avoids shedding on short bursts but shrinks the buffer
``qmax − f·qmax`` and hence the partition size; too-small partitions
may contain only high-utility events, forcing quality-damaging drops.

The paper proposes clustering the utilities in ``UT`` into importance
classes and choosing the largest ``f`` whose induced partitioning still
guarantees at least ``x`` *low-class* events per partition.  This
module implements that procedure with a 1-D k-means over the utility
values present in the table, weighted by their position shares.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.core.cdt import build_partition_cdts
from repro.core.model import UtilityModel
from repro.core.partitions import plan_partitions

DEFAULT_CANDIDATES: Tuple[float, ...] = (0.95, 0.9, 0.85, 0.8, 0.7, 0.6, 0.5)


def cluster_utilities_1d(
    values: Sequence[float],
    weights: Optional[Sequence[float]] = None,
    classes: int = 3,
    iterations: int = 50,
) -> List[int]:
    """Weighted 1-D k-means; returns the cluster index of each value.

    Clusters are ordered by centre, so index 0 is the lowest-utility
    class.  Degenerate inputs (fewer distinct values than classes)
    yield fewer effective clusters.
    """
    if not values:
        return []
    if classes <= 0:
        raise ValueError("need at least one class")
    if weights is None:
        weights = [1.0] * len(values)
    if len(weights) != len(values):
        raise ValueError("weights must align with values")

    distinct = sorted(set(values))
    k = min(classes, len(distinct))
    # seed centres evenly over the distinct values
    centres = [distinct[int(i * (len(distinct) - 1) / max(k - 1, 1))] for i in range(k)]

    assignment = [0] * len(values)
    for _round in range(iterations):
        changed = False
        for i, value in enumerate(values):
            nearest = min(range(k), key=lambda c: abs(value - centres[c]))
            if nearest != assignment[i]:
                assignment[i] = nearest
                changed = True
        for c in range(k):
            total_weight = sum(
                weights[i] for i in range(len(values)) if assignment[i] == c
            )
            if total_weight > 0.0:
                centres[c] = (
                    sum(
                        values[i] * weights[i]
                        for i in range(len(values))
                        if assignment[i] == c
                    )
                    / total_weight
                )
        if not changed:
            break
    # re-order clusters by centre so index 0 = lowest utility
    order = sorted(range(k), key=lambda c: centres[c])
    rank = {cluster: index for index, cluster in enumerate(order)}
    return [rank[a] for a in assignment]


def low_class_boundary(model: UtilityModel, classes: int = 3) -> int:
    """Largest utility value belonging to the lowest importance class.

    Returns -1 when the table has no distinguishable low class (every
    cell carries the same positive utility): dropping anything then
    costs quality, and no partitioning can guarantee cheap events.
    """
    values: List[float] = []
    weights: List[float] = []
    for type_name in model.table.type_ids:
        for bin_index in range(model.table.bins):
            values.append(float(model.table.cell(type_name, bin_index)))
            weights.append(model.shares.share(type_name, bin_index))
    if not values:
        return 0
    distinct = set(values)
    if len(distinct) == 1:
        only = distinct.pop()
        return 0 if only == 0.0 else -1
    assignment = cluster_utilities_1d(values, weights, classes)
    low_values = [v for v, a in zip(values, assignment) if a == 0]
    return int(max(low_values)) if low_values else 0


def select_f(
    model: UtilityModel,
    qmax: float,
    expected_x_per_second: float,
    input_rate: float,
    candidates: Sequence[float] = DEFAULT_CANDIDATES,
    classes: int = 3,
) -> float:
    """Largest candidate ``f`` keeping ≥ ``x`` low-class events/partition.

    Parameters
    ----------
    model:
        Trained utility model.
    qmax:
        ``LB / l(p)`` -- maximum tolerable queue size.
    expected_x_per_second:
        Anticipated surplus event rate ``δ = R − th`` the shedder will
        have to remove (events/second).
    input_rate:
        Anticipated input rate ``R`` (events/second), to convert the
        partition size to seconds.
    candidates:
        ``f`` values to try, best (largest) first.

    Falls back to the smallest candidate when none satisfies the
    low-class criterion.
    """
    if qmax <= 0.0:
        raise ValueError("qmax must be positive")
    if input_rate <= 0.0:
        raise ValueError("input rate must be positive")
    boundary = low_class_boundary(model, classes)
    ordered = sorted(candidates, reverse=True)
    for f in ordered:
        plan = plan_partitions(model.reference_size, qmax, f)
        x = expected_x_per_second * plan.partition_size / input_rate
        if x <= 0.0:
            return f
        if boundary < 0:
            continue  # no low-utility class exists at any partitioning
        cdts = build_partition_cdts(model.table, model.shares, plan)
        if all(cdt.value(boundary) >= x for cdt in cdts):
            return f
    return ordered[-1]


def effective_f(
    model: Optional[UtilityModel],
    latency_bound: float,
    configured_f: Optional[float],
    expected_processing_latency: Optional[float],
    expected_input_rate: Optional[float],
) -> float:
    """The configured ``f``, or the auto-selected one when unset.

    Single home of the guard/selection logic shared by the deprecated
    :class:`~repro.core.espice.ESpice` facade and the
    :mod:`repro.pipeline` builder: a configured ``f`` wins outright;
    automatic selection (paper §3.4) needs a trained model plus
    expected processing latency / input rate hints and derives
    ``qmax`` and the surplus rate from them before delegating to
    :func:`select_f`.
    """
    if configured_f is not None:
        return configured_f
    if expected_processing_latency is None or expected_input_rate is None:
        raise ValueError("automatic f selection needs fixed latency and rate hints")
    if model is None:
        raise ValueError("automatic f selection needs a trained model")
    if expected_processing_latency <= 0.0:
        raise ValueError("processing latency must be positive to select f")
    qmax = latency_bound / expected_processing_latency
    throughput = 1.0 / expected_processing_latency
    surplus = max(0.0, expected_input_rate - throughput)
    return select_f(model, qmax, surplus, expected_input_rate)

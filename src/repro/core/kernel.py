"""Vectorized shedding kernel: batch drop-mask resolution (paper §3.5).

The per-event shedding decision is O(1), but in the interpreted scalar
path each decision still pays a method-call chain, attribute chasing
and branchy float arithmetic.  This module flattens the decision's
state -- the utility table rows and the per-partition thresholds --
into contiguous arrays once, so a *batch* of (type, position) pairs
resolves to a boolean drop mask in a single pass:

    drop[i]  ⇔  UT(T_i, scaled(P_i)) ≤ uth(partition(scaled(P_i)))

Two interchangeable backends produce **bit-for-bit identical masks**
(property-tested against the scalar :meth:`ESpiceShedder._decide`):

- ``numpy``: the whole batch is resolved with vectorized array ops;
  auto-selected when NumPy is importable.
- ``fallback``: pure stdlib -- the flattened rows live in one Python
  list and a tight loop with hoisted locals resolves the batch.  No
  third-party dependency, so ``install_requires`` stays empty.

Select explicitly via the ``backend=`` argument or the
``REPRO_KERNEL_BACKEND`` environment variable (``numpy`` |
``fallback``); the default is auto-detection.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Sequence

from repro.core import scaling

try:  # pragma: no cover - exercised via both CI legs
    import numpy as _np

    HAVE_NUMPY = True
except ImportError:  # pragma: no cover
    _np = None
    HAVE_NUMPY = False

#: Environment variable that forces a backend (``numpy`` | ``fallback``).
BACKEND_ENV = "REPRO_KERNEL_BACKEND"

#: Below this batch size the numpy backend routes to the stdlib loop:
#: array construction overhead dominates tiny batches (the two paths
#: are bit-identical, so this is purely a constant-factor choice;
#: measured crossover on CPython 3.11 is ~32-64 pairs).
NUMPY_MIN_BATCH = 32


def default_backend() -> str:
    """The backend a kernel built without ``backend=`` will use."""
    forced = os.environ.get(BACKEND_ENV, "").strip().lower()
    if forced in ("numpy", "fallback"):
        if forced == "numpy" and not HAVE_NUMPY:
            raise RuntimeError(
                f"{BACKEND_ENV}=numpy requested but numpy is not importable"
            )
        return forced
    return "numpy" if HAVE_NUMPY else "fallback"


class SheddingKernel:
    """Flattened utility rows + thresholds with batched drop resolution.

    Parameters
    ----------
    rows:
        The utility matrix, one row of bin utilities per type (the
        order of ``type_ids``).
    type_ids:
        Mapping from type name to row index (``UtilityTable.type_ids``).
    reference / bin_size:
        The *model's* reference window size and bin size -- used for
        the fast scale-down path and the partition computation, exactly
        like the scalar shedder's cached ``_reference``/``_bin_size``.
    table_reference / table_bin_size:
        The *table's* own reference/bin parameters, used by the precise
        scale-up path (they normally equal the model's, but the scalar
        path reads them off the table, so the kernel mirrors that).
    backend:
        ``"numpy"`` | ``"fallback"`` | ``None`` (auto-detect).

    Thresholds arrive separately via :meth:`set_thresholds` (they change
    with every drop command; the flattened rows only change on a model
    swap, which rebuilds the kernel).
    """

    __slots__ = (
        "backend",
        "bins",
        "bin_size",
        "reference",
        "table_reference",
        "table_bin_size",
        "table_bins",
        "partition_size",
        "partition_count",
        "_type_rows",
        "_unknown_row",
        "_flat",
        "_np_rows",
        "_np_cumrows",
        "_thresholds",
        "_np_thresholds",
    )

    def __init__(
        self,
        rows: Sequence[Sequence[int]],
        type_ids: Dict[str, int],
        reference: int,
        bin_size: int,
        table_reference: Optional[int] = None,
        table_bin_size: Optional[int] = None,
        backend: Optional[str] = None,
    ) -> None:
        if backend is None:
            backend = default_backend()
        if backend not in ("numpy", "fallback"):
            raise ValueError(f"unknown kernel backend {backend!r}")
        if backend == "numpy" and not HAVE_NUMPY:
            raise RuntimeError("numpy backend requested but numpy is missing")
        self.backend = backend
        self.reference = reference
        self.bin_size = bin_size
        self.table_reference = (
            table_reference if table_reference is not None else reference
        )
        self.table_bin_size = (
            table_bin_size if table_bin_size is not None else bin_size
        )
        self.bins = len(rows[0]) if rows else 0
        self.table_bins = scaling.bin_count(self.table_reference, self.table_bin_size)
        self.partition_size = float(reference)
        self.partition_count = 0
        # type name -> row index; unknown types resolve to an all-zero
        # row appended after the real ones (utility 0: safe to drop
        # first, same as the scalar path's "no evidence" rule)
        self._type_rows = dict(type_ids)
        self._unknown_row = len(rows)
        flat: List[int] = []
        for row in rows:
            flat.extend(int(v) for v in row)
        flat.extend(0 for _ in range(self.bins))  # the unknown-type row
        self._flat = flat
        self._thresholds: List[int] = []
        self._np_thresholds = None
        if backend == "numpy":
            matrix = _np.zeros((len(rows) + 1, self.bins), dtype=_np.int64)
            if rows:
                matrix[:-1, :] = _np.asarray(rows, dtype=_np.int64)
            self._np_rows = matrix
            # per-row prefix sums for the scale-up averaging path:
            # sum(row[first..last]) = cum[row, last+1] - cum[row, first]
            cum = _np.zeros((len(rows) + 1, self.bins + 1), dtype=_np.int64)
            _np.cumsum(matrix, axis=1, out=cum[:, 1:])
            self._np_cumrows = cum
        else:
            self._np_rows = None
            self._np_cumrows = None

    # ------------------------------------------------------------------
    def set_thresholds(
        self, thresholds: Sequence[int], partition_size: float
    ) -> None:
        """Install the per-partition ``uth`` array of the current drop
        command (cheap: thresholds change per command, rows do not)."""
        self._thresholds = [int(t) for t in thresholds]
        self.partition_count = len(self._thresholds)
        self.partition_size = float(partition_size)
        if self.backend == "numpy":
            self._np_thresholds = _np.asarray(self._thresholds, dtype=_np.int64)

    @property
    def thresholds(self) -> List[int]:
        """Current per-partition thresholds (diagnostics, tests)."""
        return list(self._thresholds)

    def row_index(self, type_name: str) -> int:
        """Row index of ``type_name`` (the unknown row if unseen)."""
        return self._type_rows.get(type_name, self._unknown_row)

    # ------------------------------------------------------------------
    def decide(
        self,
        events: Sequence,
        positions: Sequence[int],
        predicted_ws: float,
    ) -> List[bool]:
        """Drop mask for a batch of (event, position) pairs.

        ``events[i]`` sits at (unshedded) window position
        ``positions[i]`` of a window predicted to span ``predicted_ws``
        events -- the same contract as
        :meth:`repro.shedding.base.LoadShedder.should_drop`, batched.
        The mask is bit-identical to calling the scalar decision per
        pair.
        """
        n = len(positions)
        if n == 0:
            return []
        if not self._thresholds:
            return [False] * n
        reference = self.reference
        window_size = predicted_ws if predicted_ws > 0 else reference
        if self.backend == "numpy" and n >= NUMPY_MIN_BATCH:
            return self._decide_numpy(events, positions, window_size)
        return self._decide_fallback(events, positions, window_size)

    # ------------------------------------------------------------------
    # numpy backend
    # ------------------------------------------------------------------
    def _decide_numpy(
        self, events: Sequence, positions: Sequence[int], window_size: float
    ) -> List[bool]:
        np = _np
        reference = self.reference
        row_of = self._type_rows
        unknown = self._unknown_row
        rows = np.fromiter(
            (row_of.get(e.event_type, unknown) for e in events),
            dtype=np.int64,
            count=len(positions),
        )
        pos = np.asarray(positions, dtype=np.int64)

        if window_size >= reference - 1.0:
            if window_size <= reference + 1.0:
                # identity/near-identity: clamp into the reference range
                ref_pos = np.minimum(pos, reference - 1)
            else:
                # scale down: several window positions share a cell
                ref_pos = (pos * reference / window_size).astype(np.int64)
                np.minimum(ref_pos, reference - 1, out=ref_pos)
            utility = self._np_rows[rows, ref_pos // self.bin_size]
        else:
            # scale up (ws < N): a position covers several cells whose
            # utilities are averaged (paper §3.6) -- vectorized version
            # of UtilityTable.utility + scaling.scale_position
            t_ref = self.table_reference
            t_bs = self.table_bin_size
            factor = t_ref / window_size
            lo = pos * factor
            np.minimum(lo, t_ref - 1e-9, out=lo)
            hi = (pos + 1) * factor
            np.maximum(hi, lo + 1e-9, out=hi)
            np.minimum(hi, float(t_ref), out=hi)
            first = lo.astype(np.int64) // t_bs
            last = (np.ceil(hi).astype(np.int64) - 1) // t_bs
            top = self.table_bins - 1
            np.minimum(first, top, out=first)
            np.maximum(last, first, out=last)
            np.minimum(last, top, out=last)
            count = last - first + 1
            cum = self._np_cumrows
            span_sum = cum[rows, last + 1] - cum[rows, first]
            utility = np.where(
                count == 1,
                self._np_rows[rows, first],
                np.rint(span_sum / count).astype(np.int64),
            )
            # the partition uses the *model* reference, like the scalar path
            m_factor = reference / window_size
            m_lo = pos * m_factor
            np.minimum(m_lo, reference - 1e-9, out=m_lo)
            ref_pos = m_lo.astype(np.int64)

        partition = (ref_pos / self.partition_size).astype(np.int64)
        np.minimum(partition, self.partition_count - 1, out=partition)
        mask = utility <= self._np_thresholds[partition]
        return mask.tolist()

    # ------------------------------------------------------------------
    # stdlib fallback backend
    # ------------------------------------------------------------------
    def _decide_fallback(
        self, events: Sequence, positions: Sequence[int], window_size: float
    ) -> List[bool]:
        reference = self.reference
        bins = self.bins
        bin_size = self.bin_size
        flat = self._flat
        row_of = self._type_rows
        unknown = self._unknown_row
        thresholds = self._thresholds
        top_part = len(thresholds) - 1
        psize = self.partition_size
        out: List[bool] = []
        append = out.append

        if window_size >= reference - 1.0:
            if window_size <= reference + 1.0:
                last_pos = reference - 1
                for event, position in zip(events, positions):
                    ref_position = position if position < reference else last_pos
                    base = row_of.get(event.event_type, unknown) * bins
                    utility = flat[base + ref_position // bin_size]
                    partition = int(ref_position / psize)
                    if partition > top_part:
                        partition = top_part
                    append(utility <= thresholds[partition])
            else:
                for event, position in zip(events, positions):
                    ref_position = int(position * reference / window_size)
                    if ref_position >= reference:
                        ref_position = reference - 1
                    base = row_of.get(event.event_type, unknown) * bins
                    utility = flat[base + ref_position // bin_size]
                    partition = int(ref_position / psize)
                    if partition > top_part:
                        partition = top_part
                    append(utility <= thresholds[partition])
            return out

        # scale-up slow path (ws < N): batch-compute the covered bin
        # ranges and reference positions, then average the covered cells
        spans = scaling.positions_to_bins_batch(
            positions, window_size, self.table_reference, self.table_bin_size
        )
        ref_positions = scaling.reference_positions_batch(
            positions, window_size, reference
        )
        for i, (event, position) in enumerate(zip(events, positions)):
            first, last = spans[i]
            base = row_of.get(event.event_type, unknown) * bins
            if first == last:
                utility = flat[base + first]
            else:
                span = flat[base + first : base + last + 1]
                utility = round(sum(span) / len(span))
            partition = int(ref_positions[i] / psize)
            if partition > top_part:
                partition = top_part
            append(utility <= thresholds[partition])
        return out

    def __repr__(self) -> str:
        return (
            f"SheddingKernel(backend={self.backend}, types={self._unknown_row}, "
            f"bins={self.bins}, partitions={self.partition_count})"
        )

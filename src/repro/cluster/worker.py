"""The shard worker process: shed + match windows shipped by the router.

Each worker runs :func:`shard_main` in its own OS process.  It owns a
matcher per query chain and (a process-local copy of) the chain's load
shedder; the window-size prediction it needs for position scaling is
*not* local state -- the router computes it from the global window
sequence and attaches it to every shipped window, so every shard
decides exactly as a sequential operator would, regardless of how many
shards exist or which windows each one saw.

Protocol (all messages travel in :class:`~repro.cluster.transport`
batches)::

    coordinator -> worker
        ("winbatch", chain, [(dispatch_idx, window, predicted_ws), ...])
        ("win",   chain, dispatch_idx, window, predicted_ws)  # single-window path
        ("model", chain, payload, version)      # hot model swap
        ("cmd",   chain, drop_command | None, active)  # coordinated shedding
        ("sync",  token)                        # flush + report metrics
        ("stop",)

    worker -> coordinator
        ("resbatch", shard_id, chain, [(dispatch_idx, [ComplexEvent, ...]), ...])
        ("res",  shard_id, chain, dispatch_idx, [ComplexEvent, ...])
        ("sync", shard_id, token, metrics)
        ("err",  shard_id, traceback_text)

``winbatch`` carries every window one router-side
:class:`~repro.pipeline.batching.EventBatch` closed for one shard --
the micro-batch formed at ingress travels end-to-end instead of being
re-wrapped into per-window messages.

Workers are forked from the parent after ``train()``/``deploy()``, so
they inherit the trained model, the shedder's drop command and its
activation state -- a worker never makes a decision the parent has not
configured.

Fault tolerance (opt-in via ``checkpoint_path``): the worker
periodically checkpoints each chain's replayable state -- counters,
shedder state, matcher partial-match state where the deployment uses
the incremental matcher -- to a virtual-clock-stamped JSON file via
atomic rename.  A respawned worker restores that file at boot; the
coordinator replays the windows the dead worker never acked (its
replay cursor) and deduplicates by dispatch index, so the pair gives
exactly-once *detections* even though individual shed decisions on
replayed windows are re-made (they are deterministic, so re-making
them yields bit-identical results).  The worker also heartbeats on
idle, bounding how long a wedged worker can stall failure detection.
"""

from __future__ import annotations

import queue
import signal
import time
import traceback
from typing import Any, Dict, List, Optional

from repro.cep.events import ComplexEvent
from repro.cep.patterns.incremental import IncrementalWindowMatcher
from repro.cep.patterns.query import Query
from repro.cep.windows import Window
from repro.core.persistence import (
    STATE_FORMAT_VERSION,
    apply_matcher_state,
    apply_shedder_state,
    matcher_state_to_dict,
    model_from_dict,
    read_json_checkpoint,
    shedder_state_to_dict,
    write_json_atomic,
)
from repro.shedding.base import LoadShedder

#: Seconds of idle-loop silence before a worker volunteers a heartbeat.
#: Must be well under the coordinator's suspicion timeout.
HEARTBEAT_IDLE_SECONDS = 2.0


class ShardChain:
    """Worker-side state of one query chain: matcher + shedder + counters.

    With ``observe=True`` (set at fork time by
    :meth:`repro.cluster.sharded.ShardedPipeline.enable_observability`)
    the chain also records a per-window processing-time histogram whose
    raw bucket state ships to the coordinator in every sync reply,
    where it merges into the deployment's shared registry.
    """

    def __init__(
        self,
        query: Query,
        shedder: Optional[LoadShedder],
        observe: bool = False,
        model_version: int = 1,
    ) -> None:
        self.query = query
        self.shedder = shedder
        self.matcher = query.new_matcher()
        self.model_version = model_version
        self.windows = 0
        self.memberships_kept = 0
        self.memberships_dropped = 0
        self.complex_events = 0
        self.window_seconds = None
        if observe:
            from repro.obs.registry import Histogram

            self.window_seconds = Histogram()

    def process_window(
        self, window: Window, predicted_ws: float
    ) -> List[ComplexEvent]:
        """Shed and match one complete window.

        Mirrors
        :meth:`repro.cep.parallel.WindowParallelOperator.process_window`
        -- the proven degree-invariant path -- except that the window
        size prediction comes from the router instead of local state.
        """
        if self.window_seconds is not None:
            return self._process_window_timed(window, predicted_ws)
        return self._process_window(window, predicted_ws)

    def _process_window_timed(
        self, window: Window, predicted_ws: float
    ) -> List[ComplexEvent]:
        started = time.perf_counter()
        complex_events = self._process_window(window, predicted_ws)
        self.window_seconds.observe(time.perf_counter() - started)
        return complex_events

    def _process_window(
        self, window: Window, predicted_ws: float
    ) -> List[ComplexEvent]:
        self.windows += 1
        shedder = self.shedder
        events = window.events
        if shedder is not None and shedder.active:
            # a complete window is a natural micro-batch: one kernel
            # pass resolves every (event, position) of the window
            mask = shedder.should_drop_batch(
                events, range(len(events)), predicted_ws
            )
            kept_positions = [p for p, drop in enumerate(mask) if not drop]
            kept_events = [events[p] for p in kept_positions]
            self.memberships_dropped += len(events) - len(kept_events)
            self.memberships_kept += len(kept_events)
        else:
            kept_positions = list(range(len(events)))
            kept_events = list(events)
            self.memberships_kept += len(kept_events)
        matches = self.matcher.match_window(kept_events, kept_positions)
        # detection_time is the window's close time (stream time): the
        # shard's local processing clock is meaningless cluster-wide.
        # ComplexEvent identity (pattern, window, constituents) is what
        # the sequential-equality guarantee covers.
        complex_events = [
            ComplexEvent(
                pattern_name=self.query.name,
                window_id=window.window_id,
                events=tuple(e for _pos, e in match),
                detection_time=window.close_time,
            )
            for match in matches
        ]
        self.complex_events += len(complex_events)
        return complex_events

    def swap_model(self, payload: dict, version: int) -> None:
        """Hot-swap the broadcast model into the local shedder."""
        model = model_from_dict(payload)
        if self.shedder is not None and hasattr(self.shedder, "rebind_model"):
            self.shedder.rebind_model(model)
        self.model_version = version

    def apply_command(self, command, active: bool) -> None:
        """Apply a coordinated shedding state change."""
        if self.shedder is None:
            return
        if command is not None:
            self.shedder.on_drop_command(command)
        if active:
            self.shedder.activate()
        else:
            self.shedder.deactivate()

    def metrics(self) -> Dict[str, object]:
        total = self.memberships_kept + self.memberships_dropped
        report: Dict[str, object] = {
            "windows": self.windows,
            "memberships_kept": self.memberships_kept,
            "memberships_dropped": self.memberships_dropped,
            "drop_rate": self.memberships_dropped / total if total else 0.0,
            "complex_events": self.complex_events,
            "model_version": self.model_version,
            "shedding_active": (
                self.shedder.active if self.shedder is not None else False
            ),
        }
        if self.shedder is not None:
            report["shed_decisions"] = self.shedder.decisions
            report["shed_drops"] = self.shedder.drops
        if self.window_seconds is not None:
            # raw bucket state: the coordinator merges it into the
            # registry's histogram family (bucket layouts match)
            report["window_seconds"] = self.window_seconds.state()
        if self.shedder is not None and hasattr(self.shedder, "model"):
            model = self.shedder.model
            if hasattr(model, "fingerprint"):
                report["model_fingerprint"] = model.fingerprint()
        return report

    # -- checkpointing -------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """The chain's replayable state for a shard checkpoint.

        Captures everything a respawned worker cannot reconstruct from
        the fork image plus coordinator broadcasts: cumulative
        counters, the shedder's counters/command/activation, and --
        for incremental deployments -- the matcher's partial-match
        progress.  The model is deliberately absent (coordinator-owned,
        re-broadcast on recovery), keeping checkpoints small.
        """
        state: Dict[str, object] = {
            "model_version": self.model_version,
            "windows": self.windows,
            "memberships_kept": self.memberships_kept,
            "memberships_dropped": self.memberships_dropped,
            "complex_events": self.complex_events,
        }
        if self.shedder is not None:
            state["shedder"] = shedder_state_to_dict(self.shedder)
        if isinstance(self.matcher, IncrementalWindowMatcher):
            state["matcher"] = matcher_state_to_dict(self.matcher)
        return state

    def restore_state(self, state: Dict[str, Any]) -> None:
        """Resume from :meth:`state_dict` output (respawn-from-checkpoint)."""
        self.model_version = int(state["model_version"])
        self.windows = int(state["windows"])
        self.memberships_kept = int(state["memberships_kept"])
        self.memberships_dropped = int(state["memberships_dropped"])
        self.complex_events = int(state["complex_events"])
        shedder_state = state.get("shedder")
        if shedder_state is not None and self.shedder is not None:
            apply_shedder_state(self.shedder, shedder_state)
        matcher_state = state.get("matcher")
        if matcher_state is not None and isinstance(
            self.matcher, IncrementalWindowMatcher
        ):
            apply_matcher_state(self.matcher, matcher_state)


class CheckpointWriter:
    """Periodic, atomic, virtual-clock-stamped shard checkpoints.

    ``interval`` counts *windows processed*: after every ``interval``
    windows the full chain state is written via temp-file +
    ``os.replace`` (see :func:`repro.core.persistence.write_json_atomic`),
    so a crash at any instant leaves either the previous or the new
    complete checkpoint on disk, never a torn one.  The stamp is the
    latest window close time seen -- *stream* (virtual) time, the only
    clock that means the same thing across processes and replays.
    """

    __slots__ = (
        "path",
        "interval",
        "chains",
        "stamp",
        "_since_last",
        "checkpoints_written",
        "bytes_written",
        "last_stamp",
        "restored",
    )

    def __init__(
        self,
        path: str,
        chains: Dict[str, ShardChain],
        interval: int = 200,
    ) -> None:
        if interval <= 0:
            raise ValueError("checkpoint interval must be positive")
        self.path = path
        self.interval = interval
        self.chains = chains
        self.stamp = 0.0
        self._since_last = 0
        self.checkpoints_written = 0
        self.bytes_written = 0
        self.last_stamp = 0.0
        self.restored = False

    def restore(self) -> bool:
        """Resume chain state from the last checkpoint, if one exists."""
        payload = read_json_checkpoint(self.path, "shard")
        if payload is None:
            return False
        for name, state in payload["chains"].items():
            if name in self.chains:
                self.chains[name].restore_state(state)
        self.stamp = float(payload["stamp"])
        self.last_stamp = self.stamp
        self.restored = True
        return True

    def observe_window(self, close_time: float) -> None:
        """One window was processed; checkpoint if the interval elapsed."""
        if close_time > self.stamp:
            self.stamp = close_time
        self._since_last += 1
        if self._since_last >= self.interval:
            self.write()

    def write(self) -> None:
        """Write a checkpoint now (atomic rename)."""
        payload = {
            "format_version": STATE_FORMAT_VERSION,
            "kind": "shard",
            "stamp": self.stamp,
            "chains": {
                name: chain.state_dict() for name, chain in self.chains.items()
            },
        }
        self.bytes_written += write_json_atomic(payload, self.path)
        self.checkpoints_written += 1
        self.last_stamp = self.stamp
        self._since_last = 0

    def metrics(self) -> Dict[str, object]:
        """Checkpoint counters for the shard's sync report."""
        return {
            "checkpoints": self.checkpoints_written,
            "checkpoint_bytes": self.bytes_written,
            "checkpoint_stamp": self.last_stamp,
            "stamp": self.stamp,
            "restored": self.restored,
        }


class _GracefulShutdown(BaseException):
    """Raised by the SIGTERM handler to unwind the worker loop.

    Deliberately a ``BaseException`` (like ``KeyboardInterrupt``): the
    worker's ``except Exception`` error reporting must not swallow it.
    """


def _request_shutdown(signum, frame):  # pragma: no cover - signal context
    raise _GracefulShutdown()


def shard_main(
    shard_id: int,
    chains: Dict[str, ShardChain],
    in_queue,
    out_queue,
    batch_size: int,
    linger: float,
    checkpoint_path: Optional[str] = None,
    checkpoint_interval: int = 200,
) -> None:
    """Worker process entry point (runs until a ``stop`` message).

    SIGTERM and SIGINT (``KeyboardInterrupt``) are graceful-shutdown
    requests, not crashes: the worker flushes any results it already
    computed to the coordinator and returns cleanly (exit code 0) --
    the same drain path a ``stop`` message takes.  Network front doors
    and process supervisors deliver exactly these signals on shutdown,
    and a worker traceback would misreport an orderly drain as a
    failure.
    """
    from repro.cluster.transport import BatchingSender

    # the handler must be installed in the child's main thread; fork
    # inherits the parent's disposition, which for a driver under
    # SIGTERM-based supervision would be to die mid-batch
    signal.signal(signal.SIGTERM, _request_shutdown)
    sender = None
    try:
        sender = BatchingSender(out_queue, batch_size=batch_size, linger=linger)
        writer = None
        if checkpoint_path is not None:
            writer = CheckpointWriter(
                checkpoint_path, chains, interval=checkpoint_interval
            )
            # a respawned worker finds its predecessor's checkpoint here
            # and resumes counters/shedder/matcher state from it; a
            # first boot finds nothing and starts fresh
            writer.restore()
        started = time.perf_counter()
        last_heard = started
        busy = 0.0
        batches_in = 0
        messages_in = 0
        running = True
        while running:
            # bounded wait, not a bare get(): the kernel may deliver a
            # process-directed signal to the queue feeder thread, where
            # CPython only sets a pending flag -- the Python-level
            # handler runs once the main thread executes bytecode
            # again, which a blocking get() would never do.  The
            # timeout bounds shutdown latency without busy-waiting.
            try:
                batch = in_queue.get(timeout=0.5)
            except queue.Empty:
                # idle heartbeat: any traffic resets the parent's
                # failure-detector clock, so an idle-but-healthy worker
                # is never suspected.  Best-effort -- a full result
                # queue means the parent has plenty of fresher evidence
                # of liveness, so dropping the beat is safe.
                now = time.perf_counter()
                if now - last_heard >= HEARTBEAT_IDLE_SECONDS:
                    try:
                        out_queue.put_nowait([("hb", shard_id)])
                        last_heard = now
                    except queue.Full:  # pragma: no cover - parent lagging
                        pass
                continue
            last_heard = time.perf_counter()
            batches_in += 1
            for message in batch:
                messages_in += 1
                tag = message[0]
                if tag == "winbatch":
                    # one message per (EventBatch, shard): shed + match
                    # every window, reply with one result batch
                    _tag, chain_name, entries = message
                    chain = chains[chain_name]
                    work_start = time.perf_counter()
                    results = [
                        (dispatch_idx, chain.process_window(window, predicted))
                        for dispatch_idx, window, predicted in entries
                    ]
                    busy += time.perf_counter() - work_start
                    sender.send_now(("resbatch", shard_id, chain_name, results))
                    if writer is not None:
                        # checkpoint cadence ticks *after* the results
                        # ship: the checkpointed state never claims
                        # windows whose results could still be lost
                        # with this process
                        for _dispatch_idx, window, _predicted in entries:
                            writer.observe_window(window.close_time)
                elif tag == "win":
                    _tag, chain_name, dispatch_idx, window, predicted = message
                    work_start = time.perf_counter()
                    complex_events = chains[chain_name].process_window(
                        window, predicted
                    )
                    busy += time.perf_counter() - work_start
                    sender.send(
                        ("res", shard_id, chain_name, dispatch_idx, complex_events)
                    )
                    if writer is not None:
                        writer.observe_window(window.close_time)
                elif tag == "model":
                    _tag, chain_name, payload, version = message
                    chains[chain_name].swap_model(payload, version)
                elif tag == "cmd":
                    _tag, chain_name, command, active = message
                    chains[chain_name].apply_command(command, active)
                elif tag == "sync":
                    sender.flush()
                    wall = time.perf_counter() - started
                    metrics = {
                        "busy_seconds": busy,
                        "wall_seconds": wall,
                        "utilization": busy / wall if wall > 0 else 0.0,
                        "batches_received": batches_in,
                        "messages_received": messages_in,
                        "chains": {
                            name: chain.metrics() for name, chain in chains.items()
                        },
                    }
                    if writer is not None:
                        metrics.update(writer.metrics())
                    out_queue.put([("sync", shard_id, message[1], metrics)])
                elif tag == "stop":
                    if writer is not None:
                        # make the final counters durable: a later run
                        # resuming from this directory starts from the
                        # end state, not the last periodic interval
                        writer.write()
                    running = False
                    break
            sender.flush()
    except (KeyboardInterrupt, _GracefulShutdown):
        # graceful drain: ship whatever results are already buffered,
        # then exit 0 -- the coordinator treats this like a ``stop``
        try:
            if sender is not None:
                sender.flush()
        except Exception:  # pragma: no cover - queue already torn down
            pass
        return
    except Exception:  # pragma: no cover - exercised via crash tests only
        out_queue.put([("err", shard_id, traceback.format_exc())])
        raise

"""`repro.cluster`: sharded multi-process execution of pipelines.

The scale-out subsystem: a :class:`ShardedPipeline` runs a built
:class:`repro.pipeline.Pipeline` across N real worker processes, with

- pluggable :mod:`routing <repro.cluster.routing>` of complete windows
  (round-robin, hash-by-key, least-loaded) -- windows are the paper's
  unit of distribution, so detections are independent of the shard
  count,
- batched :mod:`transport <repro.cluster.transport>` over the IPC
  queues (size-or-linger batching amortises pickling and queue locks),
- a :mod:`coordinator <repro.cluster.coordinator>` that owns the
  trained model, broadcasts hot swaps and coordinated shedding to all
  shards, and aggregates per-shard metrics, drift signals and
  backpressure into one :class:`ClusterSnapshot`,
- merge-and-order of emitted complex events, so a sharded run's output
  is provably equal to a sequential run's (contents and order),
- opt-in fault tolerance (``fault_tolerant=True``): heartbeat failure
  detection, dead-worker respawn from periodic
  :mod:`checkpoints <repro.cluster.worker>`, coordinator-side replay
  of unacked windows with exactly-once merge dedup,
- opt-in elasticity: ``scale_up()``/``scale_down()``/``scale_to()``
  membership changes (pair with the ``consistent-hash`` router for
  minimal rebalancing) and an :class:`Autoscaler` policy driving them
  from live utilization and queue-depth snapshots.

Construct one via ``Pipeline.builder()...distributed(shards=N)`` or
wrap an existing pipeline with :class:`ShardedPipeline` directly; the
deterministic replay driver is
:func:`repro.runtime.simulation.simulate_sharded`.
"""

from repro.cluster.coordinator import (
    ClusterCoordinator,
    ClusterSnapshot,
    DriftSignal,
    ShardStatus,
)
from repro.cluster.elastic import Autoscaler
from repro.cluster.routing import (
    ConsistentHashRouter,
    HashKeyRouter,
    LeastLoadedRouter,
    RoundRobinRouter,
    Router,
    available_routers,
    create_router,
)
from repro.cluster.sharded import ShardedPipeline, ShardedResult
from repro.cluster.transport import BatchingSender, FailureDetector

__all__ = [
    "Autoscaler",
    "BatchingSender",
    "ClusterCoordinator",
    "ClusterSnapshot",
    "ConsistentHashRouter",
    "DriftSignal",
    "FailureDetector",
    "HashKeyRouter",
    "LeastLoadedRouter",
    "RoundRobinRouter",
    "Router",
    "ShardStatus",
    "ShardedPipeline",
    "ShardedResult",
    "available_routers",
    "create_router",
]

"""Autoscaling policy: when should the cluster change its shard count?

The coordinator already collects everything a scaling decision needs --
per-shard busy fractions and outstanding window counts arrive with
every sync -- so the :class:`Autoscaler` is a pure policy object: feed
it :class:`~repro.cluster.coordinator.ClusterSnapshot` objects, get
back a target shard count (or ``None`` for "stay put").  The
:class:`~repro.cluster.sharded.ShardedPipeline` owns the mechanism
(spawning and draining workers, rebalancing the ring); this module
owns only the decision, which keeps the policy unit-testable with
synthetic snapshots and a fake clock.

The policy is deliberately boring -- mean-utilization thresholds with
a queue-depth override and a cooldown:

- scale **up** by one when mean utilization exceeds
  ``high_utilization`` *or* any shard's queue exceeds ``queue_high``
  (a routing hot spot saturates one shard long before the mean moves),
- scale **down** by one when mean utilization falls below
  ``low_utilization`` *and* every queue is empty (never retire a shard
  that still owes results),
- never outside ``[min_shards, max_shards]``, never again within
  ``cooldown_seconds`` of the last decision (membership changes are
  expensive: fork + ring rebuild + rebalance).

Deterministic by construction: decisions depend only on the snapshot
and the injected clock, so tests drive it with hand-built snapshots.
"""

from __future__ import annotations

import time
from typing import Callable, Optional

from repro.cluster.coordinator import ClusterSnapshot


class Autoscaler:
    """Threshold autoscaling policy over cluster snapshots."""

    __slots__ = (
        "min_shards",
        "max_shards",
        "high_utilization",
        "low_utilization",
        "queue_high",
        "cooldown_seconds",
        "_clock",
        "_last_decision",
        "decisions",
    )

    def __init__(
        self,
        min_shards: int = 1,
        max_shards: int = 8,
        high_utilization: float = 0.8,
        low_utilization: float = 0.3,
        queue_high: int = 64,
        cooldown_seconds: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if min_shards <= 0:
            raise ValueError("min_shards must be positive")
        if max_shards < min_shards:
            raise ValueError("max_shards must be >= min_shards")
        if not 0.0 <= low_utilization < high_utilization <= 1.0:
            raise ValueError(
                "need 0 <= low_utilization < high_utilization <= 1"
            )
        self.min_shards = min_shards
        self.max_shards = max_shards
        self.high_utilization = high_utilization
        self.low_utilization = low_utilization
        self.queue_high = queue_high
        self.cooldown_seconds = cooldown_seconds
        self._clock = clock
        self._last_decision: Optional[float] = None
        self.decisions = 0

    def decide(self, snapshot: ClusterSnapshot) -> Optional[int]:
        """Target shard count for ``snapshot``, or ``None`` to hold.

        A non-``None`` return starts the cooldown; the caller is
        expected to act on it (the pipeline does so synchronously).
        """
        now = self._clock()
        if (
            self._last_decision is not None
            and now - self._last_decision < self.cooldown_seconds
        ):
            return None
        shards = len(snapshot.shards)
        utilizations = snapshot.utilization()
        mean_utilization = (
            sum(utilizations) / len(utilizations) if utilizations else 0.0
        )
        depths = snapshot.queue_depths()
        target: Optional[int] = None
        if shards < self.max_shards and (
            mean_utilization > self.high_utilization
            or any(depth > self.queue_high for depth in depths)
        ):
            target = shards + 1
        elif (
            shards > self.min_shards
            and mean_utilization < self.low_utilization
            and all(depth == 0 for depth in depths)
        ):
            target = shards - 1
        if target is not None:
            self._last_decision = now
            self.decisions += 1
        return target

"""Batched event transport over the cluster's IPC queues.

Every message crossing a process boundary pays a pickle plus a queue
lock round-trip; at tens of thousands of windows per second that
per-message cost dominates.  :class:`BatchingSender` amortises it by
accumulating messages and shipping them as one list -- one pickle, one
lock -- flushed when the batch reaches ``batch_size`` or when the
oldest buffered message has waited ``linger`` seconds (the classic
size-or-time rule of batched messaging systems).

``batch_size=1`` degenerates to unbatched sends; ``linger=0`` flushes
purely by size (plus the explicit :meth:`flush` barriers the sharded
pipeline inserts at sync points), which keeps replay runs
deterministic.
"""

from __future__ import annotations

import queue as queue_module
import time
from typing import Callable, Iterator, List


class BatchingSender:
    """Size-or-linger batching wrapper around a ``put()``-style queue."""

    __slots__ = (
        "queue",
        "batch_size",
        "linger",
        "_clock",
        "_buffer",
        "_oldest",
        "messages_sent",
        "batches_sent",
        "max_batch",
    )

    def __init__(
        self,
        queue,
        batch_size: int = 32,
        linger: float = 0.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        if linger < 0.0:
            raise ValueError("linger must be non-negative")
        self.queue = queue
        self.batch_size = batch_size
        self.linger = linger
        self._clock = clock
        self._buffer: List[object] = []
        self._oldest: float = 0.0
        self.messages_sent = 0
        self.batches_sent = 0
        self.max_batch = 0

    def __len__(self) -> int:
        return len(self._buffer)

    def send(self, message: object) -> None:
        """Buffer one message; flush if the batch is full or lingered."""
        if not self._buffer:
            self._oldest = self._clock()
        self._buffer.append(message)
        if len(self._buffer) >= self.batch_size:
            self.flush()
        elif self.linger > 0.0 and self._clock() - self._oldest >= self.linger:
            self.flush()

    def send_now(self, message: object) -> None:
        """Ship ``message`` immediately (after anything already buffered).

        For messages that are themselves batches -- e.g. a router's
        ``winbatch`` carrying every window an :class:`EventBatch`
        closed -- re-buffering would only delay work that is already
        amortized; queue order relative to buffered messages is
        preserved.
        """
        self._buffer.append(message)
        self.flush()

    def maybe_flush(self) -> None:
        """Flush if the oldest buffered message outwaited ``linger``."""
        if (
            self._buffer
            and self.linger > 0.0
            and self._clock() - self._oldest >= self.linger
        ):
            self.flush()

    def flush(self) -> None:
        """Ship the buffered messages as one batch (no-op when empty)."""
        if not self._buffer:
            return
        batch = self._buffer
        self._buffer = []
        self.queue.put(batch)
        self.messages_sent += len(batch)
        self.batches_sent += 1
        if len(batch) > self.max_batch:
            self.max_batch = len(batch)

    def average_batch_size(self) -> float:
        """Mean messages per shipped batch (0.0 before any flush)."""
        if self.batches_sent == 0:
            return 0.0
        return self.messages_sent / self.batches_sent

    def metrics(self) -> dict:
        """Transport counters for the cluster snapshot."""
        return {
            "messages": self.messages_sent,
            "batches": self.batches_sent,
            "avg_batch": round(self.average_batch_size(), 2),
            "max_batch": self.max_batch,
            "buffered": len(self._buffer),
        }


class FailureDetector:
    """Heartbeat/timeout failure suspicion for the worker IPC channel.

    The parent records an arrival time for every message a shard sends
    (results, syncs, explicit ``hb`` heartbeats all count -- any
    traffic proves liveness).  A shard becomes *suspect* when it has
    been silent for longer than ``timeout`` seconds of wall clock.

    Suspicion is advisory: the sharded pipeline combines it with the
    authoritative ``Process.is_alive()`` check, using the heartbeat
    only to bound how long a wedged-but-alive worker can stall a run.
    A shard with no pending work is never suspected by callers (idle
    workers still heartbeat, but slowly) -- that policy lives in the
    pipeline, this class only keeps the clocks.
    """

    __slots__ = ("timeout", "_clock", "_last_seen")

    def __init__(
        self,
        timeout: float = 30.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if timeout <= 0.0:
            raise ValueError("timeout must be positive")
        self.timeout = timeout
        self._clock = clock
        self._last_seen: dict = {}

    def register(self, shard: int) -> None:
        """Start tracking ``shard``, counting from now."""
        self._last_seen[shard] = self._clock()

    def forget(self, shard: int) -> None:
        """Stop tracking ``shard`` (scale-down or permanent removal)."""
        self._last_seen.pop(shard, None)

    def observe(self, shard: int) -> None:
        """Any message from ``shard`` arrived; reset its clock."""
        if shard in self._last_seen:
            self._last_seen[shard] = self._clock()

    def silence(self, shard: int) -> float:
        """Seconds since ``shard`` was last heard from (0.0 if unknown)."""
        last = self._last_seen.get(shard)
        return 0.0 if last is None else max(0.0, self._clock() - last)

    def suspects(self) -> List[int]:
        """Tracked shards silent for longer than ``timeout``."""
        now = self._clock()
        return sorted(
            shard
            for shard, last in self._last_seen.items()
            if now - last > self.timeout
        )


def drain(mp_queue, max_batches: int = 1000) -> Iterator[object]:
    """Yield every message currently available on ``mp_queue``.

    Non-blocking: stops at the first ``Empty`` (or after
    ``max_batches`` batches, so a fast producer cannot starve the
    caller's own loop).  Each queue entry is a batch (a list) produced
    by a :class:`BatchingSender`; messages are yielded individually.
    """
    for _ in range(max_batches):
        try:
            batch = mp_queue.get_nowait()
        except queue_module.Empty:
            return
        for message in batch:
            yield message


def drain_for(mp_queue, timeout: float) -> Iterator[object]:
    """Yield messages from one blocking ``get`` bounded by ``timeout``.

    Returns without yielding when nothing arrives in time -- the
    caller's wait loop decides whether to keep waiting or give up.
    """
    try:
        batch = mp_queue.get(timeout=timeout)
    except queue_module.Empty:
        return
    for message in batch:
        yield message

"""Routing policies: which shard processes which window.

The unit of distribution is the *complete window* -- exactly the unit
window-based data-parallel CEP systems (RIP, SPECTRE) distribute, and
the reason detections stay independent of the parallelism degree: every
window is matched whole, on exactly one shard, with the same shedder
state everywhere.

Three ready-made policies:

- ``round-robin`` -- windows cycle over shards by window id (the
  paper's deployment shape; deterministic and balanced for
  homogeneous windows),
- ``hash`` -- windows stick to shards by a key (window id by default,
  or any attribute of the window's opening event), so per-key state
  such as downstream caches stays shard-local,
- ``least-loaded`` -- windows go to the shard with the least
  outstanding work (event count in flight), absorbing skew from
  variable window sizes.

Custom policies subclass :class:`Router`.  Routing never affects
*which* complex events are detected -- only where the matching work
runs -- because shedding decisions are window-local and coordinated by
the :class:`~repro.cluster.sharded.ShardedPipeline`'s coordinator.
"""

from __future__ import annotations

import zlib
from typing import Callable, Dict, Optional, Union

from repro.cep.windows import Window


class Router:
    """Base routing policy: maps complete windows to shard indices.

    ``bind(shards)`` is called once by the sharded pipeline before any
    routing; ``route(window, chain)`` must return an index in
    ``[0, shards)``.  ``on_dispatch``/``on_complete`` observe the work
    a routing decision created and retired -- feedback hooks for
    load-aware policies.
    """

    #: Registry name; subclasses override.
    name: str = "router"

    def __init__(self) -> None:
        self.shards = 0
        self.routed = 0

    def bind(self, shards: int) -> "Router":
        """Fix the shard count; called once before routing starts."""
        if shards <= 0:
            raise ValueError("shard count must be positive")
        self.shards = shards
        return self

    def route(self, window: Window, chain: str) -> int:
        """Shard index for ``window`` of query chain ``chain``."""
        raise NotImplementedError

    def on_dispatch(self, shard: int, cost: int) -> None:
        """A window of ``cost`` events was sent to ``shard``."""

    def on_complete(self, shard: int, cost: int) -> None:
        """A previously dispatched window came back from ``shard``."""

    def metrics(self) -> Dict[str, object]:
        """Router counters for the cluster snapshot."""
        return {"policy": self.name, "routed": self.routed}


class RoundRobinRouter(Router):
    """Windows cycle over shards in window-id order (paper deployment).

    Uses ``window_id % shards`` -- the same dispatch rule as the
    in-process :class:`~repro.cep.parallel.WindowParallelOperator`, so
    a sharded run distributes windows exactly like the logical
    parallel operator it replaces.
    """

    name = "round-robin"

    def route(self, window: Window, chain: str) -> int:
        self.routed += 1
        return window.window_id % self.shards


class HashKeyRouter(Router):
    """Windows stick to shards by a deterministic key hash.

    ``key`` extracts the routing key from the window; the default is
    the window id.  ``attribute`` is a convenience for the common case
    of keying on an attribute of the window's *opening* event (e.g.
    the striker id of a man-marking window, or a stock symbol), which
    keeps all windows of one entity on one shard.

    The hash is ``crc32`` over the key's string form -- stable across
    processes and Python invocations, unlike the salted builtin
    ``hash``.
    """

    name = "hash"

    def __init__(
        self,
        key: Optional[Callable[[Window], object]] = None,
        attribute: Optional[str] = None,
    ) -> None:
        super().__init__()
        if key is not None and attribute is not None:
            raise ValueError("pass either a key function or an attribute name")
        if attribute is not None:
            key = lambda window: (  # noqa: E731 - tiny adapter
                window.events[0].attr(attribute) if window.events else None
            )
        self.key = key if key is not None else (lambda window: window.window_id)

    def route(self, window: Window, chain: str) -> int:
        self.routed += 1
        digest = zlib.crc32(str(self.key(window)).encode("utf-8"))
        return digest % self.shards


class LeastLoadedRouter(Router):
    """Windows go to the shard with the least outstanding work.

    Load is the number of dispatched-but-unfinished window events per
    shard, maintained from the pipeline's dispatch/completion feedback.
    Ties break toward the lowest shard index, so routing is
    deterministic given the same feedback sequence.
    """

    name = "least-loaded"

    def bind(self, shards: int) -> "Router":
        super().bind(shards)
        self.loads = [0] * shards
        return self

    def route(self, window: Window, chain: str) -> int:
        self.routed += 1
        return self.loads.index(min(self.loads))

    def on_dispatch(self, shard: int, cost: int) -> None:
        self.loads[shard] += cost

    def on_complete(self, shard: int, cost: int) -> None:
        self.loads[shard] = max(0, self.loads[shard] - cost)

    def metrics(self) -> Dict[str, object]:
        report = super().metrics()
        report["loads"] = list(self.loads)
        return report


_ROUTERS = {
    RoundRobinRouter.name: RoundRobinRouter,
    HashKeyRouter.name: HashKeyRouter,
    LeastLoadedRouter.name: LeastLoadedRouter,
}


def available_routers() -> list:
    """Registered routing policy names."""
    return sorted(_ROUTERS)


def create_router(spec: Union[str, Router, None], shards: int) -> Router:
    """Resolve ``spec`` (name, instance or ``None``) into a bound router."""
    if spec is None:
        router: Router = RoundRobinRouter()
    elif isinstance(spec, Router):
        router = spec
    elif isinstance(spec, str):
        if spec not in _ROUTERS:
            known = ", ".join(available_routers())
            raise ValueError(f"unknown router {spec!r}; registered: {known}")
        router = _ROUTERS[spec]()
    else:
        raise TypeError(f"router must be a name or Router instance, got {spec!r}")
    return router.bind(shards)

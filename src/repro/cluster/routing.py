"""Routing policies: which shard processes which window.

The unit of distribution is the *complete window* -- exactly the unit
window-based data-parallel CEP systems (RIP, SPECTRE) distribute, and
the reason detections stay independent of the parallelism degree: every
window is matched whole, on exactly one shard, with the same shedder
state everywhere.

Three ready-made policies:

- ``round-robin`` -- windows cycle over shards by window id (the
  paper's deployment shape; deterministic and balanced for
  homogeneous windows),
- ``hash`` -- windows stick to shards by a key (window id by default,
  or any attribute of the window's opening event), so per-key state
  such as downstream caches stays shard-local,
- ``least-loaded`` -- windows go to the shard with the least
  outstanding work (event count in flight), absorbing skew from
  variable window sizes,
- ``consistent-hash`` -- windows map to shards through a virtual-node
  hash ring, so when the membership changes only the key ranges owned
  by the joining/leaving shard move (≈ K/N of K keys for one of N
  shards) -- the policy the elastic cluster rebalances under.

Custom policies subclass :class:`Router`.  Routing never affects
*which* complex events are detected -- only where the matching work
runs -- because shedding decisions are window-local and coordinated by
the :class:`~repro.cluster.sharded.ShardedPipeline`'s coordinator.

Elastic membership: :meth:`Router.add_shard` / :meth:`Router.remove_shard`
grow and shrink the bound shard count *in place*.  Shard ids stay dense
(``0..shards-1``): a join adds id ``shards``, a leave retires the
highest id -- the sharded pipeline maps these dense ids onto worker
processes, so policies never see holes in the id space.
"""

from __future__ import annotations

import bisect
import zlib
from typing import Callable, Dict, List, Optional, Tuple, Union

from repro.cep.windows import Window


class Router:
    """Base routing policy: maps complete windows to shard indices.

    ``bind(shards)`` is called once by the sharded pipeline before any
    routing; ``route(window, chain)`` must return an index in
    ``[0, shards)``.  ``on_dispatch``/``on_complete`` observe the work
    a routing decision created and retired -- feedback hooks for
    load-aware policies.
    """

    #: Registry name; subclasses override.
    name: str = "router"

    def __init__(self) -> None:
        self.shards = 0
        self.routed = 0

    def bind(self, shards: int) -> "Router":
        """Fix the shard count; called once before routing starts."""
        if shards <= 0:
            raise ValueError("shard count must be positive")
        self.shards = shards
        return self

    def route(self, window: Window, chain: str) -> int:
        """Shard index for ``window`` of query chain ``chain``."""
        raise NotImplementedError

    def on_dispatch(self, shard: int, cost: int) -> None:
        """A window of ``cost`` events was sent to ``shard``."""

    def on_complete(self, shard: int, cost: int) -> None:
        """A previously dispatched window came back from ``shard``."""

    def add_shard(self) -> int:
        """Grow the membership by one shard; returns the new shard id.

        The new shard always takes the next dense id (``shards`` before
        the call).  Policies with per-shard state override and extend.
        """
        self.shards += 1
        return self.shards - 1

    def remove_shard(self) -> int:
        """Shrink the membership by one shard; returns the retired id.

        Always retires the *highest* id so the remaining ids stay dense.
        The caller drains the retired shard before calling this.
        """
        if self.shards <= 1:
            raise ValueError("cannot remove the last shard")
        self.shards -= 1
        return self.shards

    def metrics(self) -> Dict[str, object]:
        """Router counters for the cluster snapshot."""
        return {"policy": self.name, "routed": self.routed}


class RoundRobinRouter(Router):
    """Windows cycle over shards in window-id order (paper deployment).

    Uses ``window_id % shards`` -- the same dispatch rule as the
    in-process :class:`~repro.cep.parallel.WindowParallelOperator`, so
    a sharded run distributes windows exactly like the logical
    parallel operator it replaces.
    """

    name = "round-robin"

    def route(self, window: Window, chain: str) -> int:
        self.routed += 1
        return window.window_id % self.shards


class HashKeyRouter(Router):
    """Windows stick to shards by a deterministic key hash.

    ``key`` extracts the routing key from the window; the default is
    the window id.  ``attribute`` is a convenience for the common case
    of keying on an attribute of the window's *opening* event (e.g.
    the striker id of a man-marking window, or a stock symbol), which
    keeps all windows of one entity on one shard.

    The hash is ``crc32`` over the key's string form -- stable across
    processes and Python invocations, unlike the salted builtin
    ``hash``.
    """

    name = "hash"

    def __init__(
        self,
        key: Optional[Callable[[Window], object]] = None,
        attribute: Optional[str] = None,
    ) -> None:
        super().__init__()
        if key is not None and attribute is not None:
            raise ValueError("pass either a key function or an attribute name")
        if attribute is not None:
            key = lambda window: (  # noqa: E731 - tiny adapter
                window.events[0].attr(attribute) if window.events else None
            )
        self.key = key if key is not None else (lambda window: window.window_id)

    def route(self, window: Window, chain: str) -> int:
        self.routed += 1
        digest = zlib.crc32(str(self.key(window)).encode("utf-8"))
        return digest % self.shards


class LeastLoadedRouter(Router):
    """Windows go to the shard with the least outstanding work.

    Load is the number of dispatched-but-unfinished window events per
    shard, maintained from the pipeline's dispatch/completion feedback.
    Ties break toward the lowest shard index, so routing is
    deterministic given the same feedback sequence.
    """

    name = "least-loaded"

    def bind(self, shards: int) -> "Router":
        super().bind(shards)
        self.loads = [0] * shards
        return self

    def route(self, window: Window, chain: str) -> int:
        self.routed += 1
        return self.loads.index(min(self.loads))

    def on_dispatch(self, shard: int, cost: int) -> None:
        self.loads[shard] += cost

    def on_complete(self, shard: int, cost: int) -> None:
        self.loads[shard] = max(0, self.loads[shard] - cost)

    def add_shard(self) -> int:
        shard = super().add_shard()
        self.loads.append(0)
        return shard

    def remove_shard(self) -> int:
        shard = super().remove_shard()
        self.loads.pop()
        return shard

    def metrics(self) -> Dict[str, object]:
        report = super().metrics()
        report["loads"] = list(self.loads)
        return report


class ConsistentHashRouter(Router):
    """Windows map to shards through a virtual-node hash ring.

    Each shard owns ``vnodes`` points on a ``crc32`` ring; a window's
    key hashes to a ring position and routes to the owner of the first
    point clockwise.  The property that matters for elasticity: when a
    shard joins it takes over only the ring arcs its own points land
    in, and when it leaves only its arcs fall to the survivors --
    expected movement is K/N of K distinct keys for one of N shards,
    versus nearly all keys under modulo policies.

    ``key``/``attribute`` mirror :class:`HashKeyRouter`; the default
    key is the window id.  The ring is rebuilt deterministically from
    (shard id, vnode index) alone, so every process derives the same
    ring for the same membership -- no coordination needed.
    """

    name = "consistent-hash"

    #: Points per shard.  64 keeps ownership within a few percent of
    #: uniform while the ring rebuild stays trivially cheap.
    DEFAULT_VNODES = 64

    def __init__(
        self,
        key: Optional[Callable[[Window], object]] = None,
        attribute: Optional[str] = None,
        vnodes: int = DEFAULT_VNODES,
    ) -> None:
        super().__init__()
        if vnodes <= 0:
            raise ValueError("vnodes must be positive")
        if key is not None and attribute is not None:
            raise ValueError("pass either a key function or an attribute name")
        if attribute is not None:
            key = lambda window: (  # noqa: E731 - tiny adapter
                window.events[0].attr(attribute) if window.events else None
            )
        self.key = key if key is not None else (lambda window: window.window_id)
        self.vnodes = vnodes
        self._ring: List[Tuple[int, int]] = []  # (point, shard) sorted
        self._points: List[int] = []  # ring points only, for bisect

    # ------------------------------------------------------------------
    @staticmethod
    def _point(shard: int, vnode: int) -> int:
        return zlib.crc32(f"shard:{shard}:vnode:{vnode}".encode("ascii"))

    def _rebuild(self) -> None:
        ring = [
            (self._point(shard, vnode), shard)
            for shard in range(self.shards)
            for vnode in range(self.vnodes)
        ]
        # tie-break by shard id so the ring order is total and identical
        # everywhere even on the (vanishingly rare) point collision
        ring.sort()
        self._ring = ring
        self._points = [point for point, _shard in ring]

    def bind(self, shards: int) -> "Router":
        super().bind(shards)
        self._rebuild()
        return self

    def add_shard(self) -> int:
        shard = super().add_shard()
        self._rebuild()
        return shard

    def remove_shard(self) -> int:
        shard = super().remove_shard()
        self._rebuild()
        return shard

    # ------------------------------------------------------------------
    def shard_for_key(self, key: object) -> int:
        """Ring lookup for an explicit key (exposed for tests/tools)."""
        digest = zlib.crc32(str(key).encode("utf-8"))
        index = bisect.bisect_right(self._points, digest)
        if index == len(self._ring):
            index = 0  # wrap: first point clockwise from the top
        return self._ring[index][1]

    def route(self, window: Window, chain: str) -> int:
        self.routed += 1
        return self.shard_for_key(self.key(window))

    def metrics(self) -> Dict[str, object]:
        report = super().metrics()
        report["vnodes"] = self.vnodes
        report["ring_size"] = len(self._ring)
        return report


_ROUTERS = {
    RoundRobinRouter.name: RoundRobinRouter,
    HashKeyRouter.name: HashKeyRouter,
    LeastLoadedRouter.name: LeastLoadedRouter,
    ConsistentHashRouter.name: ConsistentHashRouter,
}


def available_routers() -> list:
    """Registered routing policy names."""
    return sorted(_ROUTERS)


def create_router(spec: Union[str, Router, None], shards: int) -> Router:
    """Resolve ``spec`` (name, instance or ``None``) into a bound router."""
    if spec is None:
        router: Router = RoundRobinRouter()
    elif isinstance(spec, Router):
        router = spec
    elif isinstance(spec, str):
        if spec not in _ROUTERS:
            known = ", ".join(available_routers())
            raise ValueError(f"unknown router {spec!r}; registered: {known}")
        router = _ROUTERS[spec]()
    else:
        raise TypeError(f"router must be a name or Router instance, got {spec!r}")
    return router.bind(shards)

"""The cluster coordinator: shared state, merge-and-order, observability.

One coordinator per :class:`~repro.cluster.sharded.ShardedPipeline`.
It owns everything that must *not* be per-shard:

- the trained utility model (the single source of truth that
  :meth:`~repro.cluster.sharded.ShardedPipeline.retrain` broadcasts),
- the merge buffer that re-orders shard results back into the exact
  sequential emission order (windows are stamped with a dispatch index
  when routed; results are released in index order, making a sharded
  run's output provably identical to a sequential run's),
- per-shard metrics, drift signals and backpressure, aggregated into
  one :class:`ClusterSnapshot`.

Workers keep only replaceable state (matcher, shedder copy); the
coordinator keeps everything the cluster has to agree on.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cep.events import ComplexEvent


@dataclass
class ShardStatus:
    """One shard's health and workload, as of its last sync."""

    shard_id: int
    alive: bool = True
    pending_windows: int = 0  # dispatched, result not yet received
    pending_events: int = 0  # their total event count (backpressure)
    windows: int = 0
    memberships_kept: int = 0
    memberships_dropped: int = 0
    drop_rate: float = 0.0
    complex_events: int = 0
    busy_seconds: float = 0.0
    wall_seconds: float = 0.0
    utilization: float = 0.0
    batches_received: int = 0
    messages_received: int = 0
    model_versions: Dict[str, int] = field(default_factory=dict)
    model_fingerprints: Dict[str, str] = field(default_factory=dict)
    shedding_active: Dict[str, bool] = field(default_factory=dict)
    #: raw per-chain metrics dicts of the last sync (worker-side truth)
    chains: Dict[str, Dict[str, object]] = field(default_factory=dict)
    #: fault tolerance: times this shard's worker was respawned
    restarts: int = 0
    #: checkpoint counters from the worker's last sync (0 when
    #: checkpointing is off): files written, cumulative bytes, the
    #: virtual-clock stamp of the last file vs the latest window seen
    checkpoints: int = 0
    checkpoint_bytes: int = 0
    checkpoint_stamp: float = 0.0
    stamp: float = 0.0
    restored: bool = False

    @property
    def checkpoint_age(self) -> float:
        """Virtual seconds of processed stream not yet checkpointed."""
        return max(0.0, self.stamp - self.checkpoint_stamp)


@dataclass
class DriftSignal:
    """Coordinator-level drift check of one chain (match-rate collapse).

    The coordinator sees every merged detection and every dispatched
    window, so it can compare the live matches-per-window rate against
    the rate the deployed model was trained at -- the cluster-level
    analogue of :class:`repro.core.drift.DriftDetector`'s match-rate
    signal (per-shard hit rates would be biased by routing).
    """

    chain: str
    windows: int
    match_rate: Optional[float]
    trained_match_rate: float
    drifted: bool
    reason: str = ""


@dataclass
class ClusterSnapshot:
    """One cluster-level view: shards, routing, shedding, drift."""

    shards: List[ShardStatus]
    events_ingested: int
    windows_dispatched: Dict[str, int]
    complex_events: Dict[str, int]
    shedding: Dict[str, bool]
    drift: Dict[str, DriftSignal]
    router: Dict[str, object]
    transport: Dict[str, object]
    model_versions: Dict[str, int]
    #: fault tolerance / elasticity counters (defaulted so older
    #: constructors keep working)
    restarts: int = 0
    rebalances: int = 0
    duplicates_ignored: int = 0
    windows_replayed: int = 0

    @property
    def total_pending_events(self) -> int:
        """Cluster-wide backpressure: dispatched-but-unfinished events."""
        return sum(shard.pending_events for shard in self.shards)

    def drop_rate(self) -> float:
        """Cluster-wide membership drop rate."""
        kept = sum(s.memberships_kept for s in self.shards)
        dropped = sum(s.memberships_dropped for s in self.shards)
        total = kept + dropped
        return dropped / total if total else 0.0

    def utilization(self) -> List[float]:
        """Per-shard busy fractions, in shard order."""
        return [shard.utilization for shard in self.shards]

    def queue_depths(self) -> List[int]:
        """Per-shard outstanding window counts, in shard order."""
        return [shard.pending_windows for shard in self.shards]


class _MergeBuffer:
    """Re-orders one chain's shard results by dispatch index."""

    def __init__(self) -> None:
        self._pending: Dict[int, List[ComplexEvent]] = {}
        self._next_dispatch = 0
        self._next_release = 0
        self._released: List[ComplexEvent] = []

    def stamp(self) -> int:
        """Next dispatch index (called by the router path, in order)."""
        index = self._next_dispatch
        self._next_dispatch += 1
        return index

    def offer(self, index: int, events: List[ComplexEvent]) -> bool:
        """Accept one shard result and release any now-contiguous run.

        Returns ``False`` (and changes nothing) when ``index`` was
        already offered -- the exactly-once guard: a duplicated IPC
        batch or a replayed-then-also-delivered window merges once, in
        order, no matter how many copies of its result arrive.
        """
        if index < self._next_release or index in self._pending:
            return False
        self._pending[index] = events
        while self._next_release in self._pending:
            self._released.extend(self._pending.pop(self._next_release))
            self._next_release += 1
        return True

    @property
    def outstanding(self) -> int:
        """Dispatched windows whose results have not been released."""
        return self._next_dispatch - self._next_release

    def take_released(self) -> List[ComplexEvent]:
        """Return and clear the in-order detections released so far."""
        released = self._released
        self._released = []
        return released


class ClusterCoordinator:
    """Aggregates shard results and state for a sharded pipeline."""

    def __init__(
        self,
        chain_names: List[str],
        shards: int,
        trained_match_rates: Optional[Dict[str, float]] = None,
        drift_history: int = 200,
        drift_threshold: float = 0.3,
        drift_min_windows: int = 20,
    ) -> None:
        self.chain_names = list(chain_names)
        self.shard_status = [ShardStatus(shard_id=i) for i in range(shards)]
        self.events_ingested = 0
        self.windows_dispatched = {name: 0 for name in chain_names}
        self.complex_event_counts = {name: 0 for name in chain_names}
        self.model_versions = {name: 1 for name in chain_names}
        self.shedding = {name: False for name in chain_names}
        self._merge = {name: _MergeBuffer() for name in chain_names}
        self._trained_match_rates = dict(trained_match_rates or {})
        self._drift_threshold = drift_threshold
        self._drift_min_windows = drift_min_windows
        self._recent_matches: Dict[str, deque] = {
            name: deque(maxlen=drift_history) for name in chain_names
        }
        self._drift_history = drift_history
        # fault tolerance / elasticity counters
        self.rebalances = 0
        self.duplicates_ignored = 0
        self.windows_replayed = 0
        # chain totals of shards retired by scale-down, so cluster-wide
        # counters stay monotonic across membership changes
        self._retired_chains: Dict[str, Dict[str, int]] = {}

    # ------------------------------------------------------------------
    # dispatch / result bookkeeping
    # ------------------------------------------------------------------
    def stamp_dispatch(self, chain: str, shard: int, cost: int) -> int:
        """Record one routed window; returns its global dispatch index."""
        self.windows_dispatched[chain] += 1
        status = self.shard_status[shard]
        status.pending_windows += 1
        status.pending_events += cost
        return self._merge[chain].stamp()

    def on_result(
        self, chain: str, shard: int, index: int, cost: int,
        events: List[ComplexEvent],
    ) -> bool:
        """Fold one shard result into the merge buffer and counters.

        Returns ``False`` for a duplicate (already-merged) result --
        every counter is left untouched, so a duplicated IPC batch or
        a replayed window's second delivery is invisible in both the
        detections and the statistics.
        """
        if not self._merge[chain].offer(index, events):
            self.duplicates_ignored += 1
            return False
        if shard < len(self.shard_status):
            status = self.shard_status[shard]
            status.pending_windows = max(0, status.pending_windows - 1)
            status.pending_events = max(0, status.pending_events - cost)
        self.complex_event_counts[chain] += len(events)
        self._recent_matches[chain].append(len(events))
        return True

    def take_ordered(self, chain: str) -> List[ComplexEvent]:
        """In-order detections released since the last take."""
        return self._merge[chain].take_released()

    def outstanding(self, chain: Optional[str] = None) -> int:
        """Windows dispatched but not yet merged back."""
        if chain is not None:
            return self._merge[chain].outstanding
        return sum(buffer.outstanding for buffer in self._merge.values())

    def replay_cursor(self, chain: str) -> int:
        """First dispatch index not yet merged for ``chain``.

        Everything below the cursor has been released in order and must
        never be re-emitted; everything at or above it is fair game for
        replay after a worker death.  Together with the merge buffer's
        duplicate guard this is the exactly-once contract.
        """
        return self._merge[chain]._next_release  # noqa: SLF001 - own class

    # ------------------------------------------------------------------
    # fault tolerance / elastic membership
    # ------------------------------------------------------------------
    def record_restart(self, shard: int, replayed: int) -> None:
        """A dead worker was respawned with ``replayed`` windows re-sent."""
        self.shard_status[shard].restarts += 1
        self.windows_replayed += replayed

    def record_rebalance(self) -> None:
        """The membership changed and the key ranges were rerouted."""
        self.rebalances += 1

    def add_shard(self) -> int:
        """Track one more shard; returns its (dense) id."""
        shard_id = len(self.shard_status)
        self.shard_status.append(ShardStatus(shard_id=shard_id))
        return shard_id

    def remove_shard(self) -> int:
        """Stop tracking the highest shard id; returns the retired id.

        The retired shard's last-synced per-chain counters move into a
        retirement accumulator so :meth:`chain_totals` stays monotonic
        across scale-downs (a shrunk cluster must not appear to have
        un-processed windows).
        """
        if len(self.shard_status) <= 1:
            raise ValueError("cannot remove the last shard")
        status = self.shard_status.pop()
        for name, chain in status.chains.items():
            bucket = self._retired_chains.setdefault(
                name,
                {
                    "windows": 0,
                    "memberships_kept": 0,
                    "memberships_dropped": 0,
                    "complex_events": 0,
                    "shed_decisions": 0,
                    "shed_drops": 0,
                },
            )
            bucket["windows"] += int(chain.get("windows", 0))
            bucket["memberships_kept"] += int(chain.get("memberships_kept", 0))
            bucket["memberships_dropped"] += int(
                chain.get("memberships_dropped", 0)
            )
            bucket["complex_events"] += int(chain.get("complex_events", 0))
            bucket["shed_decisions"] += int(chain.get("shed_decisions", 0))
            bucket["shed_drops"] += int(chain.get("shed_drops", 0))
        return status.shard_id

    @property
    def restarts(self) -> int:
        """Total worker respawns across all live shards."""
        return sum(status.restarts for status in self.shard_status)

    # ------------------------------------------------------------------
    # shard metrics (sync replies)
    # ------------------------------------------------------------------
    def on_shard_metrics(self, shard: int, metrics: Dict[str, object]) -> None:
        """Fold one worker's sync metrics into its status row."""
        status = self.shard_status[shard]
        status.busy_seconds = metrics["busy_seconds"]
        status.wall_seconds = metrics["wall_seconds"]
        status.utilization = metrics["utilization"]
        status.batches_received = metrics["batches_received"]
        status.messages_received = metrics["messages_received"]
        if "checkpoints" in metrics:
            status.checkpoints = metrics["checkpoints"]
            status.checkpoint_bytes = metrics["checkpoint_bytes"]
            status.checkpoint_stamp = metrics["checkpoint_stamp"]
            status.stamp = metrics["stamp"]
            status.restored = metrics["restored"]
        windows = kept = dropped = detected = 0
        for name, chain_metrics in metrics["chains"].items():
            windows += chain_metrics["windows"]
            kept += chain_metrics["memberships_kept"]
            dropped += chain_metrics["memberships_dropped"]
            detected += chain_metrics["complex_events"]
            status.model_versions[name] = chain_metrics["model_version"]
            status.shedding_active[name] = chain_metrics["shedding_active"]
            if "model_fingerprint" in chain_metrics:
                status.model_fingerprints[name] = chain_metrics["model_fingerprint"]
            status.chains[name] = dict(chain_metrics)
        status.windows = windows
        status.memberships_kept = kept
        status.memberships_dropped = dropped
        total = kept + dropped
        status.drop_rate = dropped / total if total else 0.0
        status.complex_events = detected

    def chain_totals(self) -> Dict[str, Dict[str, object]]:
        """Worker-side metrics aggregated per chain across all shards.

        Sums of the last sync's counters (windows, memberships,
        detections, shed decisions/drops) keyed by chain name -- the
        cluster analogue of the worker half of a sequential chain's
        stage metrics.  As-of-last-sync, like every shard-side view.
        """
        totals: Dict[str, Dict[str, object]] = {}
        for name in self.chain_names:
            retired = self._retired_chains.get(name, {})
            windows = retired.get("windows", 0)
            kept = retired.get("memberships_kept", 0)
            dropped = retired.get("memberships_dropped", 0)
            detected = retired.get("complex_events", 0)
            decisions = retired.get("shed_decisions", 0)
            drops = retired.get("shed_drops", 0)
            active = False
            for status in self.shard_status:
                chain = status.chains.get(name)
                if chain is None:
                    continue
                windows += chain["windows"]
                kept += chain["memberships_kept"]
                dropped += chain["memberships_dropped"]
                detected += chain["complex_events"]
                decisions += chain.get("shed_decisions", 0)
                drops += chain.get("shed_drops", 0)
                active = active or bool(chain.get("shedding_active"))
            total = kept + dropped
            totals[name] = {
                "windows": windows,
                "memberships_kept": kept,
                "memberships_dropped": dropped,
                "drop_rate": dropped / total if total else 0.0,
                "complex_events": detected,
                "shed_decisions": decisions,
                "shed_drops": drops,
                "shedding_active": active,
            }
        return totals

    # ------------------------------------------------------------------
    # drift
    # ------------------------------------------------------------------
    def drift_signals(self) -> Dict[str, DriftSignal]:
        """Cluster-level match-rate drift per chain."""
        signals: Dict[str, DriftSignal] = {}
        for name in self.chain_names:
            recent = self._recent_matches[name]
            trained = self._trained_match_rates.get(name, 0.0)
            rate = sum(recent) / len(recent) if recent else None
            if len(recent) < self._drift_min_windows:
                signals[name] = DriftSignal(
                    name, len(recent), rate, trained, False, "warming up"
                )
            elif (
                rate is not None
                and trained > 0.0
                and rate < self._drift_threshold * trained
            ):
                signals[name] = DriftSignal(
                    name,
                    len(recent),
                    rate,
                    trained,
                    True,
                    f"match rate {rate:.2f} collapsed vs trained {trained:.2f}",
                )
            else:
                signals[name] = DriftSignal(
                    name, len(recent), rate, trained, False, "model fits"
                )
        return signals

    # ------------------------------------------------------------------
    # snapshot
    # ------------------------------------------------------------------
    def snapshot(
        self,
        router_metrics: Dict[str, object],
        transport_metrics: Dict[str, object],
        alive: List[bool],
    ) -> ClusterSnapshot:
        """Assemble the cluster-level snapshot."""
        for status, shard_alive in zip(self.shard_status, alive):
            status.alive = shard_alive
        return ClusterSnapshot(
            shards=list(self.shard_status),
            events_ingested=self.events_ingested,
            windows_dispatched=dict(self.windows_dispatched),
            complex_events=dict(self.complex_event_counts),
            shedding=dict(self.shedding),
            drift=self.drift_signals(),
            router=dict(router_metrics),
            transport=dict(transport_metrics),
            model_versions=dict(self.model_versions),
            restarts=self.restarts,
            rebalances=self.rebalances,
            duplicates_ignored=self.duplicates_ignored,
            windows_replayed=self.windows_replayed,
        )

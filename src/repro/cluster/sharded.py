"""`ShardedPipeline`: a Pipeline executed across real worker processes.

The sharded runtime splits a built :class:`repro.pipeline.Pipeline`
into the three roles of a window-parallel CEP deployment (paper §5,
RIP/SPECTRE shape):

- the **router** (parent process) runs every chain's ingress half --
  admission, custom middleware, window assignment -- and ships each
  *complete window* to a shard chosen by the routing policy, batched
  over the IPC queues;
- **N shard workers** (forked processes) run the egress half -- the
  shedding decision per (event, position) and the pattern matcher --
  over their share of windows;
- the **coordinator** (parent process) owns the trained model,
  broadcasts hot model swaps and coordinated shedding state to every
  shard, and merges shard results back into exact sequential emission
  order.

State ownership is strict: workers hold only replaceable copies
(matcher, shedder); the model, the window-size predictor, the overload
detector and all routing/merge state live in the parent.  Workers are
forked *after* ``train()``/``deploy()``, so they inherit exactly the
configured shedder; later changes reach them only through coordinator
broadcasts -- which is what makes detections independent of the shard
count.

Typical use::

    sharded = (
        Pipeline.builder()
        .query(query)
        .shedder("espice", f=0.8)
        .distributed(shards=4, router="round-robin", batch_size=32)
        .build()
    )
    sharded.train(train_stream).deploy(...)
    with sharded:
        result = sharded.run(live_stream)
        sharded.retrain(fresh_stream)      # hot swap on every shard
        print(sharded.snapshot())
"""

from __future__ import annotations

import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.cep.events import ComplexEvent, Event
from repro.cluster.coordinator import ClusterCoordinator, ClusterSnapshot
from repro.cluster.elastic import Autoscaler
from repro.cluster.routing import Router, create_router
from repro.cluster.transport import (
    BatchingSender,
    FailureDetector,
    drain,
    drain_for,
)
from repro.cluster.worker import ShardChain, shard_main
from repro.core.persistence import (
    STATE_FORMAT_VERSION,
    model_to_dict,
    window_to_dict,
    write_json_atomic,
)
from repro.pipeline.batching import EventBatch, iter_batches
from repro.pipeline.pipeline import Pipeline
from repro.shedding.base import DropCommand

#: Capacity (in batches) of each worker's worker->coordinator result
#: queue.  Generous -- the merge loop drains every queue inside every
#: feed and sync wait -- but finite, so a stalled coordinator exerts
#: backpressure on the shards instead of buffering their results in
#: unbounded parent-process memory.  Per-worker (not shared): a worker
#: killed mid-``put`` can leave a shared queue's write lock held and
#: its stream corrupt, which would poison every surviving shard;
#: per-worker queues confine that damage to the dead shard, whose
#: queue the recovery path discards wholesale.
RESULT_QUEUE_BATCHES = 4096


@dataclass
class ShardedResult:
    """Outcome of one :meth:`ShardedPipeline.run` sharded replay."""

    matches: Dict[str, List[ComplexEvent]]
    events_fed: int
    wall_seconds: float
    snapshot: ClusterSnapshot

    @property
    def complex_events(self) -> List[ComplexEvent]:
        """The first (or only) query's detections, in sequential order."""
        return next(iter(self.matches.values()), [])

    def for_query(self, name: str) -> List[ComplexEvent]:
        """Detections of query ``name``."""
        return self.matches[name]

    def totals(self) -> Dict[str, int]:
        """Detections per query."""
        return {name: len(events) for name, events in self.matches.items()}

    @property
    def events_per_second(self) -> float:
        """Ingested events per wall-clock second."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.events_fed / self.wall_seconds


class _ChainState:
    """Router-side state of one chain: predictor, dispatch bookkeeping."""

    def __init__(self, chain) -> None:
        self.chain = chain
        self.name = chain.query.name
        # the window-size predictor is coordinator-owned shared state:
        # seeded from the chain's (possibly primed) operator so a
        # sharded run predicts exactly like the sequential run would
        self.size_sum, self.size_count = chain.operator.predictor_state
        self.pending_events = 0  # this chain's in-flight backpressure
        self.collected: List[ComplexEvent] = []

    def predict(self, window) -> float:
        """Update-then-predict, mirroring ``WindowParallelOperator``."""
        if not window.truncated:
            self.size_sum += window.size
            self.size_count += 1
        if self.size_count == 0:
            return 0.0
        return self.size_sum / self.size_count


class ShardedPipeline:
    """Multi-process sharded execution of a built pipeline."""

    def __init__(
        self,
        pipeline: Pipeline,
        shards: int,
        router: Union[str, Router, None] = None,
        batch_size: int = 32,
        linger: float = 0.0,
        sync_timeout: float = 120.0,
        fault_tolerant: bool = False,
        checkpoint_dir: Optional[str] = None,
        checkpoint_interval: int = 200,
        heartbeat_timeout: float = 30.0,
        autoscaler: Optional[Autoscaler] = None,
    ) -> None:
        if shards <= 0:
            raise ValueError("shard count must be positive")
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        if checkpoint_interval <= 0:
            raise ValueError("checkpoint interval must be positive")
        for chain in pipeline.chains:
            if chain.operator is None:
                raise ValueError(
                    "sharded execution needs sequential chains: windows are "
                    "already the unit of distribution across shards (query "
                    f"{chain.query.name!r} uses .parallel({chain.degree}))"
                )
            if chain.adaptive_options is not None:
                raise ValueError(
                    "adaptive retraining is coordinator work in a cluster: "
                    "drop .adaptive() and call retrain() on the "
                    "ShardedPipeline (drift signals appear in snapshot())"
                )
            # egress = [shedding, match, emit, *custom]; shed+match run
            # on the shards and emission happens at merge time, so a
            # custom egress stage would silently never execute
            if len(chain.egress) > 3:
                raise ValueError(
                    "custom egress stages do not run in sharded mode "
                    "(shedding/matching happen on the shard workers); "
                    "use ingress stages (they run on the router) or a "
                    ".sink() (fires on the merged, ordered detections)"
                )
        self.pipeline = pipeline
        self.shards = shards
        self.router = create_router(router, shards)
        self.batch_size = batch_size
        self.linger = linger
        self.sync_timeout = sync_timeout
        # fault tolerance: with fault_tolerant=True a dead worker is
        # respawned (resuming from its checkpoint when checkpoint_dir
        # is set) and its unacked windows are replayed; without it a
        # worker death fails the run, exactly as before
        self.fault_tolerant = fault_tolerant
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_interval = checkpoint_interval
        self.autoscaler = autoscaler
        self.started = False
        self._ctx = multiprocessing.get_context("fork")
        self._workers: List[multiprocessing.Process] = []
        self._senders: List[BatchingSender] = []
        self._in_queues: list = []
        self._out_queues: list = []
        self._chain_states: List[_ChainState] = []
        #: (chain, dispatch index) -> (shard, cost, replay entry); the
        #: entry -- the (index, window, predicted_ws) wire tuple -- is
        #: retained only in fault-tolerant mode, where it is the replay
        #: buffer for windows a dead worker never acked
        self._in_flight: Dict[Tuple[str, int], Tuple[int, int, Optional[tuple]]] = {}
        self._sync_seen: set = set()
        self._detector_shedding: Dict[str, bool] = {}
        #: last coordinated-shedding broadcast per chain, re-sent to
        #: respawned and scaled-up workers (detector-driven commands
        #: exist only as broadcasts, so a fresh fork would miss them)
        self._last_command: Dict[str, Tuple[Optional[DropCommand], bool]] = {}
        self._sync_token = 0
        self._last_check = 0.0
        #: live-feed micro-batch of the serve surface (feed/finish)
        self._live_batch: Optional[EventBatch] = None
        self._failure_detector = FailureDetector(timeout=heartbeat_timeout)
        self._windows_since_checkpoint = 0
        self.coordinator: Optional[ClusterCoordinator] = None
        self.observability = None
        self._obs_collector = None

    # ------------------------------------------------------------------
    # pipeline lifecycle proxies (all before start())
    # ------------------------------------------------------------------
    @property
    def chains(self):
        """The wrapped pipeline's query chains."""
        return self.pipeline.chains

    @property
    def model(self):
        """The first (or only) chain's trained model."""
        return self.pipeline.model

    @property
    def models(self):
        """Trained models per query name."""
        return self.pipeline.models

    def train(self, stream: Iterable[Event]) -> "ShardedPipeline":
        """Fit every chain's model (coordinator-side; before start)."""
        self._require_not_started("train")
        self.pipeline.train(stream)
        return self

    def warm(self, stream: Iterable[Event]) -> "ShardedPipeline":
        """Warm online shedder statistics (before start)."""
        self._require_not_started("warm")
        self.pipeline.warm(stream)
        return self

    def deploy(self, **kwargs) -> "ShardedPipeline":
        """Build shedders/detectors on the inner pipeline (before start)."""
        self._require_not_started("deploy")
        self.pipeline.deploy(**kwargs)
        return self

    def _require_not_started(self, what: str) -> None:
        if self.started:
            raise RuntimeError(
                f"{what}() must happen before start(): workers inherit the "
                "configured pipeline at fork (use retrain() for live model "
                "updates)"
            )

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ShardedPipeline":
        """Fork the shard workers (idempotent)."""
        if self.started:
            return self
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "sharded execution requires the 'fork' start method: "
                "queries carry predicates (closures) that cannot cross a "
                "spawn boundary"
            )
        chains = self.pipeline.chains
        self._chain_states = [_ChainState(chain) for chain in chains]
        trained_rates = {}
        for chain in chains:
            model = chain.model
            if model is not None and model.windows_trained > 0:
                trained_rates[chain.query.name] = (
                    model.matches_trained / model.windows_trained
                )
        self.coordinator = ClusterCoordinator(
            [chain.query.name for chain in chains],
            shards=self.shards,
            trained_match_rates=trained_rates,
        )
        for chain in chains:
            self.coordinator.shedding[chain.query.name] = bool(
                chain.shedder is not None and chain.shedder.active
            )
        self._detector_shedding = {
            chain.query.name: False for chain in chains
        }
        self._workers = []
        self._senders = []
        self._in_queues = []
        self._out_queues = []
        self._in_flight = {}
        if self.checkpoint_dir is not None:
            os.makedirs(self.checkpoint_dir, exist_ok=True)
        for shard_id in range(self.shards):
            self._spawn_shard(shard_id)
        self._last_check = time.monotonic()
        self.started = True
        return self

    def _checkpoint_path(self, shard_id: int) -> Optional[str]:
        """Stable per-shard checkpoint file (survives respawns)."""
        if self.checkpoint_dir is None:
            return None
        return os.path.join(self.checkpoint_dir, f"shard-{shard_id}.json")

    def _spawn_shard(self, shard_id: int) -> None:
        """Fork one worker and wire its queues/sender at ``shard_id``.

        Used by :meth:`start` for the initial membership and by the
        recovery and scale-up paths for later joins: the worker forks
        from the *current* parent, so it inherits the latest trained
        model and parent-side shedder state; broadcast-only state (the
        detector's drop commands) is re-sent by the caller.
        """
        chains = self.pipeline.chains
        coordinator = self.coordinator
        # the per-shard feed stays unbounded by design: the router
        # must never block on a slow or *dead* shard (worker death
        # is property-tested), so bounded-ness is enforced upstream
        # by BatchingSender flow control plus the coordinator's
        # queue-depth checks, not by a blocking put
        in_queue = self._ctx.Queue()  # repro-lint: disable=R004 router must not block on a dead shard; see comment
        # result path: this worker blocks (finite flow control) once
        # the merge loop falls RESULT_QUEUE_BATCHES batches behind --
        # the parent drains every out-queue inside feed/sync waits, so
        # the bound is backpressure, not a deadlock risk
        out_queue = self._ctx.Queue(maxsize=RESULT_QUEUE_BATCHES)
        # per-shard chain state is built pre-fork so each worker
        # owns a private matcher but inherits the shared shedder
        shard_chains = {
            chain.query.name: ShardChain(
                chain.query,
                chain.shedder,
                observe=self.observability is not None,
                model_version=(
                    coordinator.model_versions[chain.query.name]
                    if coordinator is not None
                    else 1
                ),
            )
            for chain in chains
        }
        process = self._ctx.Process(
            target=shard_main,
            args=(
                shard_id,
                shard_chains,
                in_queue,
                out_queue,
                self.batch_size,
                self.linger,
            ),
            kwargs={
                "checkpoint_path": self._checkpoint_path(shard_id),
                "checkpoint_interval": self.checkpoint_interval,
            },
            daemon=True,
            name=f"repro-shard-{shard_id}",
        )
        process.start()
        sender = BatchingSender(
            in_queue, batch_size=self.batch_size, linger=self.linger
        )
        if shard_id == len(self._workers):
            self._workers.append(process)
            self._in_queues.append(in_queue)
            self._out_queues.append(out_queue)
            self._senders.append(sender)
        else:
            self._workers[shard_id] = process
            self._in_queues[shard_id] = in_queue
            self._out_queues[shard_id] = out_queue
            self._senders[shard_id] = sender
        self._failure_detector.register(shard_id)

    def _resend_broadcast_state(self, shard_id: int) -> None:
        """Replay broadcast-only chain state to a freshly forked worker."""
        sender = self._senders[shard_id]
        for name, (command, active) in self._last_command.items():
            sender.send(("cmd", name, command, active))
        sender.flush()

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop every worker (idempotent; terminates stragglers)."""
        if not self.started:
            return
        for sender in self._senders:
            try:
                sender.send(("stop",))
                sender.flush()
            except (OSError, ValueError):  # queue already gone
                pass
        for process in self._workers:
            process.join(timeout=timeout)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        # release the queues without joining their feeder threads: after
        # a worker death the in-queue may hold undeliverable pickled
        # windows, and waiting for them to flush would hang interpreter
        # exit (multiprocessing joins feeder threads atexit)
        for q in [*self._in_queues, *self._out_queues]:
            if q is None:
                continue
            q.cancel_join_thread()
            q.close()
        self._workers = []
        self._senders = []
        self._in_queues = []
        self._out_queues = []
        self.started = False

    def __enter__(self) -> "ShardedPipeline":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.shutdown(timeout=0.5)
        except Exception:
            pass

    # ------------------------------------------------------------------
    # the sharded run
    # ------------------------------------------------------------------
    def run(self, stream: Iterable[Event]) -> ShardedResult:
        """Replay ``stream`` through the cluster; merge-and-order results.

        The router ingests events in stream order -- micro-batched into
        :class:`~repro.pipeline.batching.EventBatch` objects of
        ``batch_size`` events -- ships each batch's complete windows to
        the shards as single ``winbatch`` messages (the batch formed at
        ingress is what travels; windows are not re-wrapped one message
        at a time), and the coordinator releases detections in dispatch
        order: the returned per-query lists are identical (contents
        *and* order) to a sequential ``Pipeline.run`` /
        ``simulate_pipeline`` of the same deployment.
        """
        self.start()
        coordinator = self.coordinator
        t_start = time.perf_counter()
        events_fed = 0
        for batch in iter_batches(stream, self.batch_size):
            self._ingest_batch(batch, live=False)
            events_fed += len(batch.events)
        # end of stream: still-open windows flush as truncated windows
        for state in self._chain_states:
            per_shard = {}
            for window in state.chain.window_assign.flush():
                shard, entry = self._stamp(state, window)
                per_shard.setdefault(shard, []).append(entry)
            self._ship(state, per_shard)
        self._sync()
        wall = time.perf_counter() - t_start

        matches: Dict[str, List[ComplexEvent]] = {}
        for state in self._chain_states:
            state.collected.extend(coordinator.take_ordered(state.name))
            ordered = state.collected
            state.collected = []
            if ordered:
                # sinks fire here, in sequential order (batch semantics:
                # sharded emission happens at merge time, not per event)
                state.chain.emit.dispatch(ordered)
            matches[state.name] = ordered
        return ShardedResult(
            matches=matches,
            events_fed=events_fed,
            wall_seconds=wall,
            snapshot=self.snapshot(),
        )

    def _ingest_batch(self, batch: EventBatch, live: bool) -> None:
        """Run one event batch through every chain's ingress and ship it.

        The shared per-batch step of :meth:`run` (replay) and the live
        feed surface (:meth:`feed`/:meth:`feed_many`): ingress stages,
        window stamping/routing, the ``winbatch`` ship, a result drain
        and the periodic health/overload duty.  ``live`` selects the
        overload-check semantics (see :meth:`_check_overload`).
        """
        coordinator = self.coordinator
        # bounded queues need per-event admission; the batched ingress
        # is only equivalent when rejections cannot depend on drain
        # interleaving (see Pipeline.run)
        batched_ingress = self.pipeline.config.queue_capacity is None
        for state in self._chain_states:
            chain = state.chain
            if batched_ingress:
                # synchronous drain, like QueryChain.run_batch: the
                # staging depth of the batch is not backlog
                assign_stage = chain.window_assign
                depth_before = assign_stage.max_queue_depth
                chain.ingest_batch(batch)
                items = chain.queue.pop_all()
                assign_stage.max_queue_depth = max(
                    depth_before, 1 if items else 0
                )
            else:
                items = []
                for event, now in zip(batch.events, batch.nows):
                    if chain.ingest(event, now):
                        queue = chain.queue
                        while queue:
                            items.append(queue.pop())
            per_shard: Dict[int, List[tuple]] = {}
            for item in items:
                for window in item.closed_windows:
                    shard, entry = self._stamp(state, window)
                    per_shard.setdefault(shard, []).append(entry)
            self._ship(state, per_shard)
        coordinator.events_ingested += len(batch.events)
        self._drain_results()
        if self.fault_tolerant:
            self._check_health()
        self._check_overload(live=live)

    # ------------------------------------------------------------------
    # live feed surface (the serve front door drives these)
    # ------------------------------------------------------------------
    def feed(
        self, event: Event, now: Optional[float] = None
    ) -> Dict[str, List[ComplexEvent]]:
        """Push one live event into the cluster (serve-compatible).

        The sharded twin of :meth:`repro.pipeline.Pipeline.feed`:
        events buffer into a ``batch_size`` micro-batch; a full batch
        runs the ingress half, ships windows to the shards and releases
        whatever the coordinator has merged so far -- in dispatch
        order, through the emit stage, so subscribed sinks observe the
        exact sequential detection stream.  Returns the detections
        released as a consequence of this call (usually empty while
        buffering).
        """
        self.start()
        if self._live_batch is None:
            self._live_batch = EventBatch()
        self._live_batch.append(
            event, now if now is not None else event.timestamp
        )
        if len(self._live_batch) >= self.batch_size:
            return self.flush_pending()
        return {state.name: [] for state in self._chain_states}

    def feed_many(
        self, events: Iterable[Event], now: Optional[float] = None
    ) -> Dict[str, List[ComplexEvent]]:
        """Push a slice of live events, in order (serve-compatible)."""
        self.start()
        out: Dict[str, List[ComplexEvent]] = {
            state.name: [] for state in self._chain_states
        }
        for event in events:
            for name, detected in self.feed(event, now=now).items():
                if detected:
                    out[name].extend(detected)
        return out

    def flush_pending(self) -> Dict[str, List[ComplexEvent]]:
        """Run the buffered live micro-batch and release merged results."""
        self.start()
        out: Dict[str, List[ComplexEvent]] = {
            state.name: [] for state in self._chain_states
        }
        batch, self._live_batch = self._live_batch, None
        if batch:
            self._ingest_batch(batch, live=True)
        self._release(out)
        return out

    def finish(self) -> Dict[str, List[ComplexEvent]]:
        """End a live feed session: flush buffers, windows and shards.

        The sharded twin of :meth:`repro.pipeline.Pipeline.finish`:
        processes the pending micro-batch, completes still-open windows
        as truncated windows on the shards, waits for every shard to
        catch up (sync barrier) and releases the remaining detections
        through the emit stage.  The cluster stays usable: later feeds
        simply open new windows.
        """
        if not self.started:
            return {state.name: [] for state in self._chain_states}
        out = self.flush_pending()
        for state in self._chain_states:
            per_shard: Dict[int, List[tuple]] = {}
            for window in state.chain.window_assign.flush():
                shard, entry = self._stamp(state, window)
                per_shard.setdefault(shard, []).append(entry)
            self._ship(state, per_shard)
        self._sync()
        self._release(out)
        return out

    def _release(self, out: Dict[str, List[ComplexEvent]]) -> None:
        """Dispatch everything the merge buffer has released, in order."""
        for state in self._chain_states:
            ready = self.coordinator.take_ordered(state.name)
            if ready:
                state.chain.emit.dispatch(ready)
                out[state.name].extend(ready)

    def backpressure(self) -> Dict[str, Dict[str, object]]:
        """Per-chain queue/rejection counters plus cluster backpressure."""
        report: Dict[str, Dict[str, object]] = {}
        for state in self._chain_states or [
            _ChainState(chain) for chain in self.pipeline.chains
        ]:
            entry = dict(state.chain.backpressure())
            entry["cluster_pending_events"] = state.pending_events
            report[state.name] = entry
        return report

    def _stamp(self, state: _ChainState, window) -> Tuple[int, tuple]:
        """Route + stamp one window; returns its shard and wire entry."""
        predicted = state.predict(window)
        shard = self.router.route(window, state.name)
        cost = window.size
        self.router.on_dispatch(shard, cost)
        index = self.coordinator.stamp_dispatch(state.name, shard, cost)
        entry = (index, window, predicted)
        # fault tolerance keeps the wire entry until the result merges:
        # it is the replay buffer for a dead worker's unacked windows
        self._in_flight[(state.name, index)] = (
            shard,
            cost,
            entry if self.fault_tolerant else None,
        )
        state.pending_events += cost
        if self.checkpoint_dir is not None:
            self._windows_since_checkpoint += 1
            if self._windows_since_checkpoint >= self.checkpoint_interval:
                self.checkpoint_coordinator()
        return shard, entry

    def _ship(self, state: _ChainState, per_shard: Dict[int, List[tuple]]) -> None:
        """Send each shard its share of a batch as one ``winbatch``."""
        for shard, entries in per_shard.items():
            self._senders[shard].send_now(("winbatch", state.name, entries))

    def _dispatch(self, state: _ChainState, window) -> None:
        """Ship one window on its own (kept for targeted tests/tools)."""
        shard, entry = self._stamp(state, window)
        index, window, predicted = entry
        self._senders[shard].send(("win", state.name, index, window, predicted))

    def _drain_results(self, block_timeout: Optional[float] = None) -> None:
        if block_timeout is not None:
            # split the blocking budget across the per-worker queues so
            # the wait loop's cadence is independent of the shard count
            per_queue = max(0.005, block_timeout / max(1, len(self._out_queues)))
            for out_queue in list(self._out_queues):
                self._consume(drain_for(out_queue, per_queue))
        for out_queue in list(self._out_queues):
            self._consume(drain(out_queue))

    def _consume(self, messages) -> None:
        coordinator = self.coordinator
        for message in messages:
            tag = message[0]
            if tag == "resbatch":
                _tag, shard, chain_name, results = message
                self._failure_detector.observe(shard)
                state = self._chain_state(chain_name)
                for index, events in results:
                    info = self._in_flight.pop((chain_name, index), None)
                    if info is None:
                        # already merged: a duplicated IPC batch, or a
                        # replayed window whose original result also
                        # survived.  Exactly-once: ignore, count.
                        coordinator.duplicates_ignored += 1
                        continue
                    _shard, cost, _entry = info
                    self.router.on_complete(shard, cost)
                    state.pending_events -= cost
                    coordinator.on_result(chain_name, shard, index, cost, events)
            elif tag == "res":
                _tag, shard, chain_name, index, events = message
                self._failure_detector.observe(shard)
                info = self._in_flight.pop((chain_name, index), None)
                if info is None:
                    coordinator.duplicates_ignored += 1
                    continue
                _shard, cost, _entry = info
                self.router.on_complete(shard, cost)
                self._chain_state(chain_name).pending_events -= cost
                coordinator.on_result(chain_name, shard, index, cost, events)
            elif tag == "sync":
                _tag, shard, token, metrics = message
                self._failure_detector.observe(shard)
                coordinator.on_shard_metrics(shard, metrics)
                self._sync_seen.add((shard, token))
            elif tag == "hb":
                # idle heartbeat: pure liveness evidence
                self._failure_detector.observe(message[1])
            elif tag == "err":
                _tag, shard, trace = message
                raise RuntimeError(
                    f"shard worker {shard} failed:\n{trace}"
                )

    def _chain_state(self, name: str) -> _ChainState:
        for state in self._chain_states:
            if state.name == name:
                return state
        raise KeyError(name)

    # ------------------------------------------------------------------
    # sync barrier
    # ------------------------------------------------------------------
    def _sync(self) -> None:
        """Flush all transport, wait until every shard caught up."""
        self._sync_token += 1
        token = self._sync_token
        self._sync_seen = set()
        for sender in self._senders:
            sender.send(("sync", token))
            sender.flush()
        deadline = time.monotonic() + self.sync_timeout
        expected = {(shard, token) for shard in range(self.shards)}
        while not expected.issubset(self._sync_seen):
            self._drain_results(block_timeout=0.05)
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"cluster sync timed out after {self.sync_timeout:.0f}s "
                    f"(missing shards: "
                    f"{sorted(s for s, t in expected - self._sync_seen)})"
                )
            if self.fault_tolerant:
                # a shard that died holding this token's sync message
                # must get the token again after recovery, or the
                # barrier would wait out the full timeout for nothing
                self._check_health(resync_token=token)
            else:
                self._raise_on_dead_workers()

    def _raise_on_dead_workers(self) -> None:
        dead = [
            process.name
            for process in self._workers
            if not process.is_alive()
        ]
        if dead:
            raise RuntimeError(
                f"shard worker(s) died: {', '.join(dead)} -- "
                "results for their in-flight windows are lost; "
                "restart the ShardedPipeline"
            )

    # ------------------------------------------------------------------
    # fault detection and recovery
    # ------------------------------------------------------------------
    def _check_health(self, resync_token: Optional[int] = None) -> None:
        """Detect dead or wedged workers and recover them in place.

        ``Process.is_alive()`` is the authoritative death signal; the
        heartbeat failure detector additionally catches a worker that
        is alive but silent while owing results (wedged in a syscall,
        stopped by an operator) -- such a worker is killed and then
        recovered through the same path, bounding the stall at the
        heartbeat timeout instead of the sync timeout.
        """
        suspects = set(self._failure_detector.suspects())
        for shard_id in range(self.shards):
            process = self._workers[shard_id]
            if process.is_alive():
                if shard_id in suspects and self._shard_pending(shard_id) > 0:
                    # silent while owing results: treat as failed.  The
                    # kill is safe because recovery discards both of
                    # the worker's queues wholesale.
                    process.kill()
                    process.join(timeout=5.0)
                else:
                    continue
            self._recover_shard(shard_id, resync_token)

    def _shard_pending(self, shard_id: int) -> int:
        """Windows dispatched to ``shard_id`` whose results are owed."""
        return sum(
            1
            for (_chain, _index), (shard, _cost, _entry) in self._in_flight.items()
            if shard == shard_id
        )

    def _recover_shard(self, shard_id: int, resync_token: Optional[int]) -> None:
        """Respawn a dead worker and replay its unacked windows.

        Recovery protocol (exactly-once):

        1. salvage -- drain whatever results the dead worker got out
           before dying (each one retires its window from the replay
           set);
        2. discard both of its queues (a kill -9 mid-``put`` can leave
           them corrupt; they are private to this shard, so nothing
           else is lost);
        3. respawn at the same shard id -- the fresh fork restores the
           shard checkpoint at boot (when checkpointing is on) and the
           parent re-sends broadcast-only state (drop commands);
        4. replay the windows still in flight to this shard, in
           dispatch order, from the coordinator's replay buffer; the
           merge buffer's duplicate guard makes a salvaged-and-replayed
           result merge exactly once;
        5. re-send the in-progress sync token, if the death happened
           inside a barrier.
        """
        old_out = self._out_queues[shard_id]
        try:
            # salvage: anything the worker shipped completely is real
            self._consume(drain(old_out, max_batches=RESULT_QUEUE_BATCHES))
        except RuntimeError:
            # the worker reported an application error before dying --
            # respawning would only crash-loop on the same windows
            raise
        except Exception:  # pragma: no cover - queue corrupted mid-put
            pass
        for old_queue in (self._in_queues[shard_id], old_out):
            try:
                old_queue.cancel_join_thread()
                old_queue.close()
            except Exception:  # pragma: no cover - already torn down
                pass
        self._spawn_shard(shard_id)
        self._resend_broadcast_state(shard_id)
        replay: Dict[str, List[tuple]] = {}
        for (chain_name, index), (shard, _cost, entry) in sorted(
            self._in_flight.items(), key=lambda item: item[0][1]
        ):
            if shard == shard_id and entry is not None:
                replay.setdefault(chain_name, []).append(entry)
        sender = self._senders[shard_id]
        replayed = 0
        for chain_name, entries in replay.items():
            sender.send_now(("winbatch", chain_name, entries))
            replayed += len(entries)
        if resync_token is not None:
            sender.send(("sync", resync_token))
            sender.flush()
        self.coordinator.record_restart(shard_id, replayed)

    def ping(self) -> ClusterSnapshot:
        """Round-trip a sync barrier and return a fresh snapshot."""
        self.start()
        self._sync()
        return self.snapshot()

    # ------------------------------------------------------------------
    # elasticity
    # ------------------------------------------------------------------
    def scale_up(self) -> int:
        """Add one shard worker; returns its id.

        The new worker forks from the current parent (so it carries the
        latest model and shedder state), joins the routing membership,
        and -- under the consistent-hash policy -- takes over only its
        own key ranges: windows already dispatched elsewhere are
        unaffected, and the merge buffer keeps releasing detections in
        dispatch order, so the output stream is oblivious to the join.
        """
        if not self.started:
            raise RuntimeError("scale_up() needs start() first")
        shard_id = self.router.add_shard()
        self.coordinator.add_shard()
        self.shards += 1
        self._spawn_shard(shard_id)
        self._resend_broadcast_state(shard_id)
        self.coordinator.record_rebalance()
        return shard_id

    def scale_down(self) -> int:
        """Retire the highest-id shard worker; returns the retired id.

        Leave protocol: the shard exits the routing membership first
        (no new windows can reach it), then the coordinator waits for
        every window it still owes -- so nothing is lost -- takes a
        final metrics sync (its counters retire into the cluster
        totals), and only then stops the worker and discards its
        queues.
        """
        if not self.started:
            raise RuntimeError("scale_down() needs start() first")
        if self.shards <= 1:
            raise ValueError("cannot scale below one shard")
        retiring = self.router.remove_shard()
        # drain: the retiring shard still owes results for windows
        # routed before the membership change
        deadline = time.monotonic() + self.sync_timeout
        while self._shard_pending(retiring) > 0:
            self._drain_results(block_timeout=0.05)
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"scale_down timed out draining shard {retiring}"
                )
            if self.fault_tolerant:
                self._check_health()
            else:
                self._raise_on_dead_workers()
        # final metrics sync so the retiring shard's counters fold into
        # the coordinator's retirement accumulator, keeping cluster
        # totals monotonic across the membership change
        self._sync()
        sender = self._senders[retiring]
        try:
            sender.send(("stop",))
            sender.flush()
        except (OSError, ValueError):  # pragma: no cover - queue gone
            pass
        process = self._workers[retiring]
        process.join(timeout=10.0)
        if process.is_alive():  # pragma: no cover - stop message lost
            process.terminate()
            process.join(timeout=1.0)
        for q in (self._in_queues[retiring], self._out_queues[retiring]):
            q.cancel_join_thread()
            q.close()
        self._workers.pop()
        self._senders.pop()
        self._in_queues.pop()
        self._out_queues.pop()
        self._failure_detector.forget(retiring)
        self.coordinator.remove_shard()
        self.shards -= 1
        self.coordinator.record_rebalance()
        return retiring

    def scale_to(self, target: int) -> None:
        """Grow or shrink the membership to ``target`` shards."""
        if target <= 0:
            raise ValueError("target shard count must be positive")
        while self.shards < target:
            self.scale_up()
        while self.shards > target:
            self.scale_down()

    # ------------------------------------------------------------------
    # coordinator checkpoint (replay cursor + in-flight window buffers)
    # ------------------------------------------------------------------
    def checkpoint_coordinator(self) -> Optional[str]:
        """Write the coordinator's recovery state to ``checkpoint_dir``.

        The file carries, per chain, the replay cursor (first dispatch
        index not yet merged) and the serialized in-flight window
        buffers per shard -- together with the per-shard worker
        checkpoints this is the cluster's full crash-recovery state.
        Written automatically every ``checkpoint_interval`` dispatched
        windows; callable directly for an on-demand snapshot.  Returns
        the path (``None`` when no ``checkpoint_dir`` is configured).
        """
        if self.checkpoint_dir is None:
            return None
        coordinator = self.coordinator
        in_flight: Dict[str, List[dict]] = {}
        for (chain_name, index), (shard, _cost, entry) in sorted(
            self._in_flight.items(), key=lambda item: item[0][1]
        ):
            record: Dict[str, object] = {"index": index, "shard": shard}
            if entry is not None:
                _index, window, predicted = entry
                record["window"] = window_to_dict(window)
                record["predicted_ws"] = predicted
            in_flight.setdefault(chain_name, []).append(record)
        payload = {
            "format_version": STATE_FORMAT_VERSION,
            "kind": "coordinator",
            "shards": self.shards,
            "replay_cursors": {
                state.name: coordinator.replay_cursor(state.name)
                for state in self._chain_states
            },
            "windows_dispatched": dict(coordinator.windows_dispatched),
            "in_flight": in_flight,
        }
        path = os.path.join(self.checkpoint_dir, "coordinator.json")
        write_json_atomic(payload, path)
        self._windows_since_checkpoint = 0
        return path

    # ------------------------------------------------------------------
    # coordinated shedding
    # ------------------------------------------------------------------
    def broadcast_shedding(
        self, command: DropCommand, chain: Optional[str] = None
    ) -> None:
        """Activate shedding with ``command`` on every shard at once.

        Applies the same command to the coordinator-side shedder (so a
        later ``retrain()`` replays consistent state) and broadcasts it
        to all workers.  ``chain`` limits the change to one query.
        """
        for state in self._iter_chain_states(chain):
            shedder = state.chain.shedder
            if shedder is None:
                raise RuntimeError(
                    f"chain {state.name!r} has no shedder to command; "
                    "deploy() a shedding strategy first"
                )
            shedder.on_drop_command(command)
            shedder.activate()
            self._broadcast(("cmd", state.name, command, True))
            if self.coordinator is not None:
                self.coordinator.shedding[state.name] = True

    def stop_shedding(self, chain: Optional[str] = None) -> None:
        """Deactivate shedding on every shard at once."""
        for state in self._iter_chain_states(chain):
            shedder = state.chain.shedder
            if shedder is not None:
                shedder.deactivate()
            self._broadcast(("cmd", state.name, None, False))
            if self.coordinator is not None:
                self.coordinator.shedding[state.name] = False

    def _iter_chain_states(self, chain: Optional[str]):
        if not self.started:
            self.start()
        if chain is None:
            return list(self._chain_states)
        return [self._chain_state(chain)]

    def _broadcast(self, message) -> None:
        if message[0] == "cmd":
            # remember the latest coordinated-shedding state per chain:
            # broadcasts reach only the workers alive at send time, so
            # respawned and scaled-up workers need a replay of this
            self._last_command[message[1]] = (message[2], message[3])
        for sender in self._senders:
            sender.send(message)
            sender.flush()

    def _check_overload(self, live: bool = True) -> None:
        """Coordinated shedding: one detector decision, every shard obeys.

        The coordinator owns each chain's overload detector; the
        "queue size" it checks is the cluster-wide backpressure (events
        dispatched to shards but not yet matched).  State changes are
        broadcast so all shards activate, re-command or deactivate
        together -- shards never make independent shedding decisions.

        ``live=False`` (the :meth:`run` replay path) skips the detector
        entirely: a sequential ``Pipeline.run`` drains its queue
        synchronously, so its detector never sees backlog during a
        replay ("no shedding unless a shedder was activated
        explicitly").  Feeding the detector the wall-clock-dependent
        cluster backpressure here instead made ``run()`` shed a
        timing-dependent set of windows -- the tests/obs two-shard
        determinism flake (missing tail detections).  The autoscaler
        stays active in both modes: membership changes are
        detection-invariant.  Live feeds (:meth:`feed`) keep the full
        wall-clock semantics -- backpressure there is physical.
        """
        now = time.monotonic()
        interval = self.pipeline.config.check_interval
        if now - self._last_check < interval:
            return
        self._last_check = now
        if self.autoscaler is not None:
            target = self.autoscaler.decide(self.snapshot())
            if target is not None:
                self.scale_to(target)
        if not live:
            return
        for state in self._chain_states:
            detector = state.chain.detector
            if detector is None:
                continue
            command = detector.check(now, state.pending_events)
            if command is not None:
                self._broadcast(("cmd", state.name, command, True))
                self.coordinator.shedding[state.name] = True
                self._detector_shedding[state.name] = True
            elif self._detector_shedding[state.name] and not detector.shedding:
                # only undo detector-driven activations: shedding that
                # was configured statically (inherited at fork or via
                # broadcast_shedding) is not the detector's to cancel
                self._broadcast(("cmd", state.name, None, False))
                self.coordinator.shedding[state.name] = False
                self._detector_shedding[state.name] = False

    # ------------------------------------------------------------------
    # hot model swap
    # ------------------------------------------------------------------
    def retrain(self, stream: Iterable[Event]) -> "ShardedPipeline":
        """Retrain on ``stream`` and hot-swap the model on every shard.

        Training runs coordinator-side (paper §3.1: model building is
        not time-critical); the new model is then broadcast and each
        worker rebinds its shedder atomically
        (:meth:`~repro.core.shedder.ESpiceShedder.rebind_model`), so
        shards keep serving O(1) decisions throughout the swap.
        """
        self.pipeline.retrain(stream)
        if self.started:
            for state in self._chain_states:
                model = state.chain.model
                if model is None:
                    continue
                version = self.coordinator.model_versions[state.name] + 1
                self.coordinator.model_versions[state.name] = version
                payload = model_to_dict(model)
                self._broadcast(("model", state.name, payload, version))
        return self

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def enable_observability(self, obs=None, **kwargs):
        """Enable unified observability across router and shards.

        Must precede :meth:`start`: workers inherit their per-window
        timing histogram at fork.  The router-side ingress stages are
        instrumented exactly like a sequential pipeline (worker-side
        egress wrappers exist but never run -- shards execute
        :class:`~repro.cluster.worker.ShardChain`, not the chain's
        stage list); worker-side counters and the per-window
        processing-time histogram travel back in every sync reply and
        a cluster collector folds them into the same shared
        :class:`~repro.obs.registry.Registry`, so one scrape sees the
        whole deployment.
        """
        self._require_not_started("enable_observability")
        obs = self.pipeline.enable_observability(obs, **kwargs)
        self.observability = obs
        if self._obs_collector is None:
            self._obs_collector = self._register_cluster_collector(obs.registry)
        return obs

    def _register_cluster_collector(self, registry):
        """Pull collector mapping coordinator state into registry families."""
        ingested = registry.counter(
            "repro_cluster_events_ingested_total",
            "Events ingested by the cluster router",
        )
        dispatched = registry.counter(
            "repro_cluster_windows_dispatched_total",
            "Windows routed to shard workers",
            labels=("query",),
        )
        detections = registry.counter(
            "repro_cluster_complex_events_total",
            "Detections merged back in sequential order",
            labels=("query",),
        )
        shed_decisions = registry.counter(
            "repro_cluster_shed_decisions_total",
            "Worker-side shedding decisions (as of last sync)",
            labels=("query",),
        )
        shed_drops = registry.counter(
            "repro_cluster_shed_drops_total",
            "Worker-side dropped memberships (as of last sync)",
            labels=("query",),
        )
        drop_rate = registry.gauge(
            "repro_cluster_drop_rate",
            "Cluster-wide membership drop rate (as of last sync)",
            labels=("query",),
        )
        shedding_active = registry.gauge(
            "repro_cluster_shedding_active",
            "1 while coordinated shedding is active on the shards",
            labels=("query",),
        )
        pending = registry.gauge(
            "repro_cluster_shard_pending_events",
            "Events dispatched to a shard but not yet matched",
            labels=("shard",),
        )
        utilization = registry.gauge(
            "repro_cluster_shard_utilization",
            "Busy fraction of a shard worker (as of last sync)",
            labels=("shard",),
        )
        alive = registry.gauge(
            "repro_cluster_shard_alive",
            "1 while the shard worker process is alive",
            labels=("shard",),
        )
        window_seconds = registry.histogram(
            "repro_cluster_window_seconds",
            "Per-window shed+match time on the shard workers",
            labels=("query",),
        )
        shard_count = registry.gauge(
            "repro_cluster_shards",
            "Current shard worker membership size",
        )
        restarts = registry.counter(
            "repro_cluster_restarts_total",
            "Worker respawns after a detected failure",
            labels=("shard",),
        )
        rebalances = registry.counter(
            "repro_cluster_rebalances_total",
            "Membership changes (scale-up/scale-down) rebalancing routing",
        )
        duplicates = registry.counter(
            "repro_cluster_duplicates_ignored_total",
            "Result deliveries dropped by the exactly-once merge guard",
        )
        replayed = registry.counter(
            "repro_cluster_windows_replayed_total",
            "Windows re-sent to respawned workers from the replay buffer",
        )
        checkpoints = registry.counter(
            "repro_cluster_checkpoints_total",
            "Shard checkpoints written (as of last sync)",
            labels=("shard",),
        )
        checkpoint_bytes = registry.counter(
            "repro_cluster_checkpoint_bytes",
            "Cumulative shard checkpoint bytes (as of last sync)",
            labels=("shard",),
        )
        checkpoint_age = registry.gauge(
            "repro_cluster_checkpoint_age_seconds",
            "Virtual (stream-time) seconds of work past the last checkpoint",
            labels=("shard",),
        )

        def collect() -> None:
            coordinator = self.coordinator
            if coordinator is None:
                return
            ingested.labels().set_total(coordinator.events_ingested)
            for name, count in coordinator.windows_dispatched.items():
                dispatched.labels(query=name).set_total(count)
            for name, count in coordinator.complex_event_counts.items():
                detections.labels(query=name).set_total(count)
            for name, totals in coordinator.chain_totals().items():
                shed_decisions.labels(query=name).set_total(
                    totals["shed_decisions"]
                )
                shed_drops.labels(query=name).set_total(totals["shed_drops"])
                drop_rate.labels(query=name).set(totals["drop_rate"])
                shedding_active.labels(query=name).set(
                    1 if coordinator.shedding.get(name) else 0
                )
                # worker histograms ship cumulative state every sync, so
                # the registry child is rebuilt per scrape (merging each
                # sync again would double-count)
                child = window_seconds.labels(query=name)
                child.counts = [0] * len(child.counts)
                child.sum = 0.0
                child.count = 0
                for status in coordinator.shard_status:
                    state = status.chains.get(name, {}).get("window_seconds")
                    if state is not None:
                        child.merge(
                            state["counts"], state["sum"], state["count"]
                        )
            shard_count.labels().set(len(coordinator.shard_status))
            rebalances.labels().set_total(coordinator.rebalances)
            duplicates.labels().set_total(coordinator.duplicates_ignored)
            replayed.labels().set_total(coordinator.windows_replayed)
            workers = self._workers
            for status in coordinator.shard_status:
                shard = str(status.shard_id)
                pending.labels(shard=shard).set(status.pending_events)
                utilization.labels(shard=shard).set(status.utilization)
                restarts.labels(shard=shard).set_total(status.restarts)
                checkpoints.labels(shard=shard).set_total(status.checkpoints)
                checkpoint_bytes.labels(shard=shard).set_total(
                    status.checkpoint_bytes
                )
                checkpoint_age.labels(shard=shard).set(status.checkpoint_age)
                process = (
                    workers[status.shard_id]
                    if status.shard_id < len(workers)
                    else None
                )
                alive.labels(shard=shard).set(
                    1 if process is not None and process.is_alive() else 0
                )

        return registry.register_collector(collect)

    def metrics(self) -> Dict[str, Dict[str, object]]:
        """Unified per-query metrics: router stages + shard totals.

        The ``router`` half reports live per-stage metrics for the
        ingress stages that actually run in the parent (same shape as
        the sequential ``Pipeline.metrics()``); the ``workers`` half is
        the coordinator's as-of-last-sync aggregation of the shard-side
        shed+match counters.  Egress stages are omitted: they do not
        execute in sharded mode and their zeros would be misleading.
        """
        totals = (
            self.coordinator.chain_totals() if self.coordinator is not None else {}
        )
        report: Dict[str, Dict[str, object]] = {}
        for chain in self.pipeline.chains:
            name = chain.query.name
            report[name] = {
                "router": {
                    stage.name: stage.metrics() for stage in chain.ingress
                },
                "workers": totals.get(name, {}),
            }
        return report

    def snapshot(self) -> ClusterSnapshot:
        """Cluster-level snapshot: shards, routing, shedding, drift."""
        if self.coordinator is None:
            raise RuntimeError("snapshot() needs start() first")
        transport = {
            "batch_size": self.batch_size,
            "linger": self.linger,
            "batches": sum(s.batches_sent for s in self._senders),
            "messages": sum(s.messages_sent for s in self._senders),
            "avg_batch": round(
                sum(s.messages_sent for s in self._senders)
                / max(1, sum(s.batches_sent for s in self._senders)),
                2,
            ),
        }
        return self.coordinator.snapshot(
            router_metrics=self.router.metrics(),
            transport_metrics=transport,
            alive=[process.is_alive() for process in self._workers],
        )

"""`ShardedPipeline`: a Pipeline executed across real worker processes.

The sharded runtime splits a built :class:`repro.pipeline.Pipeline`
into the three roles of a window-parallel CEP deployment (paper §5,
RIP/SPECTRE shape):

- the **router** (parent process) runs every chain's ingress half --
  admission, custom middleware, window assignment -- and ships each
  *complete window* to a shard chosen by the routing policy, batched
  over the IPC queues;
- **N shard workers** (forked processes) run the egress half -- the
  shedding decision per (event, position) and the pattern matcher --
  over their share of windows;
- the **coordinator** (parent process) owns the trained model,
  broadcasts hot model swaps and coordinated shedding state to every
  shard, and merges shard results back into exact sequential emission
  order.

State ownership is strict: workers hold only replaceable copies
(matcher, shedder); the model, the window-size predictor, the overload
detector and all routing/merge state live in the parent.  Workers are
forked *after* ``train()``/``deploy()``, so they inherit exactly the
configured shedder; later changes reach them only through coordinator
broadcasts -- which is what makes detections independent of the shard
count.

Typical use::

    sharded = (
        Pipeline.builder()
        .query(query)
        .shedder("espice", f=0.8)
        .distributed(shards=4, router="round-robin", batch_size=32)
        .build()
    )
    sharded.train(train_stream).deploy(...)
    with sharded:
        result = sharded.run(live_stream)
        sharded.retrain(fresh_stream)      # hot swap on every shard
        print(sharded.snapshot())
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple, Union

from repro.cep.events import ComplexEvent, Event
from repro.cluster.coordinator import ClusterCoordinator, ClusterSnapshot
from repro.cluster.routing import Router, create_router
from repro.cluster.transport import BatchingSender, drain, drain_for
from repro.cluster.worker import ShardChain, shard_main
from repro.core.persistence import model_to_dict
from repro.pipeline.batching import iter_batches
from repro.pipeline.pipeline import Pipeline
from repro.shedding.base import DropCommand

#: Capacity (in batches) of the shared worker->coordinator result
#: queue.  Generous -- the merge loop drains it inside every feed and
#: sync wait -- but finite, so a stalled coordinator exerts
#: backpressure on the shards instead of buffering their results in
#: unbounded parent-process memory.
RESULT_QUEUE_BATCHES = 4096


@dataclass
class ShardedResult:
    """Outcome of one :meth:`ShardedPipeline.run` sharded replay."""

    matches: Dict[str, List[ComplexEvent]]
    events_fed: int
    wall_seconds: float
    snapshot: ClusterSnapshot

    @property
    def complex_events(self) -> List[ComplexEvent]:
        """The first (or only) query's detections, in sequential order."""
        return next(iter(self.matches.values()), [])

    def for_query(self, name: str) -> List[ComplexEvent]:
        """Detections of query ``name``."""
        return self.matches[name]

    def totals(self) -> Dict[str, int]:
        """Detections per query."""
        return {name: len(events) for name, events in self.matches.items()}

    @property
    def events_per_second(self) -> float:
        """Ingested events per wall-clock second."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.events_fed / self.wall_seconds


class _ChainState:
    """Router-side state of one chain: predictor, dispatch bookkeeping."""

    def __init__(self, chain) -> None:
        self.chain = chain
        self.name = chain.query.name
        # the window-size predictor is coordinator-owned shared state:
        # seeded from the chain's (possibly primed) operator so a
        # sharded run predicts exactly like the sequential run would
        self.size_sum, self.size_count = chain.operator.predictor_state
        self.pending_events = 0  # this chain's in-flight backpressure
        self.collected: List[ComplexEvent] = []

    def predict(self, window) -> float:
        """Update-then-predict, mirroring ``WindowParallelOperator``."""
        if not window.truncated:
            self.size_sum += window.size
            self.size_count += 1
        if self.size_count == 0:
            return 0.0
        return self.size_sum / self.size_count


class ShardedPipeline:
    """Multi-process sharded execution of a built pipeline."""

    def __init__(
        self,
        pipeline: Pipeline,
        shards: int,
        router: Union[str, Router, None] = None,
        batch_size: int = 32,
        linger: float = 0.0,
        sync_timeout: float = 120.0,
    ) -> None:
        if shards <= 0:
            raise ValueError("shard count must be positive")
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        for chain in pipeline.chains:
            if chain.operator is None:
                raise ValueError(
                    "sharded execution needs sequential chains: windows are "
                    "already the unit of distribution across shards (query "
                    f"{chain.query.name!r} uses .parallel({chain.degree}))"
                )
            if chain.adaptive_options is not None:
                raise ValueError(
                    "adaptive retraining is coordinator work in a cluster: "
                    "drop .adaptive() and call retrain() on the "
                    "ShardedPipeline (drift signals appear in snapshot())"
                )
            # egress = [shedding, match, emit, *custom]; shed+match run
            # on the shards and emission happens at merge time, so a
            # custom egress stage would silently never execute
            if len(chain.egress) > 3:
                raise ValueError(
                    "custom egress stages do not run in sharded mode "
                    "(shedding/matching happen on the shard workers); "
                    "use ingress stages (they run on the router) or a "
                    ".sink() (fires on the merged, ordered detections)"
                )
        self.pipeline = pipeline
        self.shards = shards
        self.router = create_router(router, shards)
        self.batch_size = batch_size
        self.linger = linger
        self.sync_timeout = sync_timeout
        self.started = False
        self._ctx = multiprocessing.get_context("fork")
        self._workers: List[multiprocessing.Process] = []
        self._senders: List[BatchingSender] = []
        self._in_queues: list = []
        self._out_queue = None
        self._chain_states: List[_ChainState] = []
        self._in_flight: Dict[Tuple[str, int], Tuple[int, int]] = {}
        self._sync_seen: set = set()
        self._detector_shedding: Dict[str, bool] = {}
        self._sync_token = 0
        self._last_check = 0.0
        self.coordinator: Optional[ClusterCoordinator] = None
        self.observability = None
        self._obs_collector = None

    # ------------------------------------------------------------------
    # pipeline lifecycle proxies (all before start())
    # ------------------------------------------------------------------
    @property
    def chains(self):
        """The wrapped pipeline's query chains."""
        return self.pipeline.chains

    @property
    def model(self):
        """The first (or only) chain's trained model."""
        return self.pipeline.model

    @property
    def models(self):
        """Trained models per query name."""
        return self.pipeline.models

    def train(self, stream: Iterable[Event]) -> "ShardedPipeline":
        """Fit every chain's model (coordinator-side; before start)."""
        self._require_not_started("train")
        self.pipeline.train(stream)
        return self

    def warm(self, stream: Iterable[Event]) -> "ShardedPipeline":
        """Warm online shedder statistics (before start)."""
        self._require_not_started("warm")
        self.pipeline.warm(stream)
        return self

    def deploy(self, **kwargs) -> "ShardedPipeline":
        """Build shedders/detectors on the inner pipeline (before start)."""
        self._require_not_started("deploy")
        self.pipeline.deploy(**kwargs)
        return self

    def _require_not_started(self, what: str) -> None:
        if self.started:
            raise RuntimeError(
                f"{what}() must happen before start(): workers inherit the "
                "configured pipeline at fork (use retrain() for live model "
                "updates)"
            )

    # ------------------------------------------------------------------
    # worker lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "ShardedPipeline":
        """Fork the shard workers (idempotent)."""
        if self.started:
            return self
        if "fork" not in multiprocessing.get_all_start_methods():
            raise RuntimeError(
                "sharded execution requires the 'fork' start method: "
                "queries carry predicates (closures) that cannot cross a "
                "spawn boundary"
            )
        chains = self.pipeline.chains
        self._chain_states = [_ChainState(chain) for chain in chains]
        trained_rates = {}
        for chain in chains:
            model = chain.model
            if model is not None and model.windows_trained > 0:
                trained_rates[chain.query.name] = (
                    model.matches_trained / model.windows_trained
                )
        self.coordinator = ClusterCoordinator(
            [chain.query.name for chain in chains],
            shards=self.shards,
            trained_match_rates=trained_rates,
        )
        for chain in chains:
            self.coordinator.shedding[chain.query.name] = bool(
                chain.shedder is not None and chain.shedder.active
            )
        self._detector_shedding = {
            chain.query.name: False for chain in chains
        }
        # result path: workers block (finite flow control) once the
        # merge loop falls this many *batches* behind -- the parent
        # drains the out-queue inside every feed/sync wait, so the
        # bound is backpressure on runaway shards, not a deadlock risk
        self._out_queue = self._ctx.Queue(maxsize=RESULT_QUEUE_BATCHES)
        self._workers = []
        self._senders = []
        self._in_queues = []
        self._in_flight = {}
        for shard_id in range(self.shards):
            # the per-shard feed stays unbounded by design: the router
            # must never block on a slow or *dead* shard (worker death
            # is property-tested), so bounded-ness is enforced upstream
            # by BatchingSender flow control plus the coordinator's
            # queue-depth checks, not by a blocking put
            in_queue = self._ctx.Queue()  # repro-lint: disable=R004 router must not block on a dead shard; see comment
            self._in_queues.append(in_queue)
            # per-shard chain state is built pre-fork so each worker
            # owns a private matcher but inherits the shared shedder
            shard_chains = {
                chain.query.name: ShardChain(
                    chain.query,
                    chain.shedder,
                    observe=self.observability is not None,
                )
                for chain in chains
            }
            process = self._ctx.Process(
                target=shard_main,
                args=(
                    shard_id,
                    shard_chains,
                    in_queue,
                    self._out_queue,
                    self.batch_size,
                    self.linger,
                ),
                daemon=True,
                name=f"repro-shard-{shard_id}",
            )
            process.start()
            self._workers.append(process)
            self._senders.append(
                BatchingSender(
                    in_queue, batch_size=self.batch_size, linger=self.linger
                )
            )
        self._last_check = time.monotonic()
        self.started = True
        return self

    def shutdown(self, timeout: float = 10.0) -> None:
        """Stop every worker (idempotent; terminates stragglers)."""
        if not self.started:
            return
        for sender in self._senders:
            try:
                sender.send(("stop",))
                sender.flush()
            except (OSError, ValueError):  # queue already gone
                pass
        for process in self._workers:
            process.join(timeout=timeout)
            if process.is_alive():
                process.terminate()
                process.join(timeout=1.0)
        # release the queues without joining their feeder threads: after
        # a worker death the in-queue may hold undeliverable pickled
        # windows, and waiting for them to flush would hang interpreter
        # exit (multiprocessing joins feeder threads atexit)
        for q in [*self._in_queues, self._out_queue]:
            if q is None:
                continue
            q.cancel_join_thread()
            q.close()
        self._workers = []
        self._senders = []
        self._in_queues = []
        self._out_queue = None
        self.started = False

    def __enter__(self) -> "ShardedPipeline":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.shutdown()

    def __del__(self) -> None:  # pragma: no cover - GC safety net
        try:
            self.shutdown(timeout=0.5)
        except Exception:
            pass

    # ------------------------------------------------------------------
    # the sharded run
    # ------------------------------------------------------------------
    def run(self, stream: Iterable[Event]) -> ShardedResult:
        """Replay ``stream`` through the cluster; merge-and-order results.

        The router ingests events in stream order -- micro-batched into
        :class:`~repro.pipeline.batching.EventBatch` objects of
        ``batch_size`` events -- ships each batch's complete windows to
        the shards as single ``winbatch`` messages (the batch formed at
        ingress is what travels; windows are not re-wrapped one message
        at a time), and the coordinator releases detections in dispatch
        order: the returned per-query lists are identical (contents
        *and* order) to a sequential ``Pipeline.run`` /
        ``simulate_pipeline`` of the same deployment.
        """
        self.start()
        coordinator = self.coordinator
        t_start = time.perf_counter()
        events_fed = 0
        # bounded queues need per-event admission; the batched ingress
        # is only equivalent when rejections cannot depend on drain
        # interleaving (see Pipeline.run)
        batched_ingress = self.pipeline.config.queue_capacity is None
        for batch in iter_batches(stream, self.batch_size):
            for state in self._chain_states:
                chain = state.chain
                if batched_ingress:
                    # synchronous drain, like QueryChain.run_batch: the
                    # staging depth of the batch is not backlog
                    assign_stage = chain.window_assign
                    depth_before = assign_stage.max_queue_depth
                    chain.ingest_batch(batch)
                    items = chain.queue.pop_all()
                    assign_stage.max_queue_depth = max(
                        depth_before, 1 if items else 0
                    )
                else:
                    items = []
                    for event, now in zip(batch.events, batch.nows):
                        if chain.ingest(event, now):
                            queue = chain.queue
                            while queue:
                                items.append(queue.pop())
                per_shard: Dict[int, List[tuple]] = {}
                for item in items:
                    for window in item.closed_windows:
                        shard, entry = self._stamp(state, window)
                        per_shard.setdefault(shard, []).append(entry)
                self._ship(state, per_shard)
            events_fed += len(batch.events)
            coordinator.events_ingested += len(batch.events)
            self._drain_results()
            self._check_overload()
        # end of stream: still-open windows flush as truncated windows
        for state in self._chain_states:
            per_shard = {}
            for window in state.chain.window_assign.flush():
                shard, entry = self._stamp(state, window)
                per_shard.setdefault(shard, []).append(entry)
            self._ship(state, per_shard)
        self._sync()
        wall = time.perf_counter() - t_start

        matches: Dict[str, List[ComplexEvent]] = {}
        for state in self._chain_states:
            state.collected.extend(coordinator.take_ordered(state.name))
            ordered = state.collected
            state.collected = []
            if ordered:
                # sinks fire here, in sequential order (batch semantics:
                # sharded emission happens at merge time, not per event)
                state.chain.emit.dispatch(ordered)
            matches[state.name] = ordered
        return ShardedResult(
            matches=matches,
            events_fed=events_fed,
            wall_seconds=wall,
            snapshot=self.snapshot(),
        )

    def _stamp(self, state: _ChainState, window) -> Tuple[int, tuple]:
        """Route + stamp one window; returns its shard and wire entry."""
        predicted = state.predict(window)
        shard = self.router.route(window, state.name)
        cost = window.size
        self.router.on_dispatch(shard, cost)
        index = self.coordinator.stamp_dispatch(state.name, shard, cost)
        self._in_flight[(state.name, index)] = (shard, cost)
        state.pending_events += cost
        return shard, (index, window, predicted)

    def _ship(self, state: _ChainState, per_shard: Dict[int, List[tuple]]) -> None:
        """Send each shard its share of a batch as one ``winbatch``."""
        for shard, entries in per_shard.items():
            self._senders[shard].send_now(("winbatch", state.name, entries))

    def _dispatch(self, state: _ChainState, window) -> None:
        """Ship one window on its own (kept for targeted tests/tools)."""
        shard, entry = self._stamp(state, window)
        index, window, predicted = entry
        self._senders[shard].send(("win", state.name, index, window, predicted))

    def _drain_results(self, block_timeout: Optional[float] = None) -> None:
        if block_timeout is not None:
            self._consume(drain_for(self._out_queue, block_timeout))
        self._consume(drain(self._out_queue))

    def _consume(self, messages) -> None:
        coordinator = self.coordinator
        for message in messages:
            tag = message[0]
            if tag == "resbatch":
                _tag, shard, chain_name, results = message
                state = self._chain_state(chain_name)
                for index, events in results:
                    _shard, cost = self._in_flight.pop((chain_name, index))
                    self.router.on_complete(shard, cost)
                    state.pending_events -= cost
                    coordinator.on_result(chain_name, shard, index, cost, events)
            elif tag == "res":
                _tag, shard, chain_name, index, events = message
                _shard, cost = self._in_flight.pop((chain_name, index))
                self.router.on_complete(shard, cost)
                self._chain_state(chain_name).pending_events -= cost
                coordinator.on_result(chain_name, shard, index, cost, events)
            elif tag == "sync":
                _tag, shard, token, metrics = message
                coordinator.on_shard_metrics(shard, metrics)
                self._sync_seen.add((shard, token))
            elif tag == "err":
                _tag, shard, trace = message
                raise RuntimeError(
                    f"shard worker {shard} failed:\n{trace}"
                )

    def _chain_state(self, name: str) -> _ChainState:
        for state in self._chain_states:
            if state.name == name:
                return state
        raise KeyError(name)

    # ------------------------------------------------------------------
    # sync barrier
    # ------------------------------------------------------------------
    def _sync(self) -> None:
        """Flush all transport, wait until every shard caught up."""
        self._sync_token += 1
        token = self._sync_token
        self._sync_seen = set()
        for sender in self._senders:
            sender.send(("sync", token))
            sender.flush()
        deadline = time.monotonic() + self.sync_timeout
        expected = {(shard, token) for shard in range(self.shards)}
        while not expected.issubset(self._sync_seen):
            self._drain_results(block_timeout=0.05)
            if time.monotonic() > deadline:
                raise RuntimeError(
                    f"cluster sync timed out after {self.sync_timeout:.0f}s "
                    f"(missing shards: "
                    f"{sorted(s for s, t in expected - self._sync_seen)})"
                )
            self._raise_on_dead_workers()

    def _raise_on_dead_workers(self) -> None:
        dead = [
            process.name
            for process in self._workers
            if not process.is_alive()
        ]
        if dead:
            raise RuntimeError(
                f"shard worker(s) died: {', '.join(dead)} -- "
                "results for their in-flight windows are lost; "
                "restart the ShardedPipeline"
            )

    def ping(self) -> ClusterSnapshot:
        """Round-trip a sync barrier and return a fresh snapshot."""
        self.start()
        self._sync()
        return self.snapshot()

    # ------------------------------------------------------------------
    # coordinated shedding
    # ------------------------------------------------------------------
    def broadcast_shedding(
        self, command: DropCommand, chain: Optional[str] = None
    ) -> None:
        """Activate shedding with ``command`` on every shard at once.

        Applies the same command to the coordinator-side shedder (so a
        later ``retrain()`` replays consistent state) and broadcasts it
        to all workers.  ``chain`` limits the change to one query.
        """
        for state in self._iter_chain_states(chain):
            shedder = state.chain.shedder
            if shedder is None:
                raise RuntimeError(
                    f"chain {state.name!r} has no shedder to command; "
                    "deploy() a shedding strategy first"
                )
            shedder.on_drop_command(command)
            shedder.activate()
            self._broadcast(("cmd", state.name, command, True))
            if self.coordinator is not None:
                self.coordinator.shedding[state.name] = True

    def stop_shedding(self, chain: Optional[str] = None) -> None:
        """Deactivate shedding on every shard at once."""
        for state in self._iter_chain_states(chain):
            shedder = state.chain.shedder
            if shedder is not None:
                shedder.deactivate()
            self._broadcast(("cmd", state.name, None, False))
            if self.coordinator is not None:
                self.coordinator.shedding[state.name] = False

    def _iter_chain_states(self, chain: Optional[str]):
        if not self.started:
            self.start()
        if chain is None:
            return list(self._chain_states)
        return [self._chain_state(chain)]

    def _broadcast(self, message) -> None:
        for sender in self._senders:
            sender.send(message)
            sender.flush()

    def _check_overload(self) -> None:
        """Coordinated shedding: one detector decision, every shard obeys.

        The coordinator owns each chain's overload detector; the
        "queue size" it checks is the cluster-wide backpressure (events
        dispatched to shards but not yet matched).  State changes are
        broadcast so all shards activate, re-command or deactivate
        together -- shards never make independent shedding decisions.
        """
        now = time.monotonic()
        interval = self.pipeline.config.check_interval
        if now - self._last_check < interval:
            return
        self._last_check = now
        for state in self._chain_states:
            detector = state.chain.detector
            if detector is None:
                continue
            command = detector.check(now, state.pending_events)
            if command is not None:
                self._broadcast(("cmd", state.name, command, True))
                self.coordinator.shedding[state.name] = True
                self._detector_shedding[state.name] = True
            elif self._detector_shedding[state.name] and not detector.shedding:
                # only undo detector-driven activations: shedding that
                # was configured statically (inherited at fork or via
                # broadcast_shedding) is not the detector's to cancel
                self._broadcast(("cmd", state.name, None, False))
                self.coordinator.shedding[state.name] = False
                self._detector_shedding[state.name] = False

    # ------------------------------------------------------------------
    # hot model swap
    # ------------------------------------------------------------------
    def retrain(self, stream: Iterable[Event]) -> "ShardedPipeline":
        """Retrain on ``stream`` and hot-swap the model on every shard.

        Training runs coordinator-side (paper §3.1: model building is
        not time-critical); the new model is then broadcast and each
        worker rebinds its shedder atomically
        (:meth:`~repro.core.shedder.ESpiceShedder.rebind_model`), so
        shards keep serving O(1) decisions throughout the swap.
        """
        self.pipeline.retrain(stream)
        if self.started:
            for state in self._chain_states:
                model = state.chain.model
                if model is None:
                    continue
                version = self.coordinator.model_versions[state.name] + 1
                self.coordinator.model_versions[state.name] = version
                payload = model_to_dict(model)
                self._broadcast(("model", state.name, payload, version))
        return self

    # ------------------------------------------------------------------
    # observability
    # ------------------------------------------------------------------
    def enable_observability(self, obs=None, **kwargs):
        """Enable unified observability across router and shards.

        Must precede :meth:`start`: workers inherit their per-window
        timing histogram at fork.  The router-side ingress stages are
        instrumented exactly like a sequential pipeline (worker-side
        egress wrappers exist but never run -- shards execute
        :class:`~repro.cluster.worker.ShardChain`, not the chain's
        stage list); worker-side counters and the per-window
        processing-time histogram travel back in every sync reply and
        a cluster collector folds them into the same shared
        :class:`~repro.obs.registry.Registry`, so one scrape sees the
        whole deployment.
        """
        self._require_not_started("enable_observability")
        obs = self.pipeline.enable_observability(obs, **kwargs)
        self.observability = obs
        if self._obs_collector is None:
            self._obs_collector = self._register_cluster_collector(obs.registry)
        return obs

    def _register_cluster_collector(self, registry):
        """Pull collector mapping coordinator state into registry families."""
        ingested = registry.counter(
            "repro_cluster_events_ingested_total",
            "Events ingested by the cluster router",
        )
        dispatched = registry.counter(
            "repro_cluster_windows_dispatched_total",
            "Windows routed to shard workers",
            labels=("query",),
        )
        detections = registry.counter(
            "repro_cluster_complex_events_total",
            "Detections merged back in sequential order",
            labels=("query",),
        )
        shed_decisions = registry.counter(
            "repro_cluster_shed_decisions_total",
            "Worker-side shedding decisions (as of last sync)",
            labels=("query",),
        )
        shed_drops = registry.counter(
            "repro_cluster_shed_drops_total",
            "Worker-side dropped memberships (as of last sync)",
            labels=("query",),
        )
        drop_rate = registry.gauge(
            "repro_cluster_drop_rate",
            "Cluster-wide membership drop rate (as of last sync)",
            labels=("query",),
        )
        shedding_active = registry.gauge(
            "repro_cluster_shedding_active",
            "1 while coordinated shedding is active on the shards",
            labels=("query",),
        )
        pending = registry.gauge(
            "repro_cluster_shard_pending_events",
            "Events dispatched to a shard but not yet matched",
            labels=("shard",),
        )
        utilization = registry.gauge(
            "repro_cluster_shard_utilization",
            "Busy fraction of a shard worker (as of last sync)",
            labels=("shard",),
        )
        alive = registry.gauge(
            "repro_cluster_shard_alive",
            "1 while the shard worker process is alive",
            labels=("shard",),
        )
        window_seconds = registry.histogram(
            "repro_cluster_window_seconds",
            "Per-window shed+match time on the shard workers",
            labels=("query",),
        )

        def collect() -> None:
            coordinator = self.coordinator
            if coordinator is None:
                return
            ingested.labels().set_total(coordinator.events_ingested)
            for name, count in coordinator.windows_dispatched.items():
                dispatched.labels(query=name).set_total(count)
            for name, count in coordinator.complex_event_counts.items():
                detections.labels(query=name).set_total(count)
            for name, totals in coordinator.chain_totals().items():
                shed_decisions.labels(query=name).set_total(
                    totals["shed_decisions"]
                )
                shed_drops.labels(query=name).set_total(totals["shed_drops"])
                drop_rate.labels(query=name).set(totals["drop_rate"])
                shedding_active.labels(query=name).set(
                    1 if coordinator.shedding.get(name) else 0
                )
                # worker histograms ship cumulative state every sync, so
                # the registry child is rebuilt per scrape (merging each
                # sync again would double-count)
                child = window_seconds.labels(query=name)
                child.counts = [0] * len(child.counts)
                child.sum = 0.0
                child.count = 0
                for status in coordinator.shard_status:
                    state = status.chains.get(name, {}).get("window_seconds")
                    if state is not None:
                        child.merge(
                            state["counts"], state["sum"], state["count"]
                        )
            workers = self._workers
            for status in coordinator.shard_status:
                shard = str(status.shard_id)
                pending.labels(shard=shard).set(status.pending_events)
                utilization.labels(shard=shard).set(status.utilization)
                process = (
                    workers[status.shard_id]
                    if status.shard_id < len(workers)
                    else None
                )
                alive.labels(shard=shard).set(
                    1 if process is not None and process.is_alive() else 0
                )

        return registry.register_collector(collect)

    def metrics(self) -> Dict[str, Dict[str, object]]:
        """Unified per-query metrics: router stages + shard totals.

        The ``router`` half reports live per-stage metrics for the
        ingress stages that actually run in the parent (same shape as
        the sequential ``Pipeline.metrics()``); the ``workers`` half is
        the coordinator's as-of-last-sync aggregation of the shard-side
        shed+match counters.  Egress stages are omitted: they do not
        execute in sharded mode and their zeros would be misleading.
        """
        totals = (
            self.coordinator.chain_totals() if self.coordinator is not None else {}
        )
        report: Dict[str, Dict[str, object]] = {}
        for chain in self.pipeline.chains:
            name = chain.query.name
            report[name] = {
                "router": {
                    stage.name: stage.metrics() for stage in chain.ingress
                },
                "workers": totals.get(name, {}),
            }
        return report

    def snapshot(self) -> ClusterSnapshot:
        """Cluster-level snapshot: shards, routing, shedding, drift."""
        if self.coordinator is None:
            raise RuntimeError("snapshot() needs start() first")
        transport = {
            "batch_size": self.batch_size,
            "linger": self.linger,
            "batches": sum(s.batches_sent for s in self._senders),
            "messages": sum(s.messages_sent for s in self._senders),
            "avg_batch": round(
                sum(s.messages_sent for s in self._senders)
                / max(1, sum(s.batches_sent for s in self._senders)),
                2,
            ),
        }
        return self.coordinator.snapshot(
            router_metrics=self.router.metrics(),
            transport_metrics=transport,
            alive=[process.is_alive() for process in self._workers],
        )

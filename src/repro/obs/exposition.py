"""Prometheus text exposition of a :class:`~repro.obs.registry.Registry`.

Renders the standard ``text/plain; version=0.0.4`` format::

    # HELP repro_events_total Events offered to each query chain
    # TYPE repro_events_total counter
    repro_events_total{query="q1"} 1234

Histograms expand into cumulative ``_bucket{le="..."}`` series plus
``_sum`` and ``_count``, exactly as prometheus clients do.  The module
also ships :func:`parse_exposition`, a minimal line-format checker used
by the golden-file test and by integration tests scraping a live
server -- it validates HELP/TYPE ordering, label syntax and float
values, and returns the parsed samples.
"""

from __future__ import annotations

import math
import re
from typing import Dict, List, Optional, Tuple

from repro.obs.registry import Registry

__all__ = [
    "CONTENT_TYPE",
    "render_prometheus",
    "wants_prometheus",
    "parse_exposition",
]

#: The content type of the version 0.0.4 text format.
CONTENT_TYPE = "text/plain; version=0.0.4; charset=utf-8"

_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}
_HELP_ESCAPES = {"\\": "\\\\", "\n": "\\n"}


def _escape(value: str, table: Dict[str, str]) -> str:
    for raw, escaped in table.items():
        value = value.replace(raw, escaped)
    return value


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(float(value)) if isinstance(value, float) else str(value)


def _format_labels(names: Tuple[str, ...], values: Tuple[str, ...],
                   extra: Optional[Tuple[str, str]] = None) -> str:
    pairs = [
        f'{name}="{_escape(value, _LABEL_ESCAPES)}"'
        for name, value in zip(names, values)
    ]
    if extra is not None:
        pairs.append(f'{extra[0]}="{extra[1]}"')
    if not pairs:
        return ""
    return "{" + ",".join(pairs) + "}"


def render_prometheus(registry: Registry) -> str:
    """Render every family of ``registry`` (collectors run first)."""
    lines: List[str] = []
    for family in registry.collect():
        if family.help:
            lines.append(
                f"# HELP {family.name} {_escape(family.help, _HELP_ESCAPES)}"
            )
        lines.append(f"# TYPE {family.name} {family.kind}")
        names = family.label_names
        for values, child in family.children():
            if family.kind == "histogram":
                cumulative = 0
                for bound, count in zip(child.bounds, child.counts):
                    cumulative += count
                    labels = _format_labels(
                        names, values, extra=("le", _format_value(float(bound)))
                    )
                    lines.append(
                        f"{family.name}_bucket{labels} {cumulative}"
                    )
                cumulative += child.counts[-1]
                labels = _format_labels(names, values, extra=("le", "+Inf"))
                lines.append(f"{family.name}_bucket{labels} {cumulative}")
                plain = _format_labels(names, values)
                lines.append(
                    f"{family.name}_sum{plain} {_format_value(child.sum)}"
                )
                lines.append(f"{family.name}_count{plain} {cumulative}")
            else:
                labels = _format_labels(names, values)
                lines.append(
                    f"{family.name}{labels} {_format_value(child.value)}"
                )
    return "\n".join(lines) + "\n"


def wants_prometheus(accept: str) -> bool:
    """Content negotiation: does this ``Accept`` header ask for text format?

    JSON stays the default (back-compatible with existing clients);
    Prometheus' scraper sends ``text/plain`` / OpenMetrics accepts.
    """
    accept = (accept or "").lower()
    if "application/json" in accept:
        return False
    return (
        "text/plain" in accept
        or "application/openmetrics-text" in accept
        or accept.strip() == "text/*"
    )


# ----------------------------------------------------------------------
# minimal line-format checker (tests; not a full openmetrics parser)
# ----------------------------------------------------------------------
_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
_SAMPLE_RE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)$"
)
_LABEL_RE = re.compile(r'^(?P<name>[a-zA-Z_][a-zA-Z0-9_]*)="(?P<value>(?:[^"\\]|\\.)*)"$')


def parse_exposition(text: str) -> List[Tuple[str, Dict[str, str], float]]:
    """Validate Prometheus text format; return (name, labels, value) samples.

    Raises :class:`ValueError` on any malformed line, on a sample whose
    base family has no preceding ``# TYPE``, or on an unparsable value
    -- strict enough to catch a broken renderer, small enough to live
    in the repo.
    """
    samples: List[Tuple[str, Dict[str, str], float]] = []
    typed: Dict[str, str] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(" ", 3)
            if len(parts) < 3 or not _NAME_RE.fullmatch(parts[2]):
                raise ValueError(f"line {lineno}: malformed HELP: {line!r}")
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "histogram", "summary", "untyped"
            ):
                raise ValueError(f"line {lineno}: malformed TYPE: {line!r}")
            typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue  # comments are legal
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: malformed sample: {line!r}")
        name = match.group("name")
        base = re.sub(r"_(bucket|sum|count)$", "", name)
        if name not in typed and base not in typed:
            raise ValueError(
                f"line {lineno}: sample {name!r} has no preceding # TYPE"
            )
        labels: Dict[str, str] = {}
        raw_labels = match.group("labels")
        if raw_labels:
            for pair in _split_labels(raw_labels, lineno):
                label_match = _LABEL_RE.match(pair)
                if label_match is None:
                    raise ValueError(
                        f"line {lineno}: malformed label {pair!r}"
                    )
                labels[label_match.group("name")] = label_match.group("value")
        raw_value = match.group("value")
        if raw_value == "+Inf":
            value = math.inf
        elif raw_value == "-Inf":
            value = -math.inf
        else:
            try:
                value = float(raw_value)
            except ValueError as exc:
                raise ValueError(
                    f"line {lineno}: bad sample value {raw_value!r}"
                ) from exc
        samples.append((name, labels, value))
    return samples


def _split_labels(raw: str, lineno: int) -> List[str]:
    """Split ``a="x",b="y"`` at commas outside quoted values."""
    parts: List[str] = []
    current: List[str] = []
    in_quotes = False
    escaped = False
    for ch in raw:
        if escaped:
            current.append(ch)
            escaped = False
            continue
        if ch == "\\":
            current.append(ch)
            escaped = True
            continue
        if ch == '"':
            in_quotes = not in_quotes
            current.append(ch)
            continue
        if ch == "," and not in_quotes:
            parts.append("".join(current))
            current = []
            continue
        current.append(ch)
    if in_quotes:
        raise ValueError(f"line {lineno}: unterminated label value")
    if current:
        parts.append("".join(current))
    return parts

"""The metrics registry of :mod:`repro.obs` (stdlib only).

One :class:`Registry` per deployment holds every metric family the
pipeline, cluster and serve layers publish: monotonically increasing
counters, point-in-time gauges, and fixed-bucket histograms with
Prometheus ``le`` (≤) bucket semantics.  Families carry label names
(``query``, ``stage``, ``op``, ...); each distinct label-value tuple is
one child metric.

Two publication styles coexist, chosen per metric by cost:

- **push instrumentation** for distributions (histograms observe on the
  hot path, via the prebound wrappers of
  :mod:`repro.obs.instrument` -- zero cost when observability is off);
- **pull collectors** for counters and gauges that already exist as
  plain attributes on stages, shedders and servers: a collector
  callback copies them into the registry at scrape time, so the hot
  path pays nothing at all for them.

``Registry.snapshot()`` is the one JSON-ready view all three previous
bespoke snapshot dicts converge on;
:func:`repro.obs.exposition.render_prometheus` renders the same
families as Prometheus text.
"""

from __future__ import annotations

import threading
from bisect import bisect_left
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.runtime.latency import histogram_quantile

__all__ = [
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "Registry",
]

#: Default buckets for second-valued latency histograms: 1µs .. 10s,
#: roughly logarithmic (the stage hot path sits in the µs decades).
LATENCY_BUCKETS: Tuple[float, ...] = (
    1e-6, 2.5e-6, 5e-6,
    1e-5, 2.5e-5, 5e-5,
    1e-4, 2.5e-4, 5e-4,
    1e-3, 2.5e-3, 5e-3,
    0.01, 0.025, 0.05,
    0.1, 0.25, 0.5,
    1.0, 2.5, 5.0, 10.0,
)

#: Default buckets for count-valued histograms (batch sizes, window sizes).
SIZE_BUCKETS: Tuple[float, ...] = (
    1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 4096,
)


class Counter:
    """A monotonically increasing value.

    ``set_total`` exists for pull collectors that mirror an external
    cumulative counter (stage attributes) into the registry; it must
    only ever be handed already-monotonic values.
    """

    __slots__ = ("value",)

    kind = "counter"

    def __init__(self) -> None:
        self.value: float = 0

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def set_total(self, value: float) -> None:
        self.value = value


class Gauge:
    """A value that can go up and down (queue depths, flags)."""

    __slots__ = ("value",)

    kind = "gauge"

    def __init__(self) -> None:
        self.value: float = 0

    def set(self, value: float) -> None:
        self.value = value

    def inc(self, amount: float = 1) -> None:
        self.value += amount

    def dec(self, amount: float = 1) -> None:
        self.value -= amount


class Histogram:
    """Fixed-bucket histogram with cumulative ``le`` semantics.

    ``counts`` has one slot per finite bound plus a trailing overflow
    (+Inf) slot.  Two write paths with different cost profiles:

    - :meth:`observe` buckets immediately (bisect plus two adds);
    - the instrumented batch dispatch appends raw values to
      :attr:`pending` instead -- a prebound ``list.append`` is several
      times cheaper than bucketing -- and every reader folds the
      buffer in via :meth:`flush_pending` before looking at the state.
    """

    __slots__ = ("bounds", "counts", "sum", "count", "pending")

    kind = "histogram"

    def __init__(self, bounds: Sequence[float] = LATENCY_BUCKETS) -> None:
        ordered = tuple(float(b) for b in bounds)
        if not ordered or list(ordered) != sorted(set(ordered)):
            raise ValueError("histogram bounds must be strictly increasing")
        self.bounds = ordered
        self.counts: List[int] = [0] * (len(ordered) + 1)
        self.sum: float = 0.0
        self.count: int = 0
        self.pending: List[float] = []

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    def flush_pending(self) -> None:
        """Fold buffered hot-path observations into the buckets.

        ``pending`` is cleared in place, never rebound: the hot-path
        closures prebind its ``append`` method and must keep writing
        into the same list object.
        """
        pending = self.pending
        if not pending:
            return
        bounds = self.bounds
        counts = self.counts
        total = 0.0
        for value in pending:
            counts[bisect_left(bounds, value)] += 1
            total += value
        self.sum += total
        self.count += len(pending)
        pending.clear()

    def merge(self, counts: Sequence[int], total: float, count: int) -> None:
        """Fold another histogram's state in (cluster IPC aggregation)."""
        if len(counts) != len(self.counts):
            raise ValueError("bucket layout mismatch")
        self.flush_pending()
        for index, c in enumerate(counts):
            self.counts[index] += c
        self.sum += total
        self.count += count

    def quantile(self, fraction: float) -> float:
        """Estimated quantile (see :func:`~repro.runtime.latency.histogram_quantile`)."""
        self.flush_pending()
        return histogram_quantile(self.bounds, self.counts, fraction)

    def summary(self) -> Dict[str, float]:
        """count/sum/mean plus the standard p50/p95/p99 estimates."""
        self.flush_pending()
        return {
            "count": self.count,
            "sum": self.sum,
            "mean": self.sum / self.count if self.count else 0.0,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "p99": self.quantile(0.99),
        }

    def state(self) -> Dict[str, object]:
        """Wire-friendly raw state (shipped over cluster IPC)."""
        self.flush_pending()
        return {"counts": list(self.counts), "sum": self.sum, "count": self.count}


class MetricFamily:
    """One named metric with a fixed label schema and typed children."""

    def __init__(
        self,
        name: str,
        help_text: str,
        kind: str,
        label_names: Sequence[str] = (),
        buckets: Optional[Sequence[float]] = None,
    ) -> None:
        if kind not in ("counter", "gauge", "histogram"):
            raise ValueError(f"unknown metric kind {kind!r}")
        self.name = name
        self.help = help_text
        self.kind = kind
        self.label_names = tuple(label_names)
        self.buckets = tuple(buckets) if buckets is not None else None
        self._children: Dict[Tuple[str, ...], object] = {}

    def labels(self, **labels: str):
        """The child metric for this label-value combination (created lazily)."""
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise ValueError(
                f"metric {self.name!r} takes labels {self.label_names}, "
                f"got {tuple(sorted(labels))}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            if self.kind == "counter":
                child = Counter()
            elif self.kind == "gauge":
                child = Gauge()
            else:
                child = Histogram(self.buckets or LATENCY_BUCKETS)
            self._children[key] = child
        return child

    def children(self) -> Iterable[Tuple[Tuple[str, ...], object]]:
        """(label values, child) pairs in insertion order."""
        return self._children.items()

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready view of the family and all its children."""
        samples = []
        for values, child in self._children.items():
            labels = dict(zip(self.label_names, values))
            if self.kind == "histogram":
                sample: Dict[str, object] = {"labels": labels}
                sample.update(child.summary())
                sample["buckets"] = [
                    [bound, count]
                    for bound, count in zip(child.bounds, child.counts)
                ]
                sample["overflow"] = child.counts[-1]
            else:
                sample = {"labels": labels, "value": child.value}
            samples.append(sample)
        return {"type": self.kind, "help": self.help, "samples": samples}


class Registry:
    """Holds metric families and scrape-time pull collectors."""

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._collectors: List[Callable[[], None]] = []
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # family constructors (idempotent: same name returns the family)
    # ------------------------------------------------------------------
    def counter(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._family(name, help_text, "counter", labels)

    def gauge(
        self, name: str, help_text: str = "", labels: Sequence[str] = ()
    ) -> MetricFamily:
        return self._family(name, help_text, "gauge", labels)

    def histogram(
        self,
        name: str,
        help_text: str = "",
        labels: Sequence[str] = (),
        buckets: Sequence[float] = LATENCY_BUCKETS,
    ) -> MetricFamily:
        return self._family(name, help_text, "histogram", labels, buckets)

    def _family(
        self,
        name: str,
        help_text: str,
        kind: str,
        labels: Sequence[str],
        buckets: Optional[Sequence[float]] = None,
    ) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.kind != kind or family.label_names != tuple(labels):
                    raise ValueError(
                        f"metric {name!r} already registered as "
                        f"{family.kind} with labels {family.label_names}"
                    )
                return family
            family = MetricFamily(name, help_text, kind, labels, buckets)
            self._families[name] = family
            return family

    # ------------------------------------------------------------------
    # pull collectors
    # ------------------------------------------------------------------
    def register_collector(self, collect: Callable[[], None]) -> Callable[[], None]:
        """Register a scrape-time callback that writes into the registry."""
        self._collectors.append(collect)
        return collect

    def unregister_collector(self, collect: Callable[[], None]) -> None:
        """Remove a previously registered collector (no-op if absent)."""
        try:
            self._collectors.remove(collect)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # scraping
    # ------------------------------------------------------------------
    def collect(self) -> List[MetricFamily]:
        """Run every collector, then return families sorted by name.

        Also folds every histogram's pending buffer so renderers that
        read ``counts`` directly (Prometheus text) see current state.
        """
        for collect in list(self._collectors):
            collect()
        families = [self._families[name] for name in sorted(self._families)]
        for family in families:
            if family.kind == "histogram":
                for _values, child in family.children():
                    child.flush_pending()
        return families

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """The unified JSON-ready snapshot of every family."""
        return {family.name: family.snapshot() for family in self.collect()}

"""Hot-path instrumentation: prebound wrappers around stage dispatch.

The pipeline's hot loops call prebound dispatch tuples
(``QueryChain._ingress_dispatch`` & friends) instead of resolving stage
attributes per event -- the PR-2 hot-path trick.  Observability reuses
the exact same trick in reverse: *enabling* obs rebuilds those tuples
with timing/tracing wrapper closures, *disabling* it restores the
plain prebound methods.  When obs is off the dispatch tuples are
byte-identical to an uninstrumented pipeline, so the disabled cost is
structurally zero -- no flag checks, no no-op calls on the hot path.

What the wrappers record (and what they deliberately do not):

- per-(query, stage) wall-time histograms around every stage call
  (per batch on the batched path: one observation amortizes over the
  whole batch);
- micro-batch size and queue-wait histograms;
- window lifecycle traces, written only at window *close* (one record
  per window, backfilled from ``Window.open_time``) and at actual
  membership *drops* (overload-only by construction) -- never per kept
  event.  That asymmetry is what keeps the enabled overhead inside the
  ≤2% budget asserted by ``benchmarks/bench_obs.py``.

The registry side of pipeline observability is pull-based:
:func:`register_pipeline_collectors` copies the counters stages
already maintain into registry families at scrape time, costing the
event path nothing.
"""

from __future__ import annotations

from bisect import bisect_left
from time import perf_counter
from typing import Callable, Dict, Optional

from repro.obs.registry import LATENCY_BUCKETS, Registry, SIZE_BUCKETS
from repro.obs.tracer import ShedExplanation, Tracer

__all__ = [
    "Observability",
    "instrument_chain",
    "deinstrument_chain",
    "register_pipeline_collectors",
]


class Observability:
    """One deployment's observability bundle: registry + tracer.

    Shared by every surface of a deployment: the pipeline's chains
    publish into :attr:`registry` and :attr:`tracer`, the server
    exposes both over HTTP, the cluster aggregates worker metrics into
    the same registry.
    """

    def __init__(
        self,
        registry: Optional[Registry] = None,
        tracer: Optional[Tracer] = None,
        trace_capacity: int = 512,
        max_explanations: int = 8,
    ) -> None:
        self.registry = registry if registry is not None else Registry()
        self.tracer = (
            tracer
            if tracer is not None
            else Tracer(capacity=trace_capacity, max_explanations=max_explanations)
        )
        # the histogram families hot-path wrappers observe into
        self.stage_seconds = self.registry.histogram(
            "repro_stage_seconds",
            "Wall time of one stage call (per batch on the batched path)",
            labels=("query", "stage"),
        )
        self.batch_size = self.registry.histogram(
            "repro_batch_size",
            "Events per micro-batch entering the ingress",
            labels=("query",),
            buckets=SIZE_BUCKETS,
        )
        self.queue_wait_seconds = self.registry.histogram(
            "repro_queue_wait_seconds",
            "Event-time wait between enqueue and the drain that closed windows",
            labels=("query",),
            buckets=LATENCY_BUCKETS,
        )
        self.window_size = self.registry.histogram(
            "repro_window_size",
            "Assigned memberships per closed window",
            labels=("query",),
            buckets=SIZE_BUCKETS,
        )

    def summary(self) -> Dict[str, object]:
        """Small health blurb for JSON surfaces (not the full snapshot)."""
        return {
            "enabled": True,
            "traces": len(self.tracer),
            "trace_capacity": self.tracer.capacity,
            "traces_evicted": self.tracer.evicted,
        }


# ----------------------------------------------------------------------
# chain instrumentation
# ----------------------------------------------------------------------
def instrument_chain(chain, obs: Observability) -> None:
    """Rebuild ``chain``'s dispatch tuples with instrumented wrappers."""
    query = chain.query.name
    tracer = obs.tracer
    # The per-event wrappers update the stage-time histogram children
    # inline (bisect + three attribute bumps) instead of calling
    # ``Histogram.observe``; the batched composites go further and
    # only append to the pending buffer (see below).
    stage_hist = {
        id(stage): obs.stage_seconds.labels(query=query, stage=stage.name)
        for stage in chain.stages
    }
    queue_wait_hist = obs.queue_wait_seconds.labels(query=query)
    window_size_hist = obs.window_size.labels(query=query)

    shed_stage = chain.shedding
    match_stage = chain.match_stage
    emit_stage = chain.emit

    def shed_after(ctx) -> None:
        """Attach a shed explanation to every dropped membership."""
        drops = ctx.drops
        if not drops or True not in drops:
            return
        shedder = shed_stage.shedder
        detector = shed_stage.detector
        operator = shed_stage.operator
        predicted = (
            operator.predicted_window_size() if operator is not None else 0.0
        )
        overloaded = (
            detector.shedding
            if detector is not None
            else bool(shedder is not None and shedder.active)
        )
        qsize = None
        if detector is not None and detector.samples:
            qsize = detector.samples[-1].qsize
        event = ctx.event
        now = ctx.now
        for ref, drop in zip(ctx.item.refs, drops):
            if not drop:
                continue
            info = (
                shedder.explain(event, ref.position, predicted)
                if shedder is not None
                else {"strategy": "unknown"}
            )
            tracer.on_shed(
                query,
                ref.window_id,
                ShedExplanation(
                    time=now,
                    event_type=event.event_type,
                    position=ref.position,
                    predicted_window_size=predicted,
                    overloaded=overloaded,
                    qsize=qsize,
                    **info,
                ),
            )

    def match_after(ctx) -> None:
        """Trace closed windows; cheap no-op for non-closing items."""
        item = ctx.item
        if item is None:
            return
        closed = item.closed_windows
        if not closed:
            return
        queue_wait_hist.pending.append(ctx.now - item.enqueue_time)
        matched: Dict[int, int] = {}
        result = ctx.result
        if result is not None:
            for complex_event in result.complex_events:
                wid = complex_event.window_id
                matched[wid] = matched.get(wid, 0) + 1
        for window in closed:
            window_size_hist.pending.append(window.size)
            tracer.on_window_closed(
                query, window, ctx.now, matches=matched.get(window.window_id, 0)
            )

    def emit_after(ctx) -> None:
        result = ctx.result
        if result is None or not result.complex_events:
            return
        emitted: Dict[int, int] = {}
        for complex_event in result.complex_events:
            wid = complex_event.window_id
            emitted[wid] = emitted.get(wid, 0) + 1
        now = ctx.now
        for wid, count in emitted.items():
            tracer.on_emitted(query, wid, now, count)

    # Hooks fire through inline prechecks specialised per stage: the
    # common no-op context (nothing dropped, no window closed, nothing
    # emitted) costs attribute loads only, never a Python call.  With
    # the paper-default 0.1s detector interval forcing ~2-event
    # micro-batches, per-context calls are what blows the ≤2% budget.
    def _check_shed(ctx) -> None:
        drops = ctx.drops
        if drops and True in drops:
            shed_after(ctx)

    def _check_match(ctx) -> None:
        item = ctx.item
        if item is not None and item.closed_windows:
            match_after(ctx)

    def _check_emit(ctx) -> None:
        result = ctx.result
        if result is not None and result.complex_events:
            emit_after(ctx)

    after_hooks: Dict[int, Callable] = {
        id(shed_stage): _check_shed,
        id(match_stage): _check_match,
        id(emit_stage): _check_emit,
    }

    def event_wrapper(stage):
        on_event = stage.on_event
        hist = stage_hist[id(stage)]
        after = after_hooks.get(id(stage))
        if after is None:
            def wrapped(ctx, _on_event=on_event, _h=hist):
                start = perf_counter()
                out = _on_event(ctx)
                elapsed = perf_counter() - start
                _h.counts[bisect_left(_h.bounds, elapsed)] += 1
                _h.sum += elapsed
                _h.count += 1
                return out
        else:
            def wrapped(ctx, _on_event=on_event, _h=hist, _after=after):
                start = perf_counter()
                out = _on_event(ctx)
                elapsed = perf_counter() - start
                _h.counts[bisect_left(_h.bounds, elapsed)] += 1
                _h.sum += elapsed
                _h.count += 1
                if out is not False:
                    _after(ctx)
                return out
        return wrapped

    # The batched halves are instrumented as ONE composite closure per
    # dispatch tuple rather than one wrapper per stage.  Two reasons,
    # both measured against the ≤2% budget at batch=64:
    #
    # - per-context scans are gated on counter deltas the stages
    #   already maintain (shedder drops, windows closed, emitted): a
    #   batch in which nothing dropped, closed or emitted -- the
    #   overwhelmingly common case -- costs one integer compare instead
    #   of an O(batch) attribute-check loop.  Window closes happen in
    #   the *ingress* half (window assignment), so the ingress
    #   composite snapshots ``windows_closed`` before the batch enters
    #   and the egress composite compares after the match stage.
    #   Segments of one overloaded batch all rescan; closes are rare
    #   enough that the duplicate scans find nothing.
    # - consecutive stages share one ``perf_counter()`` timestamp (the
    #   end of stage N is the start of stage N+1), halving the clock
    #   reads and dropping four wrapper frames per batch.  After a rare
    #   gated scan the clock is re-read so scan/trace time never
    #   pollutes stage timings.
    # - stage times and batch sizes are not bucketed on the hot path at
    #   all: each observation is a prebound ``pending.append`` (several
    #   times cheaper than the bisect-and-bump), folded into the
    #   buckets by ``Histogram.flush_pending`` at scrape time.  One
    #   length check per batch bounds the buffers between scrapes.
    assign_stage = chain.window_assign
    closed_mark = [0]
    batch_size_hist = obs.batch_size.labels(query=query)

    ingress_steps = tuple(
        (s.process_batch, stage_hist[id(s)].pending.append)
        for s in chain.ingress
    )
    bs_pending = batch_size_hist.pending
    bs_append = bs_pending.append
    # every hot histogram appends at most a few values per batch, so
    # bounding one buffer (batch size: exactly one append per batch)
    # bounds them all within a small factor
    hot_hists = tuple(stage_hist[id(s)] for s in chain.stages) + (
        batch_size_hist,
        queue_wait_hist,
        window_size_hist,
    )

    def ingress_composite(batch, _steps=ingress_steps):
        bs_append(len(batch.contexts))
        if len(bs_pending) >= 4096:
            for h in hot_hists:
                h.flush_pending()
        closed_mark[0] = assign_stage.windows_closed
        t0 = perf_counter()
        for process, observe in _steps:
            process(batch)
            t1 = perf_counter()
            observe(t1 - t0)
            t0 = t1

    shed_process = shed_stage.process_batch
    shed_observe = stage_hist[id(shed_stage)].pending.append
    match_process = match_stage.process_batch
    match_observe = stage_hist[id(match_stage)].pending.append
    emit_process = emit_stage.process_batch
    emit_observe = stage_hist[id(emit_stage)].pending.append
    # custom egress stages appended after emit, if any
    tail_steps = tuple(
        (s.process_batch, stage_hist[id(s)].pending.append)
        for s in chain.egress
        if s is not shed_stage and s is not match_stage and s is not emit_stage
    )

    def egress_composite(batch, _tail=tail_steps):
        contexts = batch.contexts
        shedder = shed_stage.shedder
        drops_before = shedder.drops if shedder is not None else 0
        t0 = perf_counter()
        shed_process(batch)
        t1 = perf_counter()
        shed_observe(t1 - t0)
        if shedder is not None and shedder.drops != drops_before:
            for ctx in contexts:
                drops = ctx.drops
                if drops and True in drops and not ctx.stopped:
                    shed_after(ctx)
            t1 = perf_counter()
        t0 = t1
        match_process(batch)
        t1 = perf_counter()
        match_observe(t1 - t0)
        t0 = t1
        emitted_before = emit_stage.emitted
        emit_process(batch)
        t1 = perf_counter()
        emit_observe(t1 - t0)
        # one merged scan serves both hooks: detections only ever
        # attach to the context whose item closed the window (the
        # match stage iterates ``ctx.item.closed_windows``), so the
        # emit candidates are a subset of the match candidates and the
        # common non-closing context costs two loads and two tests.
        # The counter deltas bound the scan (early exit once every
        # close and every detection is accounted for); under
        # segmentation the deltas may include closes from a sibling
        # segment, whose contexts are not in this batch -- the scan
        # simply runs to the end and the sibling handles them.
        closed_delta = assign_stage.windows_closed - closed_mark[0]
        emit_delta = emit_stage.emitted - emitted_before
        if closed_delta > 0 or emit_delta > 0:
            for ctx in contexts:
                item = ctx.item
                if item is None or not item.closed_windows:
                    continue
                if ctx.stopped:
                    continue
                match_after(ctx)
                closed_delta -= len(item.closed_windows)
                result = ctx.result
                if result is not None and result.complex_events:
                    emit_after(ctx)
                    emit_delta -= len(result.complex_events)
                if closed_delta <= 0 and emit_delta <= 0:
                    break
            t1 = perf_counter()
        if _tail:
            t0 = t1
            for process, observe in _tail:
                process(batch)
                t1 = perf_counter()
                observe(t1 - t0)
                t0 = t1

    chain._ingress_dispatch = tuple(event_wrapper(s) for s in chain.ingress)
    chain._egress_dispatch = tuple(event_wrapper(s) for s in chain.egress)
    chain._ingress_batch_dispatch = (ingress_composite,)
    chain._egress_batch_dispatch = (egress_composite,)


def deinstrument_chain(chain) -> None:
    """Restore the plain prebound dispatch tuples (obs off)."""
    chain._ingress_dispatch = tuple(s.on_event for s in chain.ingress)
    chain._egress_dispatch = tuple(s.on_event for s in chain.egress)
    chain._ingress_batch_dispatch = tuple(
        s.process_batch for s in chain.ingress
    )
    chain._egress_batch_dispatch = tuple(s.process_batch for s in chain.egress)


# ----------------------------------------------------------------------
# pull collectors: stage counters -> registry families, at scrape time
# ----------------------------------------------------------------------
def register_pipeline_collectors(pipeline, registry: Registry) -> Callable[[], None]:
    """Mirror the pipeline's stage counters into registry families.

    Registered on the registry and run at every scrape; the returned
    callback is what ``Pipeline.disable_observability`` unregisters.
    The copied values are exactly the numbers ``Pipeline.metrics()``
    reports (both read the same stage attributes), which is the dedupe
    guarantee the serve regression test pins down.
    """
    events = registry.counter(
        "repro_events_total", "Events offered to each query chain", labels=("query",)
    )
    rejected = registry.counter(
        "repro_rejected_total",
        "Events rejected by admission or a full queue",
        labels=("query",),
    )
    memberships = registry.counter(
        "repro_memberships_total",
        "Window memberships assigned at ingress",
        labels=("query",),
    )
    windows_closed = registry.counter(
        "repro_windows_closed_total", "Windows closed by arrivals", labels=("query",)
    )
    queue_depth = registry.gauge(
        "repro_queue_depth", "Items currently queued", labels=("query",)
    )
    max_queue_depth = registry.gauge(
        "repro_max_queue_depth", "High-water queue depth", labels=("query",)
    )
    shed_decisions = registry.counter(
        "repro_shed_decisions_total",
        "Per-(event, window) shedding decisions taken",
        labels=("query",),
    )
    shed_drops = registry.counter(
        "repro_shed_drops_total", "Memberships dropped by shedding", labels=("query",)
    )
    shedding_active = registry.gauge(
        "repro_shedding_active", "Whether shedding is live (0/1)", labels=("query",)
    )
    drop_rate = registry.gauge(
        "repro_shed_drop_rate",
        "Observed fraction of decisions that dropped",
        labels=("query",),
    )
    windows_completed = registry.counter(
        "repro_windows_completed_total",
        "Windows fully matched by the operator",
        labels=("query",),
    )
    matches = registry.counter(
        "repro_matches_total", "Complex events detected", labels=("query",)
    )
    emitted = registry.counter(
        "repro_emitted_total", "Complex events emitted to sinks", labels=("query",)
    )

    def collect() -> None:
        for chain in pipeline.chains:
            name = chain.query.name
            admission = chain.admission
            assign = chain.window_assign
            events.labels(query=name).set_total(admission.arrivals)
            rejected.labels(query=name).set_total(
                admission.rejected + assign.rejected
            )
            memberships.labels(query=name).set_total(assign.assigned_memberships)
            windows_closed.labels(query=name).set_total(assign.windows_closed)
            queue_depth.labels(query=name).set(chain.queue.size)
            max_queue_depth.labels(query=name).set(assign.max_queue_depth)
            shedder = chain.shedder
            shed_decisions.labels(query=name).set_total(
                shedder.decisions if shedder is not None else 0
            )
            shed_drops.labels(query=name).set_total(
                shedder.drops if shedder is not None else 0
            )
            shedding_active.labels(query=name).set(
                1 if shedder is not None and shedder.active else 0
            )
            drop_rate.labels(query=name).set(
                shedder.observed_drop_rate() if shedder is not None else 0.0
            )
            match_metrics = chain.match_stage.metrics()
            windows_completed.labels(query=name).set_total(
                match_metrics.get("windows_completed", 0)
            )
            matches.labels(query=name).set_total(
                match_metrics.get("complex_events", 0)
            )
            emitted.labels(query=name).set_total(chain.emit.emitted)

    registry.register_collector(collect)
    return collect

"""repro.obs: unified observability for pipeline, cluster and serve.

One subsystem replaces the three bespoke metrics surfaces the repo
grew: a label-aware metrics :class:`~repro.obs.registry.Registry`
(counters, gauges, fixed-bucket histograms; JSON snapshot and
Prometheus text exposition), a window-lifecycle
:class:`~repro.obs.tracer.Tracer` with per-drop shed-decision
explanations, and the zero-cost-when-disabled hot-path hooks of
:mod:`repro.obs.instrument`.

Typical use::

    pipeline = build_soccer_pipeline(...)
    obs = pipeline.enable_observability()     # before feeding events
    ... run ...
    obs.registry.snapshot()                   # unified metrics view
    render_prometheus(obs.registry)           # text format 0.0.4
    obs.tracer.recent(10)                     # latest window traces
"""

from repro.obs.instrument import (
    Observability,
    deinstrument_chain,
    instrument_chain,
    register_pipeline_collectors,
)
from repro.obs.exposition import (
    CONTENT_TYPE,
    parse_exposition,
    render_prometheus,
    wants_prometheus,
)
from repro.obs.registry import (
    LATENCY_BUCKETS,
    SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricFamily,
    Registry,
)
from repro.obs.snapshot import (
    chain_metrics,
    chain_shedding_state,
    pipeline_metrics,
    shedding_snapshot,
)
from repro.obs.tracer import ShedExplanation, Tracer, WindowTrace

__all__ = [
    "Observability",
    "Registry",
    "MetricFamily",
    "Counter",
    "Gauge",
    "Histogram",
    "LATENCY_BUCKETS",
    "SIZE_BUCKETS",
    "Tracer",
    "WindowTrace",
    "ShedExplanation",
    "CONTENT_TYPE",
    "render_prometheus",
    "wants_prometheus",
    "parse_exposition",
    "instrument_chain",
    "deinstrument_chain",
    "register_pipeline_collectors",
    "chain_metrics",
    "pipeline_metrics",
    "chain_shedding_state",
    "shedding_snapshot",
]

"""Shared snapshot helpers: one code path for every metrics surface.

Before :mod:`repro.obs`, three bespoke dicts reported overlapping
numbers -- ``Pipeline.metrics()``, the sharded per-shard snapshot and
``PipelineServer._shedding_snapshot`` -- and could drift apart.  These
helpers are now the single source for all of them (the pipeline, the
sharded runtime and the server each delegate here), so the in-process
view, the cluster view and the wire view report *identical* numbers by
construction (regression-tested in ``tests/serve``).

Everything is duck-typed over chain/stage attributes; this module
imports nothing from :mod:`repro.pipeline`, so it is import-cycle-free
from anywhere in the repo.
"""

from __future__ import annotations

from typing import Dict

__all__ = [
    "chain_metrics",
    "pipeline_metrics",
    "shedding_snapshot",
    "chain_shedding_state",
]


def chain_metrics(chain) -> Dict[str, Dict[str, object]]:
    """Per-stage metrics of one query chain, keyed by stage name."""
    return {stage.name: stage.metrics() for stage in chain.stages}


def pipeline_metrics(pipeline) -> Dict[str, Dict[str, Dict[str, object]]]:
    """Per-chain, per-stage metrics of a pipeline (or anything with
    ``.chains`` of stage-bearing chains)."""
    return {chain.query.name: chain_metrics(chain) for chain in pipeline.chains}


def chain_shedding_state(chain) -> Dict[str, object]:
    """One chain's shedding activity (the wire's overload payload shape)."""
    shedder = chain.shedder
    return {
        "active": bool(shedder is not None and shedder.active),
        "drop_rate": (
            shedder.observed_drop_rate() if shedder is not None else 0.0
        ),
    }


def shedding_snapshot(pipeline) -> Dict[str, Dict[str, object]]:
    """Per-query shedding state (served to overloaded clients)."""
    return {
        chain.query.name: chain_shedding_state(chain)
        for chain in pipeline.chains
    }

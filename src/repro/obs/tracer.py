"""Window lifecycle tracing and shed-decision explainability.

The :class:`Tracer` keeps a bounded ring buffer of
:class:`WindowTrace` records, one per (query, window).  Every trace
carries the window's lifecycle spans -- created → assigned → shed/kept
→ matched → emitted -- stamped with the pipeline's virtual clock, so
two replays of the same stream produce byte-identical traces.

The paper's load shedder makes per-(event, window) utility-threshold
decisions (§3.5); when a membership is dropped, the tracer attaches a
:class:`ShedExplanation` recording *why*: the utility estimate the
shedder looked up, the threshold it compared against, the partition,
and the overload state (ρ, drop amount ``x``, queue size) the detector
held at decision time.  Explanations come from
:meth:`repro.shedding.base.LoadShedder.explain`, which every strategy
implements (eSPICE reports exact utilities and thresholds; baselines
report what they have).

Cost model: traces are only written at window *close* (one record per
window, derived from state the pipeline already tracks) and at actual
*drops* (overload-only by construction) -- never per kept event, which
is what keeps full tracing inside the ≤2% overhead budget asserted by
``benchmarks/bench_obs.py``.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Tuple

__all__ = ["ShedExplanation", "WindowTrace", "Tracer"]


@dataclass(frozen=True)
class ShedExplanation:
    """Why one (event, window) membership was dropped.

    ``utility``/``threshold``/``partition`` mirror the shedder's actual
    decision inputs (``drop ⇔ UT(T, P) ≤ uth(partition(P))`` for
    eSPICE; ``None`` where a strategy has no such notion).  The
    overload fields record the detector state in force at decision
    time: ``overloaded`` (was the detector in shedding state),
    ``partition_count`` (ρ), ``drop_amount`` (``x`` per partition) and
    ``qsize`` from its most recent check.
    """

    time: float
    event_type: str
    position: int
    predicted_window_size: float
    strategy: str
    utility: Optional[float] = None
    threshold: Optional[float] = None
    partition: Optional[int] = None
    overloaded: bool = False
    partition_count: Optional[int] = None
    drop_amount: Optional[float] = None
    qsize: Optional[int] = None

    def to_dict(self) -> Dict[str, object]:
        return asdict(self)


class WindowTrace:
    """Lifecycle record of one window of one query."""

    __slots__ = (
        "query",
        "window_id",
        "created_at",
        "closed_at",
        "size",
        "dropped",
        "matches",
        "emitted",
        "emitted_at",
        "truncated",
        "explanations",
        "seq",
    )

    def __init__(self, query: str, window_id: int) -> None:
        self.query = query
        self.window_id = window_id
        self.created_at: Optional[float] = None  # window open (event time)
        self.closed_at: Optional[float] = None  # processed at close
        self.size: Optional[int] = None  # assigned memberships
        self.dropped = 0  # shed memberships
        self.matches: Optional[int] = None  # complex events matched
        self.emitted = 0  # complex events emitted
        self.emitted_at: Optional[float] = None
        self.truncated = False  # closed by end-of-stream flush
        self.explanations: List[ShedExplanation] = []
        self.seq = 0  # tracer-assigned recency order

    @property
    def kept(self) -> Optional[int]:
        """Memberships that survived shedding (None before close)."""
        if self.size is None:
            return None
        return self.size - self.dropped

    def spans(self) -> List[Dict[str, object]]:
        """The lifecycle as ordered spans (virtual-clock timestamps)."""
        spans: List[Dict[str, object]] = []
        if self.created_at is not None:
            spans.append({"span": "created", "time": self.created_at})
        if self.size is not None:
            spans.append(
                {"span": "assigned", "time": self.closed_at, "events": self.size}
            )
        if self.dropped or self.explanations:
            spans.append(
                {
                    "span": "shed",
                    "time": self.closed_at,
                    "dropped": self.dropped,
                    "kept": self.kept,
                }
            )
        elif self.size is not None:
            spans.append({"span": "kept", "time": self.closed_at, "kept": self.kept})
        if self.matches is not None:
            spans.append(
                {"span": "matched", "time": self.closed_at, "matches": self.matches}
            )
        if self.emitted_at is not None:
            spans.append(
                {"span": "emitted", "time": self.emitted_at, "emitted": self.emitted}
            )
        return spans

    def to_dict(self) -> Dict[str, object]:
        return {
            "query": self.query,
            "window_id": self.window_id,
            "created_at": self.created_at,
            "closed_at": self.closed_at,
            "size": self.size,
            "kept": self.kept,
            "dropped": self.dropped,
            "matches": self.matches,
            "emitted": self.emitted,
            "truncated": self.truncated,
            "spans": self.spans(),
            "shed_explanations": [e.to_dict() for e in self.explanations],
        }


class Tracer:
    """Bounded ring buffer of window traces, keyed by (query, window id).

    ``capacity`` bounds live memory: inserting a new window beyond it
    evicts the least recently *touched* trace (``evicted`` counts
    them).  ``max_explanations`` caps the per-window explanation list;
    drops beyond the cap still count in ``dropped``.
    """

    def __init__(self, capacity: int = 512, max_explanations: int = 8) -> None:
        if capacity <= 0:
            raise ValueError("tracer capacity must be positive")
        if max_explanations < 0:
            raise ValueError("max explanations cannot be negative")
        self.capacity = capacity
        self.max_explanations = max_explanations
        self.evicted = 0
        self._seq = 0
        self._windows: "OrderedDict[Tuple[str, int], WindowTrace]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._windows)

    # ------------------------------------------------------------------
    # recording (called by the instrumented pipeline)
    # ------------------------------------------------------------------
    def trace(self, query: str, window_id: int) -> WindowTrace:
        """Get-or-create the trace of one window, marking it recent."""
        key = (query, window_id)
        trace = self._windows.get(key)
        if trace is None:
            trace = WindowTrace(query, window_id)
            self._windows[key] = trace
            while len(self._windows) > self.capacity:
                self._windows.popitem(last=False)
                self.evicted += 1
        else:
            self._windows.move_to_end(key)
        self._seq += 1
        trace.seq = self._seq
        return trace

    def on_shed(self, query: str, window_id: int, explanation: ShedExplanation) -> None:
        """Record one dropped membership with its explanation."""
        trace = self.trace(query, window_id)
        trace.dropped += 1
        if len(trace.explanations) < self.max_explanations:
            trace.explanations.append(explanation)

    def on_window_closed(
        self,
        query: str,
        window,
        now: float,
        matches: int,
    ) -> WindowTrace:
        """Record a window's close: creation, size, match outcome.

        ``window`` is a :class:`repro.cep.windows.Window`; its
        ``open_time`` backfills the creation span, so no per-event work
        happened while the window was filling.
        """
        trace = self.trace(query, window.window_id)
        trace.created_at = window.open_time
        trace.closed_at = now
        trace.size = window.size
        trace.matches = matches
        trace.truncated = window.truncated
        return trace

    def on_emitted(self, query: str, window_id: int, now: float, count: int) -> None:
        """Record complex events of one window leaving the emit stage."""
        trace = self.trace(query, window_id)
        trace.emitted += count
        trace.emitted_at = now

    # ------------------------------------------------------------------
    # querying (the /trace HTTP surface)
    # ------------------------------------------------------------------
    def get(
        self, window_id: int, query: Optional[str] = None
    ) -> List[WindowTrace]:
        """Traces of ``window_id`` (across queries unless one is named)."""
        if query is not None:
            trace = self._windows.get((query, window_id))
            return [trace] if trace is not None else []
        return [
            trace
            for (_query, wid), trace in self._windows.items()
            if wid == window_id
        ]

    def recent(self, n: int = 20) -> List[Dict[str, object]]:
        """The ``n`` most recently touched traces, newest first."""
        traces = sorted(
            self._windows.values(), key=lambda t: t.seq, reverse=True
        )
        return [trace.to_dict() for trace in traces[: max(0, n)]]

    def clear(self) -> None:
        """Drop every trace (the eviction counter survives)."""
        self._windows.clear()

"""The ``repro-lint`` command line (also ``python -m repro.analysis``).

Exit codes: 0 = clean (baselined/suppressed findings included), 1 =
new findings or unparsable files, 2 = usage error.

Typical invocations::

    repro-lint                          # lint src/repro + benchmarks
    repro-lint --format json            # machine-readable (CI)
    repro-lint --explain R004           # what a rule protects, and why
    repro-lint --changed-only           # only files changed vs merge-base
    repro-lint --write-baseline         # grandfather current findings
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence

from repro.analysis.engine import (
    BASELINE_NAME,
    DEFAULT_TARGETS,
    LintResult,
    discover_root,
    iter_python_files,
    lint_paths,
    load_baseline,
    write_baseline,
)
from repro.analysis.rules import build_rules, rules_by_code

__all__ = ["main"]


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Invariant-aware static analysis for the repro codebase: "
            "the determinism contract (virtual clocks, seeded RNG, "
            "kernel purity, bounded queues, batch/per-event parity, "
            "metric naming) as named, suppressible rules."
        ),
    )
    parser.add_argument(
        "targets",
        nargs="*",
        help=f"directories/files to lint, relative to the repo root "
        f"(default: {' '.join(DEFAULT_TARGETS)})",
    )
    parser.add_argument(
        "--root",
        type=Path,
        default=None,
        help="repo root (default: auto-discovered from cwd)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=None,
        help=f"baseline file (default: <root>/{BASELINE_NAME})",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="grandfather every current finding into the baseline file",
    )
    parser.add_argument(
        "--changed-only",
        action="store_true",
        help="lint only files changed vs the git merge-base (CI fast path)",
    )
    parser.add_argument(
        "--base",
        default="origin/main",
        help="merge-base ref for --changed-only (default: origin/main, "
        "falling back to main)",
    )
    parser.add_argument(
        "--explain",
        metavar="RXXX",
        help="print what a rule protects and how to comply, then exit",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="list every rule with its one-line summary, then exit",
    )
    return parser


def _explain(code: str) -> int:
    rules = rules_by_code()
    rule = rules.get(code.upper())
    if rule is None:
        known = ", ".join(sorted(rules))
        print(f"unknown rule {code!r}; known rules: {known}", file=sys.stderr)
        return 2
    print(f"{rule.code} [{rule.name}] -- {rule.summary}")
    print()
    print(rule.explanation)
    print()
    print(
        f"Suppress one occurrence with `# repro-lint: disable={rule.code} "
        "<reason>` on (or directly above) the offending line; fixtures "
        f"live in tests/analysis/fixtures/{rule.code}/."
    )
    return 0


def _list_rules() -> int:
    for rule in build_rules():
        print(f"{rule.code}  {rule.name:<18} {rule.summary}")
    return 0


def _changed_files(root: Path, base: str) -> Optional[List[Path]]:
    """Files changed vs the merge-base (committed or not), or ``None``.

    ``None`` means git could not answer (shallow clone, no such ref,
    not a repo); the caller falls back to a full-tree lint, which is
    always correct, only slower.
    """

    def git(*args: str) -> Optional[str]:
        try:
            proc = subprocess.run(
                ["git", "-C", str(root), *args],
                capture_output=True,
                text=True,
                timeout=30,
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        return proc.stdout if proc.returncode == 0 else None

    merge_base = None
    for ref in (base, "main"):
        out = git("merge-base", "HEAD", ref)
        if out:
            merge_base = out.strip()
            break
    if merge_base is None:
        return None
    changed = git("diff", "--name-only", merge_base)
    if changed is None:
        return None
    names = set(changed.split())
    untracked = git("ls-files", "--others", "--exclude-standard")
    if untracked:
        names.update(untracked.split())
    return [root / name for name in sorted(names) if name.endswith(".py")]


def run(argv: Optional[Sequence[str]] = None) -> int:
    """Parse ``argv``, lint, print; returns the process exit code."""
    args = _parser().parse_args(argv)
    if args.explain:
        return _explain(args.explain)
    if args.list_rules:
        return _list_rules()
    try:
        root = (args.root or discover_root()).resolve()
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    targets = tuple(args.targets) if args.targets else DEFAULT_TARGETS
    files = iter_python_files(root, targets)
    if args.changed_only:
        changed = _changed_files(root, args.base)
        if changed is None:
            print(
                "repro-lint: --changed-only could not resolve a git "
                "merge-base; linting the full tree",
                file=sys.stderr,
            )
        else:
            wanted = {path.resolve() for path in changed}
            files = [path for path in files if path.resolve() in wanted]
    baseline_path = args.baseline or root / BASELINE_NAME
    baseline = load_baseline(baseline_path)
    result = lint_paths(root, files, baseline=baseline)
    if args.write_baseline:
        grandfathered = result.findings + result.baselined
        write_baseline(baseline_path, grandfathered)
        print(
            f"wrote {len(grandfathered)} finding(s) to {baseline_path}",
            file=sys.stderr,
        )
        return 0
    _emit(result, args.format)
    return 0 if result.ok else 1


def _emit(result: LintResult, fmt: str) -> None:
    if fmt == "json":
        print(json.dumps(result.to_dict(), indent=2, sort_keys=True))
        return
    for finding in result.findings:
        print(finding.render())
    for error in result.errors:
        print(f"ERROR {error}")
    status = "clean" if result.ok else f"{len(result.findings)} finding(s)"
    print(
        f"repro-lint: {status} "
        f"({result.files_scanned} files, "
        f"{len(result.suppressed)} suppressed, "
        f"{len(result.baselined)} baselined)"
    )


def main() -> None:
    """Console entry point (``repro-lint``)."""
    raise SystemExit(run())

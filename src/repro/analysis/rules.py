"""The standing-invariant rules of ``repro-lint`` (R001-R008).

Each rule mechanises one invariant the repo has so far enforced only by
convention and after-the-fact property tests:

========  ====================  ==============================================
code      name                  invariant protected
========  ====================  ==============================================
R001      clock-discipline      virtual-time modules never read the wall clock
R002      seeded-randomness     core randomness flows through seeded instances
R003      kernel-purity         numpy is quarantined in ``repro.core.kernel``
R004      bounded-queues        serve/cluster queues declare a capacity
R005      asyncio-hygiene       no blocking calls inside ``async def`` in serve
R006      hot-path-slots        hot-path classes declare ``__slots__``
R007      batch-parity          batch overrides pair with per-event overrides
R008      metric-naming         registry families are ``repro_*`` and unique
========  ====================  ==============================================

Rules are path-scoped: :meth:`Rule.applies_to` decides from the
repo-relative path, so the same engine lints fixture snippets under
*virtual* paths (see :func:`repro.analysis.engine.lint_source`).
Every finding is suppressible inline with
``# repro-lint: disable=RXXX reason`` and explainable with
``repro-lint --explain RXXX``.
"""

from __future__ import annotations

import ast
import re
from typing import Dict, List, Optional, Tuple

from repro.analysis.engine import FileContext, Finding, Project

__all__ = ["Rule", "build_rules", "rules_by_code"]

#: Modules that must run on the virtual clock only (paper-faithful
#: deterministic replay): reading the wall clock here would make
#: detections depend on host timing.
VIRTUAL_TIME_PATHS: Tuple[str, ...] = (
    "src/repro/cep/",
    "src/repro/pipeline/",
    "src/repro/shedding/",
    "src/repro/core/",
)

#: Files inside the virtual-time set that may read the wall clock
#: (none today; measurement-only modules such as ``obs/instrument.py``
#: live outside the scoped directories already).
WALL_CLOCK_ALLOWLIST: frozenset = frozenset()

SERVE_PATHS: Tuple[str, ...] = ("src/repro/serve/",)
QUEUE_PATHS: Tuple[str, ...] = ("src/repro/serve/", "src/repro/cluster/")
KERNEL_MODULE = "src/repro/core/kernel.py"

#: Designated hot-path modules: every class here is instantiated per
#: event, per batch or per message, so attribute dicts are measurable
#: overhead and ``__slots__`` is required (suppress with a reason for
#: classes that are genuinely not per-event).
HOT_PATH_MODULES: frozenset = frozenset(
    {
        "src/repro/pipeline/stages.py",
        "src/repro/pipeline/batching.py",
        "src/repro/cep/events.py",
        "src/repro/cluster/transport.py",
    }
)

METRIC_NAME = re.compile(r"^repro_[a-z0-9_]+$")


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for Name/Attribute chains, ``None`` otherwise."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


class _ScopedVisitor(ast.NodeVisitor):
    """AST visitor tracking the enclosing class/function qualname."""

    def __init__(self) -> None:
        self._stack: List[str] = []

    def scope(self) -> str:
        return ".".join(self._stack) or "<module>"

    def _scoped(self, node: ast.AST) -> None:
        self._stack.append(getattr(node, "name", "?"))
        self.generic_visit(node)
        self._stack.pop()

    visit_ClassDef = _scoped
    visit_FunctionDef = _scoped
    visit_AsyncFunctionDef = _scoped


class Rule:
    """One named, individually suppressible invariant check."""

    code: str = ""
    name: str = ""
    summary: str = ""
    explanation: str = ""

    def applies_to(self, path: str) -> bool:
        return True

    def check(self, ctx: FileContext, project: Project) -> List[Finding]:
        return []

    def finalize(self, project: Project) -> List[Finding]:
        """Cross-file findings, produced after every file was checked."""
        return []

    def finding(
        self, ctx: FileContext, node: ast.AST, message: str, symbol: str = ""
    ) -> Finding:
        return Finding(
            rule=self.code,
            path=ctx.path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
            symbol=symbol,
        )


# ----------------------------------------------------------------------
# R001 clock discipline
# ----------------------------------------------------------------------
class ClockDisciplineRule(Rule):
    code = "R001"
    name = "clock-discipline"
    summary = "virtual-time modules must not read the wall clock"
    explanation = (
        "Detections are property-tested to be bit-identical across the "
        "per-event, batched, sharded and wire paths; that only holds "
        "because cep/, pipeline/, shedding/ and core/ advance on the "
        "virtual clock (event timestamps / simulation time). A "
        "time.time(), time.perf_counter() or datetime.now() reference "
        "in these modules couples results to host timing and breaks "
        "deterministic replay. Take `now` as a parameter instead (see "
        "repro.cep.clock); wall-clock measurement belongs to obs/, "
        "serve/ and the benchmarks."
    )

    WALL_CLOCK = frozenset(
        {
            "time.time",
            "time.time_ns",
            "time.monotonic",
            "time.monotonic_ns",
            "time.perf_counter",
            "time.perf_counter_ns",
            "time.process_time",
            "time.process_time_ns",
            "datetime.datetime.now",
            "datetime.datetime.utcnow",
            "datetime.datetime.today",
            "datetime.date.today",
        }
    )

    def applies_to(self, path: str) -> bool:
        return path.startswith(VIRTUAL_TIME_PATHS) and path not in WALL_CLOCK_ALLOWLIST

    def check(self, ctx: FileContext, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        deny = self.WALL_CLOCK
        rule = self

        class Visitor(_ScopedVisitor):
            def visit_Attribute(self, node: ast.Attribute) -> None:
                self._match(node)
                self.generic_visit(node)

            def visit_Name(self, node: ast.Name) -> None:
                if isinstance(node.ctx, ast.Load):
                    self._match(node)

            def _match(self, node: ast.AST) -> None:
                dotted = dotted_name(node)
                if dotted is None:
                    return
                resolved = ctx.imports.resolve(dotted)
                if resolved in deny:
                    findings.append(
                        rule.finding(
                            ctx,
                            node,
                            f"wall-clock reference {resolved}() in "
                            f"virtual-time module (scope {self.scope()}); "
                            "pass `now` explicitly instead",
                            symbol=resolved,
                        )
                    )

        Visitor().visit(ctx.tree)
        # references flagged at the Attribute node can duplicate via
        # nested visits only for identical (line, col); dedupe keeps
        # one finding per source location
        return list(dict.fromkeys(findings))


# ----------------------------------------------------------------------
# R002 seeded randomness
# ----------------------------------------------------------------------
class SeededRandomnessRule(Rule):
    code = "R002"
    name = "seeded-randomness"
    summary = "core paths must use an instance-held random.Random(seed)"
    explanation = (
        "Replays are only reproducible when every random draw flows "
        "through an instance-held random.Random(seed) (see "
        "SamplingStage or the random shedder). The module-level RNG "
        "(random.random(), random.choice(), ...) is shared, seedable "
        "by anyone and reseeded by other libraries, so its draws are "
        "not attributable to a pipeline seed. Construct "
        "random.Random(seed) (allowed) and draw from that."
    )

    ALLOWED = frozenset({"random.Random", "random.SystemRandom"})

    def applies_to(self, path: str) -> bool:
        return path.startswith(VIRTUAL_TIME_PATHS)

    def check(self, ctx: FileContext, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        rule = self

        class Visitor(_ScopedVisitor):
            def visit_Attribute(self, node: ast.Attribute) -> None:
                self._match(node)
                self.generic_visit(node)

            def visit_Name(self, node: ast.Name) -> None:
                if isinstance(node.ctx, ast.Load):
                    self._match(node)

            def _match(self, node: ast.AST) -> None:
                dotted = dotted_name(node)
                if dotted is None:
                    return
                resolved = ctx.imports.resolve(dotted)
                if (
                    resolved.startswith("random.")
                    and resolved.count(".") == 1
                    and resolved not in rule.ALLOWED
                ):
                    findings.append(
                        rule.finding(
                            ctx,
                            node,
                            f"module-level RNG use {resolved} in core path "
                            f"(scope {self.scope()}); draw from an "
                            "instance-held random.Random(seed)",
                            symbol=resolved,
                        )
                    )

        Visitor().visit(ctx.tree)
        return list(dict.fromkeys(findings))


# ----------------------------------------------------------------------
# R003 kernel-backend purity
# ----------------------------------------------------------------------
class KernelPurityRule(Rule):
    code = "R003"
    name = "kernel-purity"
    summary = "numpy imports are quarantined in repro.core.kernel"
    explanation = (
        "The package ships with empty install_requires: numpy is an "
        "optional accelerator, auto-detected exactly once in "
        "repro.core.kernel, which provides a bit-identical stdlib "
        "fallback. An `import numpy` anywhere else either breaks "
        "no-numpy deployments outright or -- worse -- silently forks "
        "the fallback contract. Route array work through the kernel's "
        "backend API instead."
    )

    def applies_to(self, path: str) -> bool:
        return path.startswith("src/repro/") and path != KERNEL_MODULE

    def check(self, ctx: FileContext, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "numpy":
                        findings.append(
                            self.finding(
                                ctx,
                                node,
                                "numpy import outside repro.core.kernel "
                                "breaks the stdlib-only fallback contract",
                                symbol="import numpy",
                            )
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.level == 0 and (node.module or "").split(".")[0] == "numpy":
                    findings.append(
                        self.finding(
                            ctx,
                            node,
                            "numpy import outside repro.core.kernel "
                            "breaks the stdlib-only fallback contract",
                            symbol="import numpy",
                        )
                    )
        return findings


# ----------------------------------------------------------------------
# R004 bounded queues
# ----------------------------------------------------------------------
class BoundedQueuesRule(Rule):
    code = "R004"
    name = "bounded-queues"
    summary = "serve/cluster queues must declare a capacity"
    explanation = (
        "The serve and cluster layers promise explicit backpressure: "
        "overload turns into a structured `overloaded` response or a "
        "shed decision, never into unbounded process memory. A "
        "queue.Queue() / asyncio.Queue() / mp.Queue() constructed "
        "without a capacity is an invisible infinite buffer that "
        "absorbs overload until the OOM killer arbitrates instead of "
        "the shedder. Pass maxsize=... (tied to the relevant "
        "backpressure config), or suppress with a justification when "
        "bounded-ness is enforced by construction upstream."
    )

    BOUNDABLE = frozenset({"Queue", "LifoQueue", "PriorityQueue", "JoinableQueue"})
    NEVER_BOUNDED = frozenset({"SimpleQueue"})

    def applies_to(self, path: str) -> bool:
        return path.startswith(QUEUE_PATHS)

    def check(self, ctx: FileContext, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        rule = self

        class Visitor(_ScopedVisitor):
            def visit_Call(self, node: ast.Call) -> None:
                dotted = dotted_name(node.func)
                if dotted is not None:
                    tail = dotted.split(".")[-1]
                    if tail in rule.NEVER_BOUNDED:
                        findings.append(
                            rule.finding(
                                ctx,
                                node,
                                f"{dotted}() cannot be bounded; use "
                                "Queue(maxsize=...) so backpressure is "
                                "explicit",
                                symbol=f"{self.scope()}:{dotted}",
                            )
                        )
                    elif tail in rule.BOUNDABLE and rule._unbounded(node):
                        findings.append(
                            rule.finding(
                                ctx,
                                node,
                                f"unbounded {dotted}() (scope "
                                f"{self.scope()}); pass maxsize= tied to "
                                "the backpressure config",
                                symbol=f"{self.scope()}:{dotted}",
                            )
                        )
                self.generic_visit(node)

        Visitor().visit(ctx.tree)
        return findings

    @staticmethod
    def _unbounded(node: ast.Call) -> bool:
        if node.args:
            first = node.args[0]
            # Queue(0) is the stdlib's spelling of "infinite"
            return isinstance(first, ast.Constant) and first.value == 0
        for keyword in node.keywords:
            if keyword.arg == "maxsize":
                value = keyword.value
                return isinstance(value, ast.Constant) and value.value == 0
        return True


# ----------------------------------------------------------------------
# R005 asyncio hygiene
# ----------------------------------------------------------------------
class AsyncioHygieneRule(Rule):
    code = "R005"
    name = "asyncio-hygiene"
    summary = "no blocking calls lexically inside async def in repro.serve"
    explanation = (
        "repro.serve runs one event loop for every connection; a single "
        "blocking call (time.sleep, a sync socket/subprocess op, a "
        "blocking file read) inside an `async def` freezes every "
        "client and the pipeline feeder at once. Use the asyncio "
        "equivalents (asyncio.sleep, streams, executors) or move the "
        "blocking work out of the event loop."
    )

    BLOCKING = frozenset(
        {
            "time.sleep",
            "socket.create_connection",
            "socket.getaddrinfo",
            "socket.gethostbyname",
            "subprocess.run",
            "subprocess.call",
            "subprocess.check_call",
            "subprocess.check_output",
            "subprocess.Popen",
            "os.system",
            "os.popen",
            "os.wait",
            "os.waitpid",
            "urllib.request.urlopen",
            "open",
        }
    )

    def applies_to(self, path: str) -> bool:
        return path.startswith(SERVE_PATHS)

    def check(self, ctx: FileContext, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        rule = self

        class Visitor(_ScopedVisitor):
            def __init__(self) -> None:
                super().__init__()
                self.async_depth = 0

            def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
                self.async_depth += 1
                self._scoped(node)
                self.async_depth -= 1

            def visit_Call(self, node: ast.Call) -> None:
                if self.async_depth > 0:
                    dotted = dotted_name(node.func)
                    if dotted is not None:
                        resolved = ctx.imports.resolve(dotted)
                        if resolved in rule.BLOCKING:
                            findings.append(
                                rule.finding(
                                    ctx,
                                    node,
                                    f"blocking call {resolved}() inside "
                                    f"async def {self.scope()}; it stalls "
                                    "the whole event loop",
                                    symbol=f"{self.scope()}:{resolved}",
                                )
                            )
                self.generic_visit(node)

        Visitor().visit(ctx.tree)
        return findings


# ----------------------------------------------------------------------
# R006 hot-path __slots__
# ----------------------------------------------------------------------
class HotPathSlotsRule(Rule):
    code = "R006"
    name = "hot-path-slots"
    summary = "classes in designated hot-path modules declare __slots__"
    explanation = (
        "pipeline/stages.py, pipeline/batching.py, cep/events.py and "
        "cluster/transport.py sit on the per-event/per-batch hot path; "
        "their instances are created or touched millions of times per "
        "run. __slots__ removes the per-instance attribute dict "
        "(smaller objects, faster attribute loads) and doubles as a "
        "typo guard on the hot path. Declare `__slots__ = (...)` or "
        "use @dataclass(slots=True); suppress with a reason for "
        "classes that are provably not per-event."
    )

    def applies_to(self, path: str) -> bool:
        return path in HOT_PATH_MODULES

    def check(self, ctx: FileContext, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef) and not self._has_slots(node):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"hot-path class {node.name} lacks __slots__ "
                        "(declare it or use @dataclass(slots=True))",
                        symbol=node.name,
                    )
                )
        return findings

    @staticmethod
    def _has_slots(node: ast.ClassDef) -> bool:
        for stmt in node.body:
            if isinstance(stmt, ast.Assign):
                for target in stmt.targets:
                    if isinstance(target, ast.Name) and target.id == "__slots__":
                        return True
            elif isinstance(stmt, ast.AnnAssign):
                target = stmt.target
                if isinstance(target, ast.Name) and target.id == "__slots__":
                    return True
        for decorator in node.decorator_list:
            if isinstance(decorator, ast.Call):
                dotted = dotted_name(decorator.func)
                if dotted is not None and dotted.split(".")[-1] == "dataclass":
                    for keyword in decorator.keywords:
                        if (
                            keyword.arg == "slots"
                            and isinstance(keyword.value, ast.Constant)
                            and keyword.value.value is True
                        ):
                            return True
        return False


# ----------------------------------------------------------------------
# R007 batch/per-event parity pairing
# ----------------------------------------------------------------------
class BatchParityRule(Rule):
    code = "R007"
    name = "batch-parity"
    summary = "a Stage overriding process_batch pairs it with on_event"
    explanation = (
        "The determinism contract says batched and per-event execution "
        "emit bit-identical detections; that is only checkable when "
        "both paths exist. A Stage subclass overriding process_batch "
        "without overriding on_event has no per-event reference "
        "implementation to compare against. Override both, or mark the "
        "class `# repro-lint: parity-tested` -- the marker is "
        "cross-checked against tests/ actually mentioning the class, "
        "so it cannot rot silently."
    )

    def applies_to(self, path: str) -> bool:
        return path.startswith("src/repro/")

    def check(self, ctx: FileContext, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            if not self._is_stage_subclass(node):
                continue
            defined = {
                stmt.name
                for stmt in node.body
                if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            }
            if "process_batch" not in defined or "on_event" in defined:
                continue
            end = getattr(node, "end_lineno", node.lineno) or node.lineno
            marked = any(
                node.lineno <= line <= end for line in ctx.marker_lines
            )
            if not marked:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"{node.name} overrides process_batch without "
                        "on_event; pair them or mark the class "
                        "`# repro-lint: parity-tested` (backed by a test)",
                        symbol=node.name,
                    )
                )
            elif project.has_corpus and node.name not in project.test_corpus():
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"{node.name} is marked parity-tested but no file "
                        "under tests/ references it",
                        symbol=node.name,
                    )
                )
        return findings

    @staticmethod
    def _is_stage_subclass(node: ast.ClassDef) -> bool:
        for base in node.bases:
            dotted = dotted_name(base)
            if dotted is not None and dotted.split(".")[-1].endswith("Stage"):
                return True
        return False


# ----------------------------------------------------------------------
# R008 metric naming
# ----------------------------------------------------------------------
class MetricNamingRule(Rule):
    code = "R008"
    name = "metric-naming"
    summary = "registry families match repro_[a-z0-9_]+ and register once"
    explanation = (
        "Every surface (pipeline, cluster, serve) publishes into one "
        "shared repro.obs Registry that is scraped as Prometheus text; "
        "the exposition is only stable when family names share the "
        "repro_ prefix, stay lowercase snake_case, and each family is "
        "created at exactly one source location (two sites registering "
        "the same family drift apart in help text, labels and "
        "semantics). Rename the family or move the registration to a "
        "shared helper."
    )

    FACTORIES = frozenset({"counter", "gauge", "histogram"})

    def __init__(self) -> None:
        self._sites: Dict[str, List[Tuple[FileContext, ast.Call, str]]] = {}

    def applies_to(self, path: str) -> bool:
        return path.startswith("src/repro/")

    def check(self, ctx: FileContext, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (isinstance(func, ast.Attribute) and func.attr in self.FACTORIES):
                continue
            if not node.args:
                continue
            first = node.args[0]
            if not (isinstance(first, ast.Constant) and isinstance(first.value, str)):
                continue
            name = first.value
            self._sites.setdefault(name, []).append((ctx, node, name))
            if not METRIC_NAME.match(name):
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"metric family {name!r} must match "
                        "repro_[a-z0-9_]+ (shared-registry exposition "
                        "contract)",
                        symbol=name,
                    )
                )
        return findings

    def finalize(self, project: Project) -> List[Finding]:
        findings: List[Finding] = []
        for name, sites in self._sites.items():
            distinct = {(ctx.path, node.lineno) for ctx, node, _ in sites}
            if len(distinct) < 2:
                continue
            first_ctx, first_node, _ = sites[0]
            anchor = f"{first_ctx.path}:{first_node.lineno}"
            for ctx, node, _ in sites[1:]:
                findings.append(
                    self.finding(
                        ctx,
                        node,
                        f"metric family {name!r} already registered at "
                        f"{anchor}; one family, one site",
                        symbol=name,
                    )
                )
        return findings


def build_rules() -> List[Rule]:
    """Fresh rule instances for one lint run (R008 carries run state)."""
    return [
        ClockDisciplineRule(),
        SeededRandomnessRule(),
        KernelPurityRule(),
        BoundedQueuesRule(),
        AsyncioHygieneRule(),
        HotPathSlotsRule(),
        BatchParityRule(),
        MetricNamingRule(),
    ]


def rules_by_code() -> Dict[str, Rule]:
    """Code -> rule instance, for ``--explain`` and the test harness."""
    return {rule.code: rule for rule in build_rules()}

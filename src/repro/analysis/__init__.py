"""``repro.analysis``: the determinism contract as checkable artifacts.

Five PRs of this repo converged on one product: *bit-identical,
identically-ordered detections* across the per-event, micro-batched,
sharded and wire paths, on a stdlib-only fallback, under a virtual
clock, with ≈0%-when-disabled observability.  Until now every one of
those invariants was reviewer folklore plus after-the-fact property
tests; this package makes them a mechanical gate that runs before any
test does.

Two legs:

- **repro-lint** (:mod:`repro.analysis.cli`, console script
  ``repro-lint``, runner ``python -m repro.analysis``): an AST rule
  engine (stdlib ``ast``/``tokenize``, no dependencies) enforcing the
  named rules R001-R008 of :mod:`repro.analysis.rules` over
  ``src/repro`` and ``benchmarks``, with inline suppressions, a
  checked-in baseline for grandfathered findings, ``--explain`` docs
  and text/JSON output;
- **typing gate**: ``mypy.ini`` at the repo root runs mypy strictly
  over ``repro.core``, ``repro.shedding`` and ``repro.pipeline`` (the
  packages whose signatures the determinism contract leans on) and
  permissively elsewhere; ``src/repro/py.typed`` marks the package as
  typed for downstream consumers.

Both legs run as the CI ``lint`` job; see README "Correctness tooling".
"""

from repro.analysis.engine import (
    BASELINE_NAME,
    DEFAULT_TARGETS,
    FileContext,
    Finding,
    LintResult,
    Project,
    discover_root,
    iter_python_files,
    lint_paths,
    lint_source,
    lint_tree,
    load_baseline,
    write_baseline,
)
from repro.analysis.rules import Rule, build_rules, rules_by_code

__all__ = [
    "BASELINE_NAME",
    "DEFAULT_TARGETS",
    "FileContext",
    "Finding",
    "LintResult",
    "Project",
    "Rule",
    "build_rules",
    "discover_root",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "lint_tree",
    "load_baseline",
    "rules_by_code",
    "write_baseline",
]

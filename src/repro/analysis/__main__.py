"""``python -m repro.analysis`` == the ``repro-lint`` console script."""

from repro.analysis.cli import main

if __name__ == "__main__":
    main()

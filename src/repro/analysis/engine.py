"""The ``repro-lint`` engine: files, findings, suppressions, baselines.

The engine is deliberately boring infrastructure so that the rules
(:mod:`repro.analysis.rules`) stay small: it discovers the scanned
tree, parses each file once into a :class:`FileContext` (AST, import
map, lint directives), runs every applicable rule over it, applies
inline suppressions and the checked-in baseline, and returns one
:class:`LintResult`.

Directives are ordinary comments::

    q = asyncio.Queue()   # repro-lint: disable=R004 capacity enforced upstream
    # repro-lint: disable-file=R006 scratch types, not per-event
    # repro-lint: parity-tested

``disable=RXXX[,RYYY] reason`` suppresses those rules on its own line
(or the line directly below, for standalone comments);
``disable-file=RXXX`` suppresses a rule for the whole file;
``parity-tested`` is the R007 marker (see
:class:`repro.analysis.rules.BatchParityRule`).

Baselines grandfather pre-existing findings so a newly introduced rule
gates *new* violations from day one without demanding a flag-day
cleanup: a baseline entry matches on ``(rule, path, symbol)`` -- not
the line number -- so unrelated edits to a baselined file do not churn
the file.
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "DEFAULT_TARGETS",
    "BASELINE_NAME",
    "FileContext",
    "Finding",
    "LintResult",
    "Project",
    "discover_root",
    "iter_python_files",
    "lint_paths",
    "lint_source",
    "lint_tree",
    "load_baseline",
    "write_baseline",
]

#: Directories scanned by default, relative to the repo root.
DEFAULT_TARGETS: Tuple[str, ...] = ("src/repro", "benchmarks")

#: Name of the checked-in baseline file at the repo root.
BASELINE_NAME = "repro-lint-baseline.json"

_DIRECTIVE = re.compile(r"#\s*repro-lint:\s*(?P<body>.+)")
_DISABLE = re.compile(
    r"disable(?P<scope>-file)?=(?P<codes>R\d{3}(?:\s*,\s*R\d{3})*)"
)

#: The R007 marker asserting a parity test covers a batch-only stage.
PARITY_MARKER = "parity-tested"


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str
    path: str
    line: int
    col: int
    message: str
    #: Stable anchor used for baseline matching (class name, resolved
    #: call, ...) -- line numbers churn, symbols do not.
    symbol: str = ""

    @property
    def baseline_key(self) -> Tuple[str, str, str]:
        return (self.rule, self.path, self.symbol)

    def to_dict(self) -> Dict[str, object]:
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
        }

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"


class _ImportMap:
    """Local name -> dotted origin, built from a module's imports."""

    def __init__(self) -> None:
        self.names: Dict[str, str] = {}

    @classmethod
    def from_tree(cls, tree: ast.AST) -> "_ImportMap":
        imports = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        imports.names[alias.asname] = alias.name
                    else:
                        head = alias.name.split(".")[0]
                        imports.names[head] = head
            elif isinstance(node, ast.ImportFrom):
                if node.module is None or node.level:
                    continue  # relative imports stay package-internal
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    imports.names[alias.asname or alias.name] = (
                        f"{node.module}.{alias.name}"
                    )
        return imports

    def resolve(self, dotted: str) -> str:
        """Expand the leading segment of ``dotted`` through the imports."""
        head, _, rest = dotted.partition(".")
        base = self.names.get(head)
        if base is None:
            return dotted
        return f"{base}.{rest}" if rest else base


class FileContext:
    """One parsed source file plus its lint directives."""

    def __init__(self, path: str, source: str) -> None:
        self.path = path.replace("\\", "/")
        self.source = source
        self.tree = ast.parse(source, filename=self.path)
        self.imports = _ImportMap.from_tree(self.tree)
        self.line_disables: Dict[int, Set[str]] = {}
        self.file_disables: Set[str] = set()
        self.marker_lines: Set[int] = set()
        self._scan_directives()

    def _scan_directives(self) -> None:
        try:
            tokens = tokenize.generate_tokens(io.StringIO(self.source).readline)
            for token in tokens:
                if token.type != tokenize.COMMENT:
                    continue
                match = _DIRECTIVE.search(token.string)
                if match is None:
                    continue
                body = match.group("body")
                if PARITY_MARKER in body:
                    self.marker_lines.add(token.start[0])
                disable = _DISABLE.search(body)
                if disable is not None:
                    codes = {
                        code.strip()
                        for code in disable.group("codes").split(",")
                    }
                    if disable.group("scope"):
                        self.file_disables.update(codes)
                    else:
                        self.line_disables.setdefault(
                            token.start[0], set()
                        ).update(codes)
        except tokenize.TokenError:  # pragma: no cover - defensive
            pass

    def suppressed(self, finding: Finding) -> bool:
        """Whether an inline directive waives ``finding``.

        Trailing comments suppress their own line; a standalone
        directive comment suppresses the line directly below it.
        """
        if finding.rule in self.file_disables:
            return True
        for line in (finding.line, finding.line - 1):
            if finding.rule in self.line_disables.get(line, ()):
                return True
        return False


class Project:
    """Cross-file context shared by all rules during one run."""

    def __init__(
        self, root: Optional[Path], test_corpus: Optional[str] = None
    ) -> None:
        self.root = root
        self._corpus = test_corpus

    @property
    def has_corpus(self) -> bool:
        return self._corpus is not None or self.root is not None

    def test_corpus(self) -> str:
        """Concatenated text of ``tests/**/*.py`` (lazily built)."""
        if self._corpus is None:
            parts: List[str] = []
            if self.root is not None:
                tests = self.root / "tests"
                if tests.is_dir():
                    for path in sorted(tests.rglob("*.py")):
                        try:
                            parts.append(path.read_text(encoding="utf-8"))
                        except OSError:  # pragma: no cover - defensive
                            continue
            self._corpus = "\n".join(parts)
        return self._corpus


@dataclass
class LintResult:
    """Everything one lint run produced."""

    findings: List[Finding] = field(default_factory=list)
    suppressed: List[Finding] = field(default_factory=list)
    baselined: List[Finding] = field(default_factory=list)
    files_scanned: int = 0
    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Green gate: no new findings and every file parsed."""
        return not self.findings and not self.errors

    def to_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "files_scanned": self.files_scanned,
            "findings": [f.to_dict() for f in self.findings],
            "suppressed": len(self.suppressed),
            "baselined": len(self.baselined),
            "errors": self.errors,
        }


def discover_root(start: Optional[Path] = None) -> Path:
    """Walk up from ``start`` (default: cwd) to the repo root.

    The root is the first ancestor holding both ``setup.py`` and
    ``src/repro`` -- the layout this linter is written for.
    """
    here = (start or Path.cwd()).resolve()
    for candidate in (here, *here.parents):
        if (candidate / "setup.py").is_file() and (
            candidate / "src" / "repro"
        ).is_dir():
            return candidate
    raise FileNotFoundError(
        f"no repo root (setup.py + src/repro) above {here}; pass --root"
    )


def iter_python_files(
    root: Path, targets: Sequence[str] = DEFAULT_TARGETS
) -> List[Path]:
    """Every ``.py`` file under the target directories, sorted.

    ``__pycache__`` and hidden directories are skipped: anything under
    them is a build artifact, not source.
    """
    files: List[Path] = []
    for target in targets:
        base = root / target
        if base.is_file() and base.suffix == ".py":
            files.append(base)
        elif base.is_dir():
            files.extend(
                sorted(
                    path
                    for path in base.rglob("*.py")
                    if not any(
                        part == "__pycache__" or part.startswith(".")
                        for part in path.relative_to(base).parts[:-1]
                    )
                )
            )
    return files


def _sort_key(finding: Finding) -> Tuple[str, int, int, str]:
    return (finding.path, finding.line, finding.col, finding.rule)


def lint_paths(
    root: Path,
    files: Iterable[Path],
    rules: Optional[Sequence[object]] = None,
    baseline: Optional[Set[Tuple[str, str, str]]] = None,
    test_corpus: Optional[str] = None,
) -> LintResult:
    """Run the rules over ``files`` (absolute paths under ``root``)."""
    from repro.analysis.rules import build_rules

    active = list(rules) if rules is not None else build_rules()
    project = Project(root, test_corpus=test_corpus)
    result = LintResult()
    contexts: Dict[str, FileContext] = {}
    raw: List[Finding] = []
    for path in files:
        try:
            rel = path.resolve().relative_to(root.resolve()).as_posix()
        except ValueError:
            rel = path.as_posix()
        applicable = [rule for rule in active if rule.applies_to(rel)]
        if not applicable:
            continue
        try:
            source = path.read_text(encoding="utf-8")
            ctx = FileContext(rel, source)
        except (OSError, SyntaxError, ValueError) as exc:
            result.errors.append(f"{rel}: {exc}")
            continue
        contexts[rel] = ctx
        result.files_scanned += 1
        for rule in applicable:
            raw.extend(rule.check(ctx, project))
    for rule in active:
        raw.extend(rule.finalize(project))
    baseline = baseline or set()
    for finding in sorted(raw, key=_sort_key):
        ctx = contexts.get(finding.path)
        if ctx is not None and ctx.suppressed(finding):
            result.suppressed.append(finding)
        elif finding.baseline_key in baseline:
            result.baselined.append(finding)
        else:
            result.findings.append(finding)
    return result


def lint_tree(
    root: Path,
    targets: Sequence[str] = DEFAULT_TARGETS,
    rules: Optional[Sequence[object]] = None,
    baseline: Optional[Set[Tuple[str, str, str]]] = None,
    test_corpus: Optional[str] = None,
) -> LintResult:
    """Lint the default targets under ``root``."""
    return lint_paths(
        root,
        iter_python_files(root, targets),
        rules=rules,
        baseline=baseline,
        test_corpus=test_corpus,
    )


def lint_source(
    source: str,
    path: str,
    rules: Optional[Sequence[object]] = None,
    test_corpus: Optional[str] = None,
) -> LintResult:
    """Lint one in-memory source under a virtual repo-relative ``path``.

    The fixture-corpus harness uses this: each fixture snippet declares
    the path it pretends to live at, so path-scoped rules apply exactly
    as they would on the live tree.
    """
    from repro.analysis.rules import build_rules

    active = list(rules) if rules is not None else build_rules()
    project = Project(None, test_corpus=test_corpus)
    result = LintResult(files_scanned=1)
    try:
        ctx = FileContext(path, source)
    except SyntaxError as exc:
        result.errors.append(f"{path}: {exc}")
        return result
    raw: List[Finding] = []
    for rule in active:
        if rule.applies_to(ctx.path):
            raw.extend(rule.check(ctx, project))
    for rule in active:
        raw.extend(rule.finalize(project))
    for finding in sorted(raw, key=_sort_key):
        if ctx.suppressed(finding):
            result.suppressed.append(finding)
        else:
            result.findings.append(finding)
    return result


# ----------------------------------------------------------------------
# baselines
# ----------------------------------------------------------------------
def load_baseline(path: Path) -> Set[Tuple[str, str, str]]:
    """Load the grandfathered findings; missing file = empty baseline."""
    if not path.is_file():
        return set()
    payload = json.loads(path.read_text(encoding="utf-8"))
    entries = payload.get("findings", payload) if isinstance(payload, dict) else payload
    baseline: Set[Tuple[str, str, str]] = set()
    for entry in entries:
        baseline.add(
            (str(entry["rule"]), str(entry["path"]), str(entry.get("symbol", "")))
        )
    return baseline


def write_baseline(path: Path, findings: Iterable[Finding]) -> None:
    """Persist ``findings`` as the new baseline (sorted, line-free)."""
    entries = sorted(
        {finding.baseline_key for finding in findings}
    )
    payload = {
        "comment": (
            "Grandfathered repro-lint findings: entries match on "
            "(rule, path, symbol) so edits elsewhere in a file do not "
            "churn this baseline. Shrink it, never grow it -- new "
            "violations must be fixed or inline-suppressed with a "
            "reason."
        ),
        "findings": [
            {"rule": rule, "path": rel, "symbol": symbol}
            for rule, rel, symbol in entries
        ],
    }
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

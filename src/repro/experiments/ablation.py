"""Ablations of eSPICE's design choices (DESIGN.md §5).

1. **Partitioned CDT vs whole-window CDT** -- the paper argues (§3.4)
   that dropping per *partition* is needed when the window exceeds the
   latency-bound buffer; a single whole-window threshold can violate
   the bound when high-utility events cluster.
2. **Position shares vs full occurrences** -- counting each utility
   cell as a full occurrence (ignoring ``S(T, P)``) over-estimates the
   number of droppable events per window and under-drops.
3. **f sweep** -- quality vs latency-headroom trade-off (paper §3.4,
   "appropriate f value").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.cdt import build_partition_cdts
from repro.core.partitions import plan_partitions
from repro.core.position_shares import PositionShares
from repro.experiments import workloads
from repro.experiments.common import ExperimentConfig, R1, format_rows
from repro.pipeline import Pipeline
from repro.queries import build_q1
from repro.runtime.quality import compare_results, ground_truth
from repro.runtime.simulation import measure_mean_memberships


@dataclass
class AblationRow:
    """One configuration's quality + latency outcome."""

    label: str
    fn_pct: float
    fp_pct: float
    drop_pct: float
    latency_violations: int
    p99_latency_ms: float


@dataclass
class AblationResult:
    """A small comparison table."""

    title: str
    rows_data: List[AblationRow] = field(default_factory=list)

    def rows(self) -> str:
        header = ["config", "%FN", "%FP", "%drop", "LB violations", "p99 (ms)"]
        body = [
            [
                r.label,
                f"{r.fn_pct:.1f}",
                f"{r.fp_pct:.1f}",
                f"{r.drop_pct:.1f}",
                r.latency_violations,
                f"{r.p99_latency_ms:.0f}",
            ]
            for r in self.rows_data
        ]
        return f"{self.title}\n" + format_rows(header, body)


def _run_espice_point(
    query,
    train_stream,
    eval_stream,
    rate_factor: float,
    config: ExperimentConfig,
    truth,
    label: str,
    partition_override: Optional[int] = None,
) -> AblationRow:
    pipeline = (
        Pipeline.builder()
        .query(query)
        .shedder("espice", f=config.f)
        .latency_bound(config.latency_bound)
        .bin_size(config.bin_size)
        .check_interval(config.check_interval)
        .build()
    )
    pipeline.train(train_stream)
    pipeline.deploy(
        expected_throughput=config.throughput,
        expected_input_rate=rate_factor * config.throughput,
        partition_override=partition_override,
    )
    sim = pipeline.simulate(
        eval_stream,
        input_rate=rate_factor * config.throughput,
        throughput=config.throughput,
        mean_memberships=measure_mean_memberships(query, eval_stream),
    )
    report = compare_results(truth, sim.complex_events)
    stats = sim.latency.stats()
    return AblationRow(
        label=label,
        fn_pct=report.false_negative_pct,
        fp_pct=report.false_positive_pct,
        drop_pct=100.0 * sim.operator_stats.drop_ratio(),
        latency_violations=stats.violations,
        p99_latency_ms=stats.p99 * 1000.0,
    )


def ablation_partitioning(
    pattern_size: int = 4,
    rate_factor: float = 2.5,
    config: Optional[ExperimentConfig] = None,
) -> AblationResult:
    """Partition-planned CDTs vs a single whole-window CDT.

    Runs at severe overload (default 2.5x) on purpose: at the paper's
    R1/R2 rates the drop demand fits inside every partition's
    zero-utility population, so all partitionings choose threshold 0
    and behave identically.  Under severe demand the partition size
    becomes the quality dial the paper describes (§3.4): per-position
    partitions must shed regardless of utility and quality collapses,
    while buffer-derived partitions keep finding cheap events.
    """
    cfg = config or ExperimentConfig()
    train, eval_stream = workloads.soccer_streams()
    query = build_q1(pattern_size)
    truth = ground_truth(query, eval_stream)
    result = AblationResult(title="Ablation: dropping interval (partitioning)")
    result.rows_data.append(
        _run_espice_point(
            query, train, eval_stream, rate_factor, cfg, truth, "paper (buffer-derived rho)"
        )
    )
    result.rows_data.append(
        _run_espice_point(
            query,
            train,
            eval_stream,
            rate_factor,
            cfg,
            truth,
            "single whole-window CDT (rho=1)",
            partition_override=1,
        )
    )
    result.rows_data.append(
        _run_espice_point(
            query,
            train,
            eval_stream,
            rate_factor,
            cfg,
            truth,
            "per-position partitions (rho=N)",
            partition_override=10_000,
        )
    )
    return result


def ablation_f_sweep(
    pattern_size: int = 4,
    f_values: Sequence[float] = (0.5, 0.6, 0.7, 0.8, 0.9, 0.95),
    rate_factor: float = R1,
    config: Optional[ExperimentConfig] = None,
) -> AblationResult:
    """Quality / latency-headroom trade-off across ``f``."""
    cfg = config or ExperimentConfig()
    train, eval_stream = workloads.soccer_streams()
    query = build_q1(pattern_size)
    truth = ground_truth(query, eval_stream)
    result = AblationResult(title="Ablation: f value sweep")
    for f in f_values:
        point_cfg = ExperimentConfig(
            throughput=cfg.throughput,
            latency_bound=cfg.latency_bound,
            f=f,
            bin_size=cfg.bin_size,
            check_interval=cfg.check_interval,
            seed=cfg.seed,
        )
        result.rows_data.append(
            _run_espice_point(
                query, train, eval_stream, rate_factor, point_cfg, truth, f"f={f:.2f}"
            )
        )
    return result


@dataclass
class SharesAblationRow:
    """Threshold accuracy with vs without learned position shares."""

    label: str
    commanded_x: float
    expected_drops: float  # CDT-predicted drops at the chosen threshold


@dataclass
class SharesAblationResult:
    """Comparison of CDT calibration strategies."""

    title: str
    rows_data: List[SharesAblationRow] = field(default_factory=list)

    def rows(self) -> str:
        header = ["config", "commanded x", "CDT drops at threshold"]
        body = [
            [r.label, f"{r.commanded_x:.1f}", f"{r.expected_drops:.1f}"]
            for r in self.rows_data
        ]
        return f"{self.title}\n" + format_rows(header, body)


def ablation_position_shares(
    pattern_size: int = 4,
    drop_fraction: float = 0.2,
    config: Optional[ExperimentConfig] = None,
) -> SharesAblationResult:
    """Learned ``S(T,P)`` vs counting every cell as a full occurrence.

    Full-occurrence counting inflates the CDT (each position counts
    once per *type* instead of summing to one event), so the threshold
    search stops at a lower utility than needed and under-drops.  The
    comparison reports the expected drops per partition at the chosen
    threshold for the same commanded ``x``.
    """
    cfg = config or ExperimentConfig()
    train, _eval_stream = workloads.soccer_streams()
    query = build_q1(pattern_size)
    pipeline = (
        Pipeline.builder()
        .query(query)
        .shedder("espice", f=cfg.f)
        .latency_bound(cfg.latency_bound)
        .build()
    )
    model = pipeline.train(train).model
    plan = plan_partitions(
        model.reference_size, cfg.latency_bound * cfg.throughput, cfg.f
    )
    x = drop_fraction * plan.partition_size

    learned_cdts = build_partition_cdts(model.table, model.shares, plan)
    ones = PositionShares.uniform(
        model.table.type_ids, model.reference_size, model.bin_size
    )
    # full occurrence = every (type, bin) cell counts 1.0, i.e. uniform
    # shares scaled by the number of types
    for row in ones._counts:  # test-only poke, documented ablation
        for index in range(len(row)):
            row[index] = float(model.bin_size)
    full_cdts = build_partition_cdts(model.table, ones, plan)

    result = SharesAblationResult(title="Ablation: position shares in the CDT")
    for label, cdts in (("learned shares", learned_cdts), ("full occurrences", full_cdts)):
        threshold = cdts[0].threshold_for(x)
        expected = learned_cdts[0].value(max(threshold, 0)) if threshold >= 0 else 0.0
        result.rows_data.append(
            SharesAblationRow(
                label=label, commanded_x=x, expected_drops=expected
            )
        )
    return result

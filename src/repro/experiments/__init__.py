"""Experiment runners -- one module per paper table/figure.

Each runner returns plain dataclasses with a ``rows()`` method that
prints the same series the paper's figure plots; the benchmarks in
``benchmarks/`` and the record in ``EXPERIMENTS.md`` are generated from
these runners.

- :mod:`repro.experiments.common` -- shared machinery: build streams,
  train models, run one (strategy, rate) quality point.
- :mod:`repro.experiments.fig5` -- %false negatives, Q1/Q2/Q3/Q4.
- :mod:`repro.experiments.fig6` -- %false positives, Q1/Q3.
- :mod:`repro.experiments.fig7` -- latency timeline under R1/R2.
- :mod:`repro.experiments.fig8` -- variable window size impact.
- :mod:`repro.experiments.fig9` -- bin size impact.
- :mod:`repro.experiments.fig10` -- load-shedder overhead.
- :mod:`repro.experiments.ablation` -- design-choice ablations
  (partitioned CDT, position shares, f sweep).
"""

from repro.experiments.common import (
    ExperimentConfig,
    QualityOutcome,
    R1,
    R2,
    run_quality_point,
)

__all__ = [
    "ExperimentConfig",
    "QualityOutcome",
    "R1",
    "R2",
    "run_quality_point",
]

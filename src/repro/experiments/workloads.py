"""Standard scaled-down workloads for the paper-figure experiments.

The paper's windows span 700--16000 events; a pure-Python matcher makes
that impractical, so the default workloads scale window sizes down by
roughly an order of magnitude while keeping the *ratios* (pattern size
to window size, overlap, training volume) that drive every reported
effect.  All sizes are parameters, so paper-scale runs remain possible.

Streams are deterministic per configuration and memoised, because the
figure sweeps reuse the same stream across many (strategy, rate)
points.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.cep.events import EventStream
from repro.datasets.io import split_stream
from repro.datasets.soccer import SoccerStreamConfig, generate_soccer_stream
from repro.datasets.stock import StockStreamConfig, generate_stock_stream
from repro.queries.q3 import default_dataset_config as q3_dataset_config
from repro.queries.q4 import default_dataset_config as q4_dataset_config

_soccer_cache: Dict[Tuple, Tuple[EventStream, EventStream]] = {}
_stock_cache: Dict[Tuple, Tuple[EventStream, EventStream]] = {}


def soccer_streams(
    duration_seconds: float = 4800.0,
    events_per_second: float = 20.0,
    possession_interval: float = 6.0,
    seed: int = 3,
    train_fraction: float = 0.6,
    **overrides,
) -> Tuple[EventStream, EventStream]:
    """(train, eval) soccer streams for Q1; memoised per configuration."""
    config = SoccerStreamConfig(
        duration_seconds=duration_seconds,
        events_per_second=events_per_second,
        possession_interval=possession_interval,
        seed=seed,
        **overrides,
    )
    key = (tuple(sorted(vars(config).items(), key=lambda kv: kv[0])), train_fraction)
    if key not in _soccer_cache:
        stream = generate_soccer_stream(config)
        _soccer_cache[key] = split_stream(stream, train_fraction)
    return _soccer_cache[key]


def _stock_streams(
    config: StockStreamConfig, train_fraction: float
) -> Tuple[EventStream, EventStream]:
    items = []
    for name, value in sorted(vars(config).items()):
        items.append((name, tuple(value) if isinstance(value, (list, tuple)) else value))
    key = (tuple(items), train_fraction)
    if key not in _stock_cache:
        stream = generate_stock_stream(config)
        _stock_cache[key] = split_stream(stream, train_fraction)
    return _stock_cache[key]


def stock_streams_q2(
    symbols: int = 50,
    ticks: int = 400,
    seed: int = 5,
    train_fraction: float = 0.5,
    **overrides,
) -> Tuple[EventStream, EventStream]:
    """(train, eval) stock streams for Q2 (lead/lag following)."""
    config = StockStreamConfig(symbols=symbols, ticks=ticks, seed=seed, **overrides)
    return _stock_streams(config, train_fraction)


def stock_streams_q3(
    sequence_length: int = 20,
    ticks: int = 600,
    seed: int = 9,
    train_fraction: float = 0.5,
    **overrides,
) -> Tuple[EventStream, EventStream]:
    """(train, eval) stock streams for Q3 (ordered cascades)."""
    config = q3_dataset_config(sequence_length=sequence_length, ticks=ticks, seed=seed, **overrides)
    return _stock_streams(config, train_fraction)


def stock_streams_q4(
    distinct_symbols: int = 10,
    ticks: int = 800,
    seed: int = 13,
    cascade_probability: float = 0.95,
    train_fraction: float = 0.5,
    **overrides,
) -> Tuple[EventStream, EventStream]:
    """(train, eval) stock streams for Q4 (cascades with repetition)."""
    config = q4_dataset_config(
        distinct_symbols=distinct_symbols,
        ticks=ticks,
        seed=seed,
        cascade_probability=cascade_probability,
        **overrides,
    )
    return _stock_streams(config, train_fraction)


def clear_caches() -> None:
    """Drop memoised streams (tests that measure memory / fresh state)."""
    _soccer_cache.clear()
    _stock_cache.clear()

"""Figure 10: run-time overhead of the load shedder.

The paper measures the time the LS needs relative to the actual event
processing time, for Q2 with window sizes from ~2000 to ~16000 events,
and finds <1% to ~5%.  Unlike the quality figures this one is a real
wall-clock measurement: we time every ``should_drop`` call and compare
against the remaining (matching + window bookkeeping) time of the same
run.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.cep.events import Event
from repro.cep.operator.operator import CEPOperator
from repro.experiments import workloads
from repro.experiments.common import ExperimentConfig, format_rows
from repro.pipeline import Pipeline
from repro.queries import build_q2
from repro.shedding.base import DropCommand, LoadShedder


class TimingShedder(LoadShedder):
    """Delegating shedder that wall-clock-times every decision."""

    def __init__(self, inner: LoadShedder) -> None:
        super().__init__()
        self.inner = inner
        self.elapsed_ns = 0
        self._active = True

    def on_drop_command(self, command: DropCommand) -> None:
        self.inner.on_drop_command(command)

    def _decide(self, event: Event, position: int, predicted_ws: float) -> bool:
        start = time.perf_counter_ns()
        decision = self.inner._decide(event, position, predicted_ws)
        self.elapsed_ns += time.perf_counter_ns() - start
        return decision


@dataclass
class Fig10Point:
    """Overhead measurement for one window size."""

    window_seconds: float
    window_events: int
    shed_time_s: float
    processing_time_s: float

    @property
    def overhead_pct(self) -> float:
        """LS time as % of the event processing time."""
        if self.processing_time_s <= 0.0:
            return 0.0
        return 100.0 * self.shed_time_s / self.processing_time_s


@dataclass
class Fig10Result:
    """The overhead series."""

    points: List[Fig10Point] = field(default_factory=list)

    def rows(self) -> str:
        header = ["window (s)", "window (events)", "LS overhead %"]
        body = [
            [f"{p.window_seconds:.0f}", p.window_events, f"{p.overhead_pct:.2f}"]
            for p in sorted(self.points, key=lambda p: p.window_seconds)
        ]
        return "Fig10 load-shedder overhead\n" + format_rows(header, body)


def fig10_overhead(
    window_seconds: Sequence[float] = (120.0, 240.0, 480.0, 960.0),
    pattern_size: int = 10,
    drop_fraction: float = 0.2,
    config: Optional[ExperimentConfig] = None,
    symbols: int = 50,
) -> Fig10Result:
    """Measure LS overhead for Q2 across window sizes.

    ``drop_fraction`` sets the active drop command (x = fraction of the
    partition size), mirroring an R1-style overload.
    """
    cfg = config or ExperimentConfig()
    train, eval_stream = workloads.stock_streams_q2(symbols=symbols)
    result = Fig10Result()
    for ws in window_seconds:
        query = build_q2(pattern_size, window_seconds=ws, symbols=symbols)
        pipeline = (
            Pipeline.builder()
            .query(query)
            .shedder("espice", f=cfg.f)
            .latency_bound(cfg.latency_bound)
            .bin_size(cfg.bin_size)
            .build()
        )
        model = pipeline.train(train).model
        timing = TimingShedder(pipeline.create_shedder())
        partition_size = model.reference_size / 2
        timing.on_drop_command(
            DropCommand(
                x=drop_fraction * partition_size,
                partition_count=2,
                partition_size=partition_size,
            )
        )
        timing.inner.activate()
        operator = CEPOperator(query, shedder=timing)
        operator.prime_window_size(model.reference_size, weight=10)
        start = time.perf_counter()
        operator.detect_all(eval_stream)
        total = time.perf_counter() - start
        shed = timing.elapsed_ns / 1e9
        result.points.append(
            Fig10Point(
                window_seconds=ws,
                window_events=model.reference_size,
                shed_time_s=shed,
                processing_time_s=max(total - shed, 1e-12),
            )
        )
    return result

"""Figure 6: % false positives for Q1 (6a) and Q3 (6b).

Same sweeps as the corresponding Fig. 5 panels; the plotted metric is
the false-positive percentage.  (Q2/Q4 and the last selection policy
behave similarly and are omitted in the paper as well.)
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.cep.patterns.policies import SelectionPolicy
from repro.experiments.common import ExperimentConfig
from repro.experiments.fig5 import (
    DEFAULT_RATES,
    DEFAULT_STRATEGIES,
    QualityFigure,
    fig5_q1,
    fig5_q3,
)


def fig6_q1(
    pattern_sizes: Sequence[int] = (2, 3, 4, 5, 6),
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    rates: Sequence[float] = DEFAULT_RATES,
    config: Optional[ExperimentConfig] = None,
) -> QualityFigure:
    """Fig. 6a: Q1 false positives over pattern size (first selection)."""
    figure = fig5_q1(
        pattern_sizes,
        SelectionPolicy.FIRST,
        strategies,
        rates,
        config,
    )
    figure.title = "Fig6 Q1 false positives (first selection)"
    return figure


def fig6_q3(
    window_sizes: Sequence[int] = (100, 200, 300, 400),
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    rates: Sequence[float] = DEFAULT_RATES,
    config: Optional[ExperimentConfig] = None,
) -> QualityFigure:
    """Fig. 6b: Q3 false positives over window size (first selection)."""
    figure = fig5_q3(window_sizes, strategies, rates, config)
    figure.title = "Fig6 Q3 false positives (first selection)"
    return figure

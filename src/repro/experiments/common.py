"""Shared machinery for the paper-figure experiments.

Every quality experiment follows the paper's protocol (§4.1):

1. stream the dataset at a sustainable rate until the model is built
   (our ``train`` stream),
2. raise the input rate to ``R1 = 1.2·th`` or ``R2 = 1.4·th`` and
   replay the evaluation stream through the simulated pipeline,
3. compare detected complex events against the ground truth of an
   unconstrained run and report %false negatives / %false positives.

:func:`run_quality_point` performs one such (strategy, rate) run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from repro.cep.events import EventStream
from repro.cep.patterns.query import Query
from repro.cep.windows import average_window_size, collect_windows
from repro.core.espice import ESpice, ESpiceConfig
from repro.core.overload import OverloadDetector
from repro.runtime.latency import LatencyStats
from repro.runtime.quality import QualityReport, compare_results, ground_truth
from repro.runtime.simulation import (
    SimulationConfig,
    measure_mean_memberships,
    simulate,
)
from repro.shedding.base import LoadShedder
from repro.shedding.baseline import BLShedder
from repro.shedding.integral import IntegralShedder
from repro.shedding.random_shedder import RandomShedder

# The paper's two overload levels: input rate exceeds throughput by 20/40 %.
R1 = 1.2
R2 = 1.4

STRATEGIES = ("espice", "bl", "bl-integral", "random", "none")


@dataclass
class ExperimentConfig:
    """Shared knobs of one experiment family."""

    throughput: float = 1000.0  # th, events/second (virtual)
    latency_bound: float = 1.0  # LB, seconds (paper default)
    f: float = 0.8  # paper default
    bin_size: int = 1
    check_interval: float = 0.05
    seed: int = 0


@dataclass
class QualityOutcome:
    """One (strategy, rate) quality point."""

    strategy: str
    rate_factor: float
    quality: QualityReport
    latency: LatencyStats
    drop_ratio: float
    truth_count: int
    detected_count: int

    @property
    def fn_pct(self) -> float:
        """% false negatives."""
        return self.quality.false_negative_pct

    @property
    def fp_pct(self) -> float:
        """% false positives."""
        return self.quality.false_positive_pct

    def __str__(self) -> str:
        return (
            f"{self.strategy}@R={self.rate_factor:.1f}: "
            f"FN={self.fn_pct:.1f}% FP={self.fp_pct:.1f}% "
            f"drop={100 * self.drop_ratio:.1f}% "
            f"(truth={self.truth_count}, detected={self.detected_count})"
        )


def reference_window_size(query: Query, stream: EventStream) -> int:
    """Average seen window size ``N`` for ``stream`` under ``query``."""
    windows = collect_windows(stream, query.new_assigner())
    return max(1, round(average_window_size(windows)))


def build_strategy(
    strategy: str,
    query: Query,
    train_stream: EventStream,
    config: ExperimentConfig,
    rate_factor: float,
) -> Tuple[Optional[LoadShedder], Optional[OverloadDetector], float]:
    """Construct (shedder, detector, reference window size) for a run."""
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; pick one of {STRATEGIES}")
    input_rate = rate_factor * config.throughput
    processing_latency = 1.0 / config.throughput

    if strategy == "none":
        return None, None, float(reference_window_size(query, train_stream))

    if strategy == "espice":
        espice = ESpice(
            query,
            ESpiceConfig(
                latency_bound=config.latency_bound,
                f=config.f,
                bin_size=config.bin_size,
                check_interval=config.check_interval,
            ),
        )
        model = espice.train(train_stream)
        shedder: LoadShedder = espice.build_shedder()
        detector = espice.build_detector(
            shedder,
            fixed_processing_latency=processing_latency,
            fixed_input_rate=input_rate,
        )
        return shedder, detector, float(model.reference_size)

    n = reference_window_size(query, train_stream)
    if strategy in ("bl", "bl-integral"):
        if strategy == "bl":
            shedder = BLShedder(query.pattern, seed=config.seed)
        else:
            shedder = IntegralShedder(query.pattern, seed=config.seed)
        # type-level baselines learn frequencies online; warm them up on
        # the training stream so their plan is informed from the start
        for event in train_stream:
            shedder.observe(event)
    else:  # random
        shedder = RandomShedder(seed=config.seed)
    detector = OverloadDetector(
        latency_bound=config.latency_bound,
        f=config.f,
        reference_size=n,
        shedder=shedder,
        check_interval=config.check_interval,
        fixed_processing_latency=processing_latency,
        fixed_input_rate=input_rate,
    )
    return shedder, detector, float(n)


def run_quality_point(
    query: Query,
    train_stream: EventStream,
    eval_stream: EventStream,
    strategy: str,
    rate_factor: float,
    config: Optional[ExperimentConfig] = None,
    truth: Optional[list] = None,
) -> QualityOutcome:
    """One full experiment point: train, overload, compare to truth.

    ``truth`` may be precomputed (it does not depend on the strategy or
    the rate) and shared across points to save time.
    """
    cfg = config if config is not None else ExperimentConfig()
    if truth is None:
        truth = ground_truth(query, eval_stream)
    shedder, detector, reference = build_strategy(
        strategy, query, train_stream, cfg, rate_factor
    )
    sim_config = SimulationConfig(
        input_rate=rate_factor * cfg.throughput,
        throughput=cfg.throughput,
        latency_bound=cfg.latency_bound,
        check_interval=cfg.check_interval,
        mean_memberships=measure_mean_memberships(query, eval_stream),
    )
    result = simulate(
        query,
        eval_stream,
        sim_config,
        shedder=shedder,
        detector=detector,
        prime_window_size=reference,
    )
    report = compare_results(truth, result.complex_events)
    return QualityOutcome(
        strategy=strategy,
        rate_factor=rate_factor,
        quality=report,
        latency=result.latency.stats(),
        drop_ratio=result.operator_stats.drop_ratio(),
        truth_count=report.truth_count,
        detected_count=report.detected_count,
    )


def format_rows(
    header: Iterable[str], rows: Iterable[Iterable[object]]
) -> str:
    """Simple fixed-width table rendering for runner output."""
    header = [str(h) for h in header]
    body = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in header]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(header)),
        "  ".join("-" * w for w in widths),
    ]
    for row in body:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)

"""Shared machinery for the paper-figure experiments.

Every quality experiment follows the paper's protocol (§4.1):

1. stream the dataset at a sustainable rate until the model is built
   (our ``train`` stream),
2. raise the input rate to ``R1 = 1.2·th`` or ``R2 = 1.4·th`` and
   replay the evaluation stream through the simulated pipeline,
3. compare detected complex events against the ground truth of an
   unconstrained run and report %false negatives / %false positives.

:func:`run_quality_point` performs one such (strategy, rate) run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional, Tuple

from repro.cep.events import EventStream
from repro.cep.patterns.query import Query
from repro.cep.windows import average_window_size, collect_windows
from repro.core.overload import OverloadDetector
from repro.pipeline import Pipeline
from repro.runtime.latency import LatencyStats
from repro.runtime.quality import QualityReport, compare_results, ground_truth
from repro.runtime.simulation import measure_mean_memberships
from repro.shedding.base import LoadShedder

# The paper's two overload levels: input rate exceeds throughput by 20/40 %.
R1 = 1.2
R2 = 1.4

STRATEGIES = ("espice", "bl", "bl-integral", "random", "none")


@dataclass
class ExperimentConfig:
    """Shared knobs of one experiment family."""

    throughput: float = 1000.0  # th, events/second (virtual)
    latency_bound: float = 1.0  # LB, seconds (paper default)
    f: float = 0.8  # paper default
    bin_size: int = 1
    check_interval: float = 0.05
    seed: int = 0


@dataclass
class QualityOutcome:
    """One (strategy, rate) quality point."""

    strategy: str
    rate_factor: float
    quality: QualityReport
    latency: LatencyStats
    drop_ratio: float
    truth_count: int
    detected_count: int

    @property
    def fn_pct(self) -> float:
        """% false negatives."""
        return self.quality.false_negative_pct

    @property
    def fp_pct(self) -> float:
        """% false positives."""
        return self.quality.false_positive_pct

    def __str__(self) -> str:
        return (
            f"{self.strategy}@R={self.rate_factor:.1f}: "
            f"FN={self.fn_pct:.1f}% FP={self.fp_pct:.1f}% "
            f"drop={100 * self.drop_ratio:.1f}% "
            f"(truth={self.truth_count}, detected={self.detected_count})"
        )


def reference_window_size(query: Query, stream: EventStream) -> int:
    """Average seen window size ``N`` for ``stream`` under ``query``."""
    windows = collect_windows(stream, query.new_assigner())
    return max(1, round(average_window_size(windows)))


def strategy_pipeline(
    strategy: str,
    query: Query,
    train_stream: EventStream,
    config: ExperimentConfig,
    rate_factor: float,
) -> Pipeline:
    """A trained, deployed single-query pipeline for one experiment run.

    eSPICE fits its utility model on the training stream; the
    comparator strategies skip model fitting, pin the reference window
    size to the training stream's average (the historical protocol)
    and only warm their online type statistics.
    """
    if strategy not in STRATEGIES:
        raise ValueError(f"unknown strategy {strategy!r}; pick one of {STRATEGIES}")
    builder = (
        Pipeline.builder()
        .query(query)
        .shedder(strategy, seed=config.seed)
        .latency_bound(config.latency_bound)
        .f(config.f)
        .bin_size(config.bin_size)
        .check_interval(config.check_interval)
    )
    if strategy != "espice":
        builder.reference_size(reference_window_size(query, train_stream))
    pipeline = builder.build()
    if strategy == "espice":
        pipeline.train(train_stream)
    else:
        pipeline.warm(train_stream)
    pipeline.deploy(
        expected_throughput=config.throughput,
        expected_input_rate=rate_factor * config.throughput,
    )
    return pipeline


def build_strategy(
    strategy: str,
    query: Query,
    train_stream: EventStream,
    config: ExperimentConfig,
    rate_factor: float,
) -> Tuple[Optional[LoadShedder], Optional[OverloadDetector], float]:
    """Construct (shedder, detector, reference window size) for a run.

    Legacy component view of :func:`strategy_pipeline`, kept for
    callers that drive :func:`repro.runtime.simulation.simulate`
    directly with loose components.
    """
    if strategy == "none":
        # ground-truth shape: no shedding machinery at all
        return None, None, float(reference_window_size(query, train_stream))
    pipeline = strategy_pipeline(strategy, query, train_stream, config, rate_factor)
    chain = pipeline.chains[0]
    reference = chain.model.reference_size if chain.model else chain.detector.reference_size
    return chain.shedder, chain.detector, float(reference)


def run_quality_point(
    query: Query,
    train_stream: EventStream,
    eval_stream: EventStream,
    strategy: str,
    rate_factor: float,
    config: Optional[ExperimentConfig] = None,
    truth: Optional[list] = None,
) -> QualityOutcome:
    """One full experiment point: train, overload, compare to truth.

    ``truth`` may be precomputed (it does not depend on the strategy or
    the rate) and shared across points to save time.
    """
    cfg = config if config is not None else ExperimentConfig()
    if truth is None:
        truth = ground_truth(query, eval_stream)
    pipeline = strategy_pipeline(strategy, query, train_stream, cfg, rate_factor)
    result = pipeline.simulate(
        eval_stream,
        input_rate=rate_factor * cfg.throughput,
        throughput=cfg.throughput,
        mean_memberships=measure_mean_memberships(query, eval_stream),
    )
    report = compare_results(truth, result.complex_events)
    return QualityOutcome(
        strategy=strategy,
        rate_factor=rate_factor,
        quality=report,
        latency=result.latency.stats(),
        drop_ratio=result.operator_stats.drop_ratio(),
        truth_count=report.truth_count,
        detected_count=report.detected_count,
    )


def format_rows(
    header: Iterable[str], rows: Iterable[Iterable[object]]
) -> str:
    """Simple fixed-width table rendering for runner output."""
    header = [str(h) for h in header]
    body = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in header]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = [
        "  ".join(h.ljust(widths[i]) for i, h in enumerate(header)),
        "  ".join("-" * w for w in widths),
    ]
    for row in body:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)

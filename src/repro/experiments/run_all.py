"""Regenerate every paper table/figure from the command line.

Usage::

    python -m repro.experiments.run_all              # everything
    python -m repro.experiments.run_all fig5 fig7    # a subset
    python -m repro.experiments.run_all --quick      # reduced sweeps

Prints the same series the benchmarks assert on; EXPERIMENTS.md was
written from this output.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Dict, List

from repro.cep.patterns.policies import SelectionPolicy
from repro.experiments.ablation import (
    ablation_f_sweep,
    ablation_partitioning,
    ablation_position_shares,
)
from repro.experiments.fig5 import fig5_q1, fig5_q2, fig5_q3, fig5_q4
from repro.experiments.fig6 import fig6_q1, fig6_q3
from repro.experiments.fig7 import fig7_latency
from repro.experiments.fig8 import fig8_q1, fig8_q2
from repro.experiments.fig9 import fig9_q1, fig9_q2
from repro.experiments.burst import burst_experiment
from repro.experiments.fig10 import fig10_overhead


def _fig5(quick: bool) -> List[str]:
    q1_sizes = (2, 4, 6) if quick else (2, 3, 4, 5, 6)
    q2_sizes = (5, 15) if quick else (5, 10, 15, 20, 25)
    q34_sizes = (100, 300) if quick else (100, 200, 300, 400)
    q4_sizes = (300, 500) if quick else (300, 400, 500, 600)
    out = [
        fig5_q1(q1_sizes, SelectionPolicy.FIRST).rows("fn"),
        fig5_q1(q1_sizes, SelectionPolicy.LAST).rows("fn"),
        fig5_q2(q2_sizes, SelectionPolicy.FIRST).rows("fn"),
        fig5_q2(q2_sizes, SelectionPolicy.LAST).rows("fn"),
        fig5_q3(q34_sizes).rows("fn"),
        fig5_q4(q4_sizes).rows("fn"),
    ]
    return out


def _fig6(quick: bool) -> List[str]:
    q1_sizes = (2, 4, 6) if quick else (2, 3, 4, 5, 6)
    q3_sizes = (100, 300) if quick else (100, 200, 300, 400)
    return [fig6_q1(q1_sizes).rows("fp"), fig6_q3(q3_sizes).rows("fp")]


def _fig7(quick: bool) -> List[str]:
    result = fig7_latency()
    lines = [result.rows()]
    for run in result.runs:
        series = "  ".join(
            f"{t:.0f}s:{latency * 1000:.0f}ms" for t, latency in run.timeline[:15]
        )
        lines.append(f"timeline R={run.rate_factor:.1f}: {series}")
    return ["\n".join(lines)]


def _fig8(quick: bool) -> List[str]:
    sizes_q1 = (12.0, 16.0, 20.0) if quick else (12.0, 14.0, 16.0, 18.0, 20.0)
    sizes_q2 = (180.0, 240.0, 300.0) if quick else (180.0, 200.0, 240.0, 260.0, 300.0)
    return [
        fig8_q1(window_seconds=sizes_q1).rows(),
        fig8_q2(window_seconds=sizes_q2).rows(),
    ]


def _fig9(quick: bool) -> List[str]:
    bins = (1, 8, 64) if quick else (1, 2, 4, 8, 16, 32, 64)
    return [fig9_q1(bin_sizes=bins).rows(), fig9_q2(bin_sizes=bins).rows()]


def _fig10(quick: bool) -> List[str]:
    sizes = (120.0, 480.0) if quick else (120.0, 240.0, 480.0, 960.0)
    return [fig10_overhead(window_seconds=sizes).rows()]


def _ablations(quick: bool) -> List[str]:
    f_values = (0.5, 0.8, 0.95) if quick else (0.5, 0.6, 0.7, 0.8, 0.9, 0.95)
    return [
        ablation_partitioning().rows(),
        ablation_f_sweep(f_values=f_values).rows(),
        ablation_position_shares().rows(),
    ]


def _burst(quick: bool) -> List[str]:
    f_values = (0.5, 0.8) if quick else (0.5, 0.8, 0.95)
    return [
        burst_experiment(
            f_values=f_values, burst_seconds=(0.3, 6.0), base_factor=0.8
        ).rows()
    ]


RUNNERS: Dict[str, Callable[[bool], List[str]]] = {
    "fig5": _fig5,
    "fig6": _fig6,
    "fig7": _fig7,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig10": _fig10,
    "ablations": _ablations,
    "burst": _burst,
}


def main(argv: List[str] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "figures",
        nargs="*",
        choices=[*RUNNERS, []],
        help="figures to run (default: all)",
    )
    parser.add_argument(
        "--quick", action="store_true", help="reduced sweeps for a fast pass"
    )
    args = parser.parse_args(argv)
    selected = args.figures or list(RUNNERS)
    for figure in selected:
        start = time.time()
        print(f"=== {figure} " + "=" * (60 - len(figure)))
        for block in RUNNERS[figure](args.quick):
            print(block)
            print()
        print(f"[{figure}: {time.time() - start:.1f}s]\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())

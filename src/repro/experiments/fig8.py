"""Figure 8: impact of variable window sizes on quality (paper §3.6).

Protocol (paper §4.2): the model is trained while the window size
changes randomly among several values, so the utility table (with its
fixed reference dimension ``N``) has learned from many sizes.  During
load shedding one fixed window size is used, and the false-negative
percentage is reported against that size (expressed as % of the
reference size).

Q1 trains over 12/14/16/18/20 s windows (reference 16 s), Q2 over
180/200/240/260/300 s (reference 240 s), exactly the paper's ratios.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.cep.operator.operator import CEPOperator
from repro.cep.patterns.query import Query
from repro.core.model import ModelBuilder, UtilityModel
from repro.experiments import workloads
from repro.experiments.common import (
    ExperimentConfig,
    R1,
    R2,
    format_rows,
)
from repro.pipeline import Pipeline
from repro.queries import build_q1, build_q2
from repro.runtime.quality import compare_results, ground_truth
from repro.runtime.simulation import measure_mean_memberships


@dataclass
class Fig8Point:
    """One (window size, rate) false-negative measurement."""

    window_pct: int  # window size as % of the reference size
    rate_factor: float
    fn_pct: float
    fp_pct: float


@dataclass
class Fig8Result:
    """One panel of Fig. 8."""

    title: str
    reference_seconds: float
    points: List[Fig8Point] = field(default_factory=list)

    def rows(self) -> str:
        header = ["window %", "R1 %FN", "R2 %FN"]
        xs = sorted({p.window_pct for p in self.points})
        by_key = {(p.window_pct, p.rate_factor): p for p in self.points}
        body = []
        for x in xs:
            row = [x]
            for rate in (R1, R2):
                point = by_key.get((x, rate))
                row.append(f"{point.fn_pct:.1f}" if point else "-")
            body.append(row)
        return f"{self.title}\n" + format_rows(header, body)


def train_mixed_window_model(
    make_query,
    window_sizes: Sequence[float],
    train_stream,
    bin_size: int = 1,
) -> UtilityModel:
    """Train one model while the window size varies (paper protocol).

    Each training pass runs the full training stream under a different
    window size, feeding a shared model builder; the reference size
    ``N`` becomes the average over all observed windows.
    """
    builder = ModelBuilder(bin_size=bin_size)
    for window_size in window_sizes:
        query = make_query(window_size)
        operator = CEPOperator(query, shedder=None)
        operator.add_window_listener(builder.observe)
        operator.detect_all(train_stream)
    return builder.build()


def _run_with_model(
    query: Query,
    eval_stream,
    model: UtilityModel,
    rate_factor: float,
    config: ExperimentConfig,
    truth,
):
    pipeline = (
        Pipeline.builder()
        .query(query)
        .shedder("espice", f=config.f)
        .latency_bound(config.latency_bound)
        .check_interval(config.check_interval)
        .model(model)
        .build()
    )
    # prime=False: the paper's variable-window protocol lets the
    # predictor converge from the observed (fixed-size) eval windows
    pipeline.deploy(
        expected_throughput=config.throughput,
        expected_input_rate=rate_factor * config.throughput,
        prime=False,
    )
    sim = pipeline.simulate(
        eval_stream,
        input_rate=rate_factor * config.throughput,
        throughput=config.throughput,
        mean_memberships=measure_mean_memberships(query, eval_stream),
    )
    return compare_results(truth, sim.complex_events)


def _variable_window_panel(
    title: str,
    make_query,
    window_seconds: Sequence[float],
    reference_seconds: float,
    train_stream,
    eval_stream,
    rates: Sequence[float],
    config: ExperimentConfig,
) -> Fig8Result:
    model = train_mixed_window_model(
        make_query, window_seconds, train_stream, config.bin_size
    )
    result = Fig8Result(title=title, reference_seconds=reference_seconds)
    for window_size in window_seconds:
        query = make_query(window_size)
        truth = ground_truth(query, eval_stream)
        pct = round(100 * window_size / reference_seconds)
        for rate in rates:
            report = _run_with_model(
                query, eval_stream, model, rate, config, truth
            )
            result.points.append(
                Fig8Point(
                    window_pct=pct,
                    rate_factor=rate,
                    fn_pct=report.false_negative_pct,
                    fp_pct=report.false_positive_pct,
                )
            )
    return result


def fig8_q1(
    pattern_size: int = 5,
    window_seconds: Sequence[float] = (12.0, 14.0, 16.0, 18.0, 20.0),
    reference_seconds: float = 16.0,
    rates: Sequence[float] = (R1, R2),
    config: Optional[ExperimentConfig] = None,
) -> Fig8Result:
    """Fig. 8a: Q1 (n=5) under variable window sizes."""
    cfg = config or ExperimentConfig()
    train, eval_stream = workloads.soccer_streams()
    return _variable_window_panel(
        "Fig8a Q1 variable window size",
        lambda ws: build_q1(pattern_size, window_seconds=ws),
        window_seconds,
        reference_seconds,
        train,
        eval_stream,
        rates,
        cfg,
    )


def fig8_q2(
    pattern_size: int = 10,
    window_seconds: Sequence[float] = (180.0, 200.0, 240.0, 260.0, 300.0),
    reference_seconds: float = 240.0,
    rates: Sequence[float] = (R1, R2),
    config: Optional[ExperimentConfig] = None,
    symbols: int = 50,
) -> Fig8Result:
    """Fig. 8b: Q2 (n=10) under variable window sizes."""
    cfg = config or ExperimentConfig()
    train, eval_stream = workloads.stock_streams_q2(symbols=symbols)
    return _variable_window_panel(
        "Fig8b Q2 variable window size",
        lambda ws: build_q2(pattern_size, window_seconds=ws, symbols=symbols),
        window_seconds,
        reference_seconds,
        train,
        eval_stream,
        rates,
        cfg,
    )

"""Figure 5: % false negatives for Q1--Q4, eSPICE vs BL, rates R1/R2.

- 5a/5b: Q1 (first/last selection) over pattern sizes ``n``.
- 5c/5d: Q2 (first/last selection) over pattern sizes ``n``.
- 5e:    Q3 (first selection) over window sizes ``ws``.
- 5f:    Q4 (first selection) over window sizes ``ws``.

Each runner returns a list of :class:`QualitySeriesPoint`; ``rows()``
renders the figure's series as a table.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.cep.patterns.policies import SelectionPolicy
from repro.experiments import workloads
from repro.experiments.common import (
    ExperimentConfig,
    QualityOutcome,
    R1,
    R2,
    format_rows,
    run_quality_point,
)
from repro.queries import build_q1, build_q2, build_q3, build_q4
from repro.runtime.quality import ground_truth

DEFAULT_STRATEGIES = ("espice", "bl")
DEFAULT_RATES = (R1, R2)


@dataclass
class QualitySeriesPoint:
    """One plotted point of a quality figure."""

    x: float  # pattern size or window size
    strategy: str
    rate_factor: float
    outcome: QualityOutcome

    @property
    def fn_pct(self) -> float:
        return self.outcome.fn_pct

    @property
    def fp_pct(self) -> float:
        return self.outcome.fp_pct


@dataclass
class QualityFigure:
    """A full figure panel: points over an x-sweep."""

    title: str
    x_label: str
    points: List[QualitySeriesPoint] = field(default_factory=list)

    def series(self, strategy: str, rate_factor: float) -> List[QualitySeriesPoint]:
        """The points of one plotted line, in x order."""
        return sorted(
            (
                p
                for p in self.points
                if p.strategy == strategy and p.rate_factor == rate_factor
            ),
            key=lambda p: p.x,
        )

    def rows(self, metric: str = "fn") -> str:
        """Render the panel as a fixed-width table (one row per x)."""
        getter = {
            "fn": lambda p: f"{p.fn_pct:.1f}",
            "fp": lambda p: f"{p.fp_pct:.1f}",
        }[metric]
        combos = sorted({(p.strategy, p.rate_factor) for p in self.points})
        header = [self.x_label] + [f"{s}@R{r:.1f} %{metric.upper()}" for s, r in combos]
        xs = sorted({p.x for p in self.points})
        by_key: Dict = {
            (p.x, p.strategy, p.rate_factor): p for p in self.points
        }
        body = []
        for x in xs:
            row = [x]
            for s, r in combos:
                point = by_key.get((x, s, r))
                row.append(getter(point) if point else "-")
            body.append(row)
        return f"{self.title}\n" + format_rows(header, body)


def _sweep(
    figure: QualityFigure,
    make_query,
    xs: Sequence[float],
    train_stream,
    eval_stream,
    strategies: Sequence[str],
    rates: Sequence[float],
    config: ExperimentConfig,
) -> QualityFigure:
    for x in xs:
        query = make_query(x)
        truth = ground_truth(query, eval_stream)
        for strategy in strategies:
            for rate in rates:
                outcome = run_quality_point(
                    query, train_stream, eval_stream, strategy, rate, config, truth
                )
                figure.points.append(QualitySeriesPoint(x, strategy, rate, outcome))
    return figure


def fig5_q1(
    pattern_sizes: Sequence[int] = (2, 3, 4, 5, 6),
    selection: SelectionPolicy = SelectionPolicy.FIRST,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    rates: Sequence[float] = DEFAULT_RATES,
    config: Optional[ExperimentConfig] = None,
    window_seconds: float = 15.0,
) -> QualityFigure:
    """Fig. 5a (first) / 5b (last): Q1 false negatives over pattern size."""
    train, eval_stream = workloads.soccer_streams()
    figure = QualityFigure(
        title=f"Fig5 Q1 ({selection.value} selection)", x_label="pattern size"
    )
    return _sweep(
        figure,
        lambda n: build_q1(int(n), window_seconds=window_seconds, selection=selection),
        pattern_sizes,
        train,
        eval_stream,
        strategies,
        rates,
        config or ExperimentConfig(),
    )


def fig5_q2(
    pattern_sizes: Sequence[int] = (5, 10, 15, 20, 25),
    selection: SelectionPolicy = SelectionPolicy.FIRST,
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    rates: Sequence[float] = DEFAULT_RATES,
    config: Optional[ExperimentConfig] = None,
    window_seconds: float = 240.0,
    symbols: int = 50,
) -> QualityFigure:
    """Fig. 5c (first) / 5d (last): Q2 false negatives over pattern size.

    The paper sweeps n = 10..80 over 500 symbols; the scaled default
    sweeps n = 5..25 over 50 symbols (same n-to-pool ratio range).
    """
    train, eval_stream = workloads.stock_streams_q2(symbols=symbols)
    figure = QualityFigure(
        title=f"Fig5 Q2 ({selection.value} selection)", x_label="pattern size"
    )
    return _sweep(
        figure,
        lambda n: build_q2(
            int(n),
            window_seconds=window_seconds,
            symbols=symbols,
            selection=selection,
        ),
        pattern_sizes,
        train,
        eval_stream,
        strategies,
        rates,
        config or ExperimentConfig(),
    )


def fig5_q3(
    window_sizes: Sequence[int] = (100, 200, 300, 400),
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    rates: Sequence[float] = DEFAULT_RATES,
    config: Optional[ExperimentConfig] = None,
) -> QualityFigure:
    """Fig. 5e: Q3 false negatives over window size (paper: 300..2000)."""
    train, eval_stream = workloads.stock_streams_q3()
    figure = QualityFigure(title="Fig5 Q3 (first selection)", x_label="window size")
    return _sweep(
        figure,
        lambda ws: build_q3(int(ws)),
        window_sizes,
        train,
        eval_stream,
        strategies,
        rates,
        config or ExperimentConfig(),
    )


def fig5_q4(
    window_sizes: Sequence[int] = (300, 400, 500, 600),
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    rates: Sequence[float] = DEFAULT_RATES,
    config: Optional[ExperimentConfig] = None,
) -> QualityFigure:
    """Fig. 5f: Q4 false negatives over window size (paper: 300..2000)."""
    train, eval_stream = workloads.stock_streams_q4()
    figure = QualityFigure(title="Fig5 Q4 (first selection)", x_label="window size")
    return _sweep(
        figure,
        lambda ws: build_q4(int(ws), slide_events=100),
        window_sizes,
        train,
        eval_stream,
        strategies,
        rates,
        config or ExperimentConfig(),
    )

"""Figure 9: impact of the bin size ``bs`` on quality (paper §3.6).

Bins trade utility-table size for positional accuracy: with bin size
``bs``, ``bs`` neighbouring positions share one utility cell.  The
paper sweeps bs = 1..64 on Q1 (n=5) and Q2 (n=20) and observes mild
degradation for Q1 and a clearer one for Q2 (whose longer pattern is
more position-sensitive).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.experiments import workloads
from repro.experiments.common import (
    ExperimentConfig,
    R1,
    R2,
    format_rows,
    run_quality_point,
)
from repro.queries import build_q1, build_q2
from repro.runtime.quality import ground_truth


@dataclass
class Fig9Point:
    """One (bin size, rate) false-negative measurement."""

    bin_size: int
    rate_factor: float
    fn_pct: float
    fp_pct: float


@dataclass
class Fig9Result:
    """One panel of Fig. 9."""

    title: str
    points: List[Fig9Point] = field(default_factory=list)

    def rows(self) -> str:
        header = ["bin size", "R1 %FN", "R2 %FN"]
        xs = sorted({p.bin_size for p in self.points})
        by_key = {(p.bin_size, p.rate_factor): p for p in self.points}
        body = []
        for x in xs:
            row = [x]
            for rate in (R1, R2):
                point = by_key.get((x, rate))
                row.append(f"{point.fn_pct:.1f}" if point else "-")
            body.append(row)
        return f"{self.title}\n" + format_rows(header, body)


def _bin_sweep(
    title: str,
    query,
    train_stream,
    eval_stream,
    bin_sizes: Sequence[int],
    rates: Sequence[float],
    base_config: ExperimentConfig,
) -> Fig9Result:
    result = Fig9Result(title=title)
    truth = ground_truth(query, eval_stream)
    for bin_size in bin_sizes:
        config = ExperimentConfig(
            throughput=base_config.throughput,
            latency_bound=base_config.latency_bound,
            f=base_config.f,
            bin_size=bin_size,
            check_interval=base_config.check_interval,
            seed=base_config.seed,
        )
        for rate in rates:
            outcome = run_quality_point(
                query, train_stream, eval_stream, "espice", rate, config, truth
            )
            result.points.append(
                Fig9Point(
                    bin_size=bin_size,
                    rate_factor=rate,
                    fn_pct=outcome.fn_pct,
                    fp_pct=outcome.fp_pct,
                )
            )
    return result


def fig9_q1(
    pattern_size: int = 5,
    bin_sizes: Sequence[int] = (1, 2, 4, 8, 16),
    rates: Sequence[float] = (R1, R2),
    config: Optional[ExperimentConfig] = None,
) -> Fig9Result:
    """Fig. 9a: Q1 (n=5, ws=15 s) over bin sizes."""
    cfg = config or ExperimentConfig()
    train, eval_stream = workloads.soccer_streams()
    query = build_q1(pattern_size, window_seconds=15.0)
    return _bin_sweep(
        "Fig9a Q1 bin size", query, train, eval_stream, bin_sizes, rates, cfg
    )


def fig9_q2(
    pattern_size: int = 20,
    bin_sizes: Sequence[int] = (1, 2, 4, 8, 16),
    rates: Sequence[float] = (R1, R2),
    config: Optional[ExperimentConfig] = None,
    symbols: int = 50,
) -> Fig9Result:
    """Fig. 9b: Q2 (n=20, ws=240 s) over bin sizes."""
    cfg = config or ExperimentConfig()
    train, eval_stream = workloads.stock_streams_q2(symbols=symbols)
    query = build_q2(pattern_size, window_seconds=240.0, symbols=symbols)
    return _bin_sweep(
        "Fig9b Q2 bin size", query, train, eval_stream, bin_sizes, rates, cfg
    )

"""Burst-absorption experiment: the case for a high ``f`` (paper §3.4).

"A high f value, on one hand, avoids unnecessarily dropping events --
in cases the events are only queued for a short time as in short burst
situations."

The runner drives Q1 at a sustainable base rate with one transient
burst injected (see :mod:`repro.runtime.arrivals`), for several ``f``
values.  With a short burst, a high ``f`` absorbs the queue spike
without shedding a single event while a low ``f`` sheds (and loses
quality) unnecessarily; a sustained burst forces everyone to shed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.experiments import workloads
from repro.experiments.common import ExperimentConfig, format_rows
from repro.pipeline import Pipeline
from repro.queries import build_q1
from repro.runtime.arrivals import burst_arrivals
from repro.runtime.quality import compare_results, ground_truth
from repro.runtime.simulation import measure_mean_memberships


@dataclass
class BurstPoint:
    """Outcome of one (f, burst length) run."""

    f: float
    burst_seconds: float
    dropped_memberships: int
    fn_pct: float
    latency_violations: int
    max_latency_ms: float


@dataclass
class BurstResult:
    """The burst-absorption comparison."""

    points: List[BurstPoint] = field(default_factory=list)

    def rows(self) -> str:
        header = ["burst (s)", "f", "dropped", "%FN", "LB violations", "max lat (ms)"]
        body = [
            [
                f"{p.burst_seconds:.1f}",
                f"{p.f:.2f}",
                p.dropped_memberships,
                f"{p.fn_pct:.1f}",
                p.latency_violations,
                f"{p.max_latency_ms:.0f}",
            ]
            for p in sorted(self.points, key=lambda p: (p.burst_seconds, p.f))
        ]
        return "Burst absorption vs f\n" + format_rows(header, body)


def burst_experiment(
    f_values: Sequence[float] = (0.5, 0.8, 0.95),
    burst_seconds: Sequence[float] = (0.5, 6.0),
    burst_factor: float = 3.0,
    base_factor: float = 0.9,
    pattern_size: int = 3,
    config: Optional[ExperimentConfig] = None,
) -> BurstResult:
    """Run the burst sweep.

    The base rate is ``base_factor * th`` (sustainable); during the
    burst the rate jumps to ``burst_factor * th``.
    """
    cfg = config or ExperimentConfig()
    train, eval_stream = workloads.soccer_streams()
    query = build_q1(pattern_size)
    truth = ground_truth(query, eval_stream)
    mean_memberships = measure_mean_memberships(query, eval_stream)

    # train once; every (burst, f) point deploys a fresh pipeline around
    # the shared pre-trained model
    model = (
        Pipeline.builder()
        .query(query)
        .shedder("espice", f=cfg.f)
        .latency_bound(cfg.latency_bound)
        .bin_size(8)
        .build()
        .train(train)
        .model
    )

    result = BurstResult()
    for burst in burst_seconds:
        arrivals = burst_arrivals(
            count=len(eval_stream),
            base_rate=base_factor * cfg.throughput,
            burst_rate=burst_factor * cfg.throughput,
            burst_start=2.0,
            burst_duration=burst,
        )
        for f in f_values:
            pipeline = (
                Pipeline.builder()
                .query(query)
                .shedder("espice", f=f)
                .latency_bound(cfg.latency_bound)
                .bin_size(8)
                .check_interval(cfg.check_interval)
                .model(model)
                .build()
            )
            pipeline.deploy(
                expected_throughput=cfg.throughput,
                expected_input_rate=burst_factor * cfg.throughput,
            )
            sim = pipeline.simulate(
                eval_stream,
                input_rate=base_factor * cfg.throughput,  # nominal; overridden
                throughput=cfg.throughput,
                mean_memberships=mean_memberships,
                arrival_times=arrivals,
            )
            report = compare_results(truth, sim.complex_events)
            stats = sim.latency.stats()
            result.points.append(
                BurstPoint(
                    f=f,
                    burst_seconds=burst,
                    dropped_memberships=sim.operator_stats.memberships_dropped,
                    fn_pct=report.false_negative_pct,
                    latency_violations=stats.violations,
                    max_latency_ms=stats.maximum * 1000.0,
                )
            )
    return result

"""Figure 7: event processing latency over time under R1 and R2.

The paper's headline latency result: with LB = 1 s and f = 0.8, eSPICE
keeps the event latency around ``f · LB`` (~800 ms) and never violates
the bound.  The runner replays Q1 under both rates and reports the
latency timeline plus the violation count.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.experiments import workloads
from repro.experiments.common import (
    ExperimentConfig,
    R1,
    R2,
    build_strategy,
    format_rows,
)
from repro.queries import build_q1
from repro.runtime.latency import LatencyStats
from repro.runtime.simulation import (
    SimulationConfig,
    measure_mean_memberships,
    simulate,
)


@dataclass
class LatencyRun:
    """Latency series of one rate."""

    rate_factor: float
    stats: LatencyStats
    timeline: List[Tuple[float, float]]  # (time bucket end, mean latency)

    @property
    def violated(self) -> bool:
        """Did any event exceed the latency bound?"""
        return self.stats.violations > 0


@dataclass
class Fig7Result:
    """Both rates' latency behaviour."""

    latency_bound: float
    f: float
    runs: List[LatencyRun] = field(default_factory=list)

    def rows(self) -> str:
        header = [
            "rate",
            "mean (ms)",
            "p99 (ms)",
            "max (ms)",
            "violations",
            "bound (ms)",
        ]
        body = [
            [
                f"R={run.rate_factor:.1f}",
                f"{run.stats.mean * 1000:.0f}",
                f"{run.stats.p99 * 1000:.0f}",
                f"{run.stats.maximum * 1000:.0f}",
                run.stats.violations,
                f"{self.latency_bound * 1000:.0f}",
            ]
            for run in self.runs
        ]
        return "Fig7 latency under overload\n" + format_rows(header, body)


def fig7_latency(
    pattern_size: int = 4,
    rates: Sequence[float] = (R1, R2),
    config: Optional[ExperimentConfig] = None,
    strategy: str = "espice",
    bucket_seconds: float = 1.0,
) -> Fig7Result:
    """Run Q1 under each rate and collect the latency timeline."""
    cfg = config or ExperimentConfig()
    train, eval_stream = workloads.soccer_streams()
    query = build_q1(pattern_size)
    result = Fig7Result(latency_bound=cfg.latency_bound, f=cfg.f)
    mean_memberships = measure_mean_memberships(query, eval_stream)
    for rate in rates:
        shedder, detector, reference = build_strategy(
            strategy, query, train, cfg, rate
        )
        sim = simulate(
            query,
            eval_stream,
            SimulationConfig(
                input_rate=rate * cfg.throughput,
                throughput=cfg.throughput,
                latency_bound=cfg.latency_bound,
                check_interval=cfg.check_interval,
                mean_memberships=mean_memberships,
            ),
            shedder=shedder,
            detector=detector,
            prime_window_size=reference,
        )
        result.runs.append(
            LatencyRun(
                rate_factor=rate,
                stats=sim.latency.stats(),
                timeline=sim.latency.timeline(bucket_seconds),
            )
        )
    return result

"""Server-driven replay harness: a stream through the wire, end to end.

The serving counterpart of :func:`repro.runtime.simulation.simulate_pipeline`:
:func:`serve_replay` stands up a real :class:`repro.serve.PipelineServer`
on an ephemeral localhost port, replays a stored stream through one or
more framed-TCP client connections (honouring backpressure), drains the
server gracefully, and returns the per-query detections together with
the server's wire-level metrics.

With a single connection the events arrive in stream order, so the
detections are bit-identical -- contents *and* order -- to an
in-process replay of the same pipeline (``run`` / ``simulate_pipeline``
without overload); that equivalence is what the serve test suite and
the CI serve smoke step assert.  With several connections the stream is
split round-robin and shipped concurrently: ordering then follows
arrival interleaving (throughput benchmarks), so determinism claims
only hold for ``connections=1``.

Everything here is synchronous at the surface (``asyncio.run`` inside)
so tests, benchmarks and CI steps need no async plumbing of their own.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Dict, Iterable, List, Optional, Sequence

from repro.cep.events import ComplexEvent, Event

if TYPE_CHECKING:  # pragma: no cover - cycle guard: serve imports the
    # pipeline package, whose __init__ imports repro.runtime; importing
    # serve lazily (inside serve_replay) keeps both import orders valid
    from repro.pipeline.pipeline import Pipeline
    from repro.serve.client import IngestReport
    from repro.serve.middleware import ServerMiddleware
    from repro.serve.server import ServeConfig

__all__ = ["ServeReplayResult", "serve_replay"]


@dataclass
class ServeReplayResult:
    """Outcome of one :func:`serve_replay` run."""

    matches: Dict[str, List[ComplexEvent]]
    metrics: Dict[str, object]
    events_sent: int = 0
    overloaded_responses: int = 0
    retries: int = 0
    wall_seconds: float = 0.0
    connections: int = 1
    reports: List[IngestReport] = field(default_factory=list)

    @property
    def complex_events(self) -> List[ComplexEvent]:
        """The first (or only) query's detections."""
        return next(iter(self.matches.values()), [])

    def for_query(self, name: str) -> List[ComplexEvent]:
        return self.matches[name]

    @property
    def events_per_second(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.events_sent / self.wall_seconds


def serve_replay(
    pipeline: Pipeline,
    stream: Iterable[Event],
    batch_events: int = 64,
    connections: int = 1,
    config: Optional[ServeConfig] = None,
    middleware: Sequence[ServerMiddleware] = (),
    auth: Optional[str] = None,
    max_retries: int = 100,
) -> ServeReplayResult:
    """Replay ``stream`` into ``pipeline`` over real localhost TCP.

    Parameters
    ----------
    pipeline:
        A built (and usually trained/deployed) pipeline; it is mutated
        exactly as a live deployment would be.
    batch_events:
        Events per ingest request (the client-side batch).
    connections:
        Concurrent client connections; 1 preserves stream order (and
        the determinism guarantee), >1 splits the stream round-robin.
    config / middleware / auth:
        Forwarded to the server (and ``auth`` to every client).

    Returns the per-query detections (including the graceful-drain
    flush of still-open windows) and the server's final metrics.
    """
    from repro.serve.client import ServeClient
    from repro.serve.server import PipelineServer, ServeConfig

    if connections <= 0:
        raise ValueError("connection count must be positive")
    events = list(stream)
    collected: Dict[str, List[ComplexEvent]] = {
        chain.query.name: [] for chain in pipeline.chains
    }
    sinks = []
    for chain in pipeline.chains:
        sink = collected[chain.query.name].append
        chain.emit.subscribe(sink)
        sinks.append((chain, sink))

    async def _run() -> ServeReplayResult:
        server = PipelineServer(
            pipeline,
            config=config if config is not None else ServeConfig(),
            middleware=middleware,
        )
        await server.start()
        loop = asyncio.get_running_loop()
        started = loop.time()
        try:
            if connections == 1:
                slices = [events]
            else:
                slices = [events[i::connections] for i in range(connections)]

            async def ship(slice_events: List[Event]) -> IngestReport:
                client = await ServeClient.connect(
                    server.config.host, server.port, auth=auth
                )
                try:
                    return await client.ingest_stream(
                        slice_events,
                        batch_events=batch_events,
                        max_retries=max_retries,
                    )
                finally:
                    await client.close()

            reports = await asyncio.gather(
                *(ship(s) for s in slices if s)
            )
        finally:
            await server.stop()
        wall = loop.time() - started
        return ServeReplayResult(
            matches=collected,
            metrics=server.metrics(),
            events_sent=sum(r.events_sent for r in reports),
            overloaded_responses=sum(r.overloaded_responses for r in reports),
            retries=sum(r.retries for r in reports),
            wall_seconds=wall,
            connections=connections,
            reports=list(reports),
        )

    try:
        return asyncio.run(_run())
    finally:
        # leave the pipeline as we found it: collection sinks are ours
        for chain, sink in sinks:
            chain.emit.sinks.remove(sink)

"""Simulation runtime: rates, queueing, latency and result quality.

- :mod:`repro.runtime.simulation` -- virtual-time pipeline
  (source -> input queue -> shedder -> operator) with a configured
  input rate ``R`` and operator throughput ``th``; reproduces the
  queueing/latency mathematics of paper §3.4 deterministically.
- :mod:`repro.runtime.quality` -- false positives/negatives against a
  ground-truth (no shedding, no overload) run (paper §2.1).
- :mod:`repro.runtime.latency` -- per-event latency series and
  latency-bound accounting (Fig. 7).
- :mod:`repro.runtime.serving` -- server-driven replay harness: the
  same stored streams shipped through a real
  :class:`repro.serve.PipelineServer` socket (tests, benchmarks, CI).
"""

from repro.runtime.arrivals import (
    burst_arrivals,
    poisson_arrivals,
    uniform_arrivals,
)
from repro.runtime.latency import LatencyStats, LatencyTracker
from repro.runtime.quality import QualityReport, compare_results, ground_truth
from repro.runtime.serving import ServeReplayResult, serve_replay
from repro.runtime.simulation import (
    SimulationConfig,
    SimulationResult,
    measure_mean_memberships,
    simulate,
    simulate_sharded,
)

__all__ = [
    "LatencyStats",
    "LatencyTracker",
    "QualityReport",
    "ServeReplayResult",
    "SimulationConfig",
    "SimulationResult",
    "burst_arrivals",
    "compare_results",
    "ground_truth",
    "measure_mean_memberships",
    "poisson_arrivals",
    "serve_replay",
    "simulate",
    "simulate_sharded",
    "uniform_arrivals",
]

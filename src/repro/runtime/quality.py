"""Quality of results: false positives and false negatives (paper §2.1).

A *false negative* is a complex event present in the ground-truth run
(no shedding) but missing from the shedding run; a *false positive* is
a complex event the shedding run detected that the ground truth does
not contain.  Complex events are identified by pattern name, window id
and the sequence numbers of their constituent primitive events --
window ids are deterministic functions of the raw stream, so the two
runs agree on them.

Percentages are relative to the ground-truth count, as in the paper's
figures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Set, Tuple

from repro.cep.events import ComplexEvent
from repro.cep.operator.operator import CEPOperator
from repro.cep.patterns.query import Query


@dataclass(frozen=True)
class QualityReport:
    """False positive/negative accounting of one shedding run."""

    truth_count: int
    detected_count: int
    false_negatives: int
    false_positives: int

    @property
    def false_negative_pct(self) -> float:
        """% of ground-truth complex events missed (0 when truth empty)."""
        if self.truth_count == 0:
            return 0.0
        return 100.0 * self.false_negatives / self.truth_count

    @property
    def false_positive_pct(self) -> float:
        """% of falsely detected complex events relative to the truth."""
        if self.truth_count == 0:
            return 0.0 if self.false_positives == 0 else 100.0
        return 100.0 * self.false_positives / self.truth_count

    @property
    def degradation(self) -> int:
        """The paper's objective: ``Nfp + Nfn``."""
        return self.false_positives + self.false_negatives

    def __str__(self) -> str:
        return (
            f"quality: truth={self.truth_count} detected={self.detected_count} "
            f"FN={self.false_negatives} ({self.false_negative_pct:.1f}%) "
            f"FP={self.false_positives} ({self.false_positive_pct:.1f}%)"
        )


def _keys(events: Iterable[ComplexEvent]) -> Set[Tuple]:
    return {event.key for event in events}


def compare_results(
    truth: Iterable[ComplexEvent], detected: Iterable[ComplexEvent]
) -> QualityReport:
    """Compare a shedding run's detections against the ground truth."""
    truth_keys = _keys(truth)
    detected_keys = _keys(detected)
    return QualityReport(
        truth_count=len(truth_keys),
        detected_count=len(detected_keys),
        false_negatives=len(truth_keys - detected_keys),
        false_positives=len(detected_keys - truth_keys),
    )


def ground_truth(query: Query, stream) -> List[ComplexEvent]:
    """Complex events of an unshedded, unconstrained run over ``stream``."""
    operator = CEPOperator(query, shedder=None)
    return operator.detect_all(stream)

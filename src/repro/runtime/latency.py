"""Per-event latency tracking and latency-bound accounting (Fig. 7).

Latency of an event = completion time − arrival time, both in virtual
seconds.  The tracker keeps the full series (for the Fig. 7 timeline)
plus summary statistics and the count of latency-bound violations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class LatencyStats:
    """Summary of a latency series."""

    count: int
    mean: float
    maximum: float
    p50: float
    p95: float
    p99: float
    violations: int
    bound: Optional[float]

    @property
    def violation_pct(self) -> float:
        """% of events whose latency exceeded the bound."""
        if self.count == 0:
            return 0.0
        return 100.0 * self.violations / self.count

    def __str__(self) -> str:
        bound_text = f" bound={self.bound}s" if self.bound is not None else ""
        return (
            f"latency: n={self.count} mean={self.mean * 1000:.1f}ms "
            f"p99={self.p99 * 1000:.1f}ms max={self.maximum * 1000:.1f}ms "
            f"violations={self.violations} ({self.violation_pct:.2f}%){bound_text}"
        )


def percentile(ordered: Sequence[float], fraction: float) -> float:
    """Linear-interpolated percentile of an *ascending-sorted* series.

    The single percentile implementation of the repo: latency summaries
    here and histogram summaries in :mod:`repro.obs.registry` both call
    it (directly or via :func:`histogram_quantile`).
    """
    if not ordered:
        return 0.0
    rank = fraction * (len(ordered) - 1)
    low = math.floor(rank)
    high = math.ceil(rank)
    if low == high:
        return ordered[low]
    weight = rank - low
    return ordered[low] * (1.0 - weight) + ordered[high] * weight


#: Backwards-compatible alias (pre-obs internal name).
_percentile = percentile


def histogram_quantile(
    bounds: Sequence[float], counts: Sequence[int], fraction: float
) -> float:
    """Estimate a quantile from fixed-bucket histogram counts.

    ``counts`` has one entry per bucket in ``bounds`` order plus a
    final overflow (+Inf) bucket: ``len(counts) == len(bounds) + 1``.
    Interpolates linearly within the containing bucket (the
    ``histogram_quantile`` estimator of Prometheus); values in the
    overflow bucket clamp to the highest finite bound.
    """
    if len(counts) != len(bounds) + 1:
        raise ValueError("counts must have one entry per bound plus overflow")
    total = sum(counts)
    if total == 0:
        return 0.0
    rank = fraction * total
    cumulative = 0
    for index, count in enumerate(counts):
        cumulative += count
        if count and cumulative >= rank:
            if index >= len(bounds):
                return float(bounds[-1]) if bounds else 0.0
            lower = float(bounds[index - 1]) if index > 0 else 0.0
            upper = float(bounds[index])
            within = (rank - (cumulative - count)) / count
            return lower + (upper - lower) * within
    return float(bounds[-1]) if bounds else 0.0


class LatencyTracker:
    """Collects (completion time, latency) samples for one run."""

    def __init__(self, bound: Optional[float] = None) -> None:
        self.bound = bound
        self._samples: List[Tuple[float, float]] = []

    def record(self, completion_time: float, latency: float) -> None:
        """Add one event's latency sample."""
        if latency < 0.0:
            raise ValueError("latency cannot be negative")
        self._samples.append((completion_time, latency))

    def __len__(self) -> int:
        return len(self._samples)

    @property
    def series(self) -> List[Tuple[float, float]]:
        """The (time, latency) series in completion order."""
        return list(self._samples)

    def latencies(self) -> List[float]:
        """Just the latency values, in completion order."""
        return [latency for _t, latency in self._samples]

    def stats(self) -> LatencyStats:
        """Summary statistics of the collected series."""
        values = sorted(self.latencies())
        if not values:
            return LatencyStats(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0, self.bound)
        violations = 0
        if self.bound is not None:
            violations = sum(1 for v in values if v > self.bound)
        return LatencyStats(
            count=len(values),
            mean=sum(values) / len(values),
            maximum=values[-1],
            p50=percentile(values, 0.50),
            p95=percentile(values, 0.95),
            p99=percentile(values, 0.99),
            violations=violations,
            bound=self.bound,
        )

    def timeline(self, bucket_seconds: float) -> List[Tuple[float, float]]:
        """Mean latency per time bucket -- the Fig. 7 series.

        Returns (bucket end time, mean latency) pairs for non-empty
        buckets, in time order.
        """
        if bucket_seconds <= 0.0:
            raise ValueError("bucket size must be positive")
        buckets: dict = {}
        for completion, latency in self._samples:
            index = int(completion / bucket_seconds)
            total, count = buckets.get(index, (0.0, 0))
            buckets[index] = (total + latency, count + 1)
        return [
            ((index + 1) * bucket_seconds, total / count)
            for index, (total, count) in sorted(buckets.items())
        ]

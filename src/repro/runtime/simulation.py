"""Virtual-time simulation: the deterministic driver of a Pipeline.

Reproduces the paper's experimental setup deterministically: a stored
stream is replayed into each query chain's input queue at a configured
input rate ``R`` (events/second of virtual time) while the operator
drains it at throughput ``th``.  When ``R > th`` the queue grows, the
overload detector reacts (paper §3.4), the shedder drops events, and
per-event latencies are recorded -- all in virtual time, so runs are
exactly repeatable.

Since the pipeline API redesign this module no longer hand-assembles
operator + queue + detector: :func:`simulate_pipeline` steps the
middleware chains of a :class:`repro.pipeline.Pipeline` (ingress at
arrival, detector ticks on the check interval, egress when the
operator picks an item up), and :func:`simulate` is a thin
single-query wrapper that builds the pipeline from loose components
for backward compatibility.

Cost model
----------
Processing an event means processing it in all windows it belongs to
(paper §3.4 defines ``l(p)`` that way), so the cost of one queue item
is linear in the window memberships the shedder kept::

    cost(item) = idle + slope * kept
    slope      = (1/th - idle) / mean_memberships

where ``mean_memberships`` is the stream's average number of window
memberships per event (a property of the raw stream, measured by
:func:`measure_mean_memberships`).  An unshedded run therefore costs
exactly ``1/th`` per event on average -- matching the definition of
throughput ``th`` -- and dropping memberships frees capacity
proportionally, which is the behaviour the paper's dropping-amount
computation assumes.

Window assignment happens at arrival (before the queue), exactly like
the paper's architecture where *windows* of events are queued.
Time-based windows use event timestamps (event time); queueing and
latency use arrival/processing times (processing time).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Mapping, Optional, Union

from repro.cep.events import ComplexEvent, EventStream
from repro.cep.operator.operator import OperatorStats
from repro.cep.patterns.query import Query
from repro.core.overload import OverloadDetector
from repro.runtime.latency import LatencyTracker
from repro.shedding.base import LoadShedder

if TYPE_CHECKING:  # pragma: no cover - cycle guard (pipeline calls back here)
    from repro.pipeline.pipeline import Pipeline

_INFINITY = math.inf


def measure_mean_memberships(query: Query, stream: EventStream) -> float:
    """Average window memberships per event of ``stream`` under ``query``.

    A pure property of the raw stream (shedding does not change window
    assignment); used to calibrate the simulation's cost model.
    """
    assigner = query.new_assigner()
    total = 0
    for event in stream:
        total += len(assigner.on_event(event).assignments)
    count = len(stream)
    return total / count if count else 1.0


@dataclass
class SimulationConfig:
    """Rates and bounds of one simulated run.

    Attributes
    ----------
    input_rate:
        ``R``: arrival rate into the queue (events/second).
    throughput:
        ``th``: operator capacity (events/second, unshedded); each
        query chain models its own operator instance of this capacity.
    latency_bound:
        ``LB`` used for latency accounting (the detector carries its
        own copy).
    check_interval:
        Detector period; ignored when no detector is given.
    idle_cost_fraction:
        Cost of an event with zero kept window memberships, as a
        fraction of the full per-event cost (queue management, window
        bookkeeping, the shedding decision itself).
    mean_memberships:
        Average window memberships per event of the raw stream; scales
        the per-membership cost so the unshedded per-event average is
        exactly ``1/th``.  Use :func:`measure_mean_memberships`.
    """

    input_rate: float
    throughput: float
    latency_bound: float = 1.0
    check_interval: float = 0.1
    idle_cost_fraction: float = 0.05
    mean_memberships: float = 1.0

    def __post_init__(self) -> None:
        if self.input_rate <= 0.0:
            raise ValueError("input rate must be positive")
        if self.throughput <= 0.0:
            raise ValueError("throughput must be positive")
        if self.latency_bound <= 0.0:
            raise ValueError("latency bound must be positive")
        if self.mean_memberships <= 0.0:
            raise ValueError("mean memberships must be positive")
        if not 0.0 <= self.idle_cost_fraction < 1.0:
            raise ValueError("idle cost fraction must lie in [0, 1)")

    @property
    def overload_factor(self) -> float:
        """``R / th`` -- 1.2 and 1.4 are the paper's R1 and R2."""
        return self.input_rate / self.throughput


@dataclass
class SimulationResult:
    """Everything a run produced."""

    complex_events: List[ComplexEvent]
    latency: LatencyTracker
    operator_stats: OperatorStats
    config: SimulationConfig
    detector: Optional[OverloadDetector] = None
    shedder: Optional[LoadShedder] = None
    events_arrived: int = 0
    virtual_duration: float = 0.0
    max_queue_size: int = 0

    @property
    def detections(self) -> int:
        """Number of complex events detected."""
        return len(self.complex_events)


def _validate_arrivals(
    arrival_times: Optional[List[float]], stream: EventStream
) -> None:
    if arrival_times is None:
        return
    if len(arrival_times) != len(stream):
        raise ValueError("need exactly one arrival time per event")
    if any(b < a for a, b in zip(arrival_times, arrival_times[1:])):
        raise ValueError("arrival times must be non-decreasing")


def simulate_pipeline(
    pipeline: "Pipeline",
    stream: EventStream,
    config: SimulationConfig,
    prime_window_size: Optional[float] = None,
    arrival_times: Optional[List[float]] = None,
    mean_memberships: Optional[Union[float, Mapping[str, float]]] = None,
) -> Dict[str, SimulationResult]:
    """Step ``pipeline`` through ``stream`` in virtual time.

    Every chain sees the same arrival process (one shared input
    stream); each chain drains its own queue with its own operator at
    ``config.throughput``.  The scheduling order per instant is
    detector check, then arrival, then processing -- identical to the
    historical single-operator simulation, which this function
    generalises.

    Parameters
    ----------
    pipeline:
        A built (and usually trained + deployed)
        :class:`repro.pipeline.Pipeline`.  Chains are stateful; use a
        fresh pipeline per run.
    prime_window_size:
        Seed for unprimed window-size predictors (e.g. the training
        phase's average window size); ``deploy()`` primes chains
        already, so this mainly serves undeployed pipelines.
    arrival_times:
        Explicit arrival times (see :mod:`repro.runtime.arrivals`),
        overriding the uniform spacing derived from
        ``config.input_rate``.  Must be non-decreasing and one per
        stream event.
    mean_memberships:
        Per-query override of ``config.mean_memberships`` -- a float
        for all chains or a mapping keyed by query name.

    Returns a :class:`SimulationResult` per query name.
    """
    # function-level import: repro.pipeline's package __init__ imports
    # this module, so a top-level import would be circular
    from repro.pipeline.batching import EventBatch

    _validate_arrivals(arrival_times, stream)
    chains = pipeline.chains
    k = len(chains)
    for chain in chains:
        if chain.operator is None:
            raise ValueError(
                "virtual-time simulation needs sequential chains: the "
                "per-membership cost model cannot price window-parallel "
                f"matching (query {chain.query.name!r} uses "
                f".parallel({chain.degree})); use run()/feed() for "
                "parallel pipelines"
            )
    if prime_window_size is not None:
        for chain in chains:
            chain._prime(prime_window_size)

    def _memberships_for(chain) -> float:
        if mean_memberships is None:
            return config.mean_memberships
        if isinstance(mean_memberships, Mapping):
            return mean_memberships.get(chain.query.name, config.mean_memberships)
        return mean_memberships

    full_cost = 1.0 / config.throughput
    idle_cost = config.idle_cost_fraction * full_cost
    membership_cost = [
        (full_cost - idle_cost) / _memberships_for(chain) for chain in chains
    ]

    latency = [LatencyTracker(bound=config.latency_bound) for _ in chains]
    complex_events: List[List[ComplexEvent]] = [[] for _ in chains]
    free_at = [0.0] * k
    max_queue = [0] * k
    next_check = [
        config.check_interval if chain.detector is not None else _INFINITY
        for chain in chains
    ]

    n = len(stream)
    arrival_interval = 1.0 / config.input_rate
    arrival_index = 0
    now = 0.0
    # arrivals can be ingested as micro-batches only when admission
    # cannot veto by queue depth (rejections depend on interleaving)
    batched_ingress = pipeline.config.queue_capacity is None

    def _arrival_time(index: int) -> float:
        if arrival_times is not None:
            return arrival_times[index]
        return index * arrival_interval

    while arrival_index < n or any(chain.queue for chain in chains):
        if arrival_index >= n:
            next_arrival = _INFINITY
        else:
            next_arrival = _arrival_time(arrival_index)

        next_process = _INFINITY
        process_chain = -1
        for ci, chain in enumerate(chains):
            head = chain.queue.peek()
            if head is None:
                continue
            start = max(free_at[ci], head.enqueue_time)
            if start < next_process:
                next_process = start
                process_chain = ci

        check_time = min(next_check)
        now = min(next_arrival, next_process, check_time)

        if check_time <= next_arrival and check_time <= next_process:
            check_chain = next_check.index(check_time)
            chains[check_chain].on_tick(now)
            next_check[check_chain] += config.check_interval
            continue

        if next_arrival <= next_process:
            if not batched_ingress:
                event = stream[arrival_index]
                for ci, chain in enumerate(chains):
                    chain.ingest(event, now)
                    max_queue[ci] = max(max_queue[ci], chain.queue.size)
                arrival_index += 1
                continue
            # a maximal run of arrivals nothing can interleave: under
            # overload the operator is busy (free_at ahead of the
            # arrival clock), so whole bursts of arrivals are due
            # before the next processing step or detector check --
            # ingest them as one micro-batch instead of paying a full
            # scheduler round-trip per event.  The processing bound is
            # a lower bound on the earliest possible start (head
            # enqueue times only grow during the run), so batching is
            # conservative: any event that *could* tie with processing
            # still wins the tie, exactly like the per-event schedule.
            bound = _INFINITY
            for ci, chain in enumerate(chains):
                head = chain.queue.peek()
                earliest = max(
                    free_at[ci],
                    head.enqueue_time if head is not None else next_arrival,
                )
                if earliest < bound:
                    bound = earliest
            run = EventBatch()
            run.append(stream[arrival_index], next_arrival)
            arrival_index += 1
            while arrival_index < n:
                t = _arrival_time(arrival_index)
                if t > bound or t >= check_time:
                    break
                run.append(stream[arrival_index], t)
                arrival_index += 1
            now = run.nows[-1]
            if len(run.events) == 1:
                event = run.events[0]
                for ci, chain in enumerate(chains):
                    chain.ingest(event, now)
                    max_queue[ci] = max(max_queue[ci], chain.queue.size)
            else:
                for ci, chain in enumerate(chains):
                    chain.ingest_batch(run)
                    max_queue[ci] = max(max_queue[ci], chain.queue.size)
            continue

        # the chain's operator picks its head item
        chain = chains[process_chain]
        item = chain.queue.pop()
        start = max(free_at[process_chain], item.enqueue_time)
        result = chain.process_item(item, now=start)
        cost = idle_cost + membership_cost[process_chain] * result.memberships_kept
        free_at[process_chain] = start + cost
        latency[process_chain].record(
            free_at[process_chain], free_at[process_chain] - item.enqueue_time
        )
        complex_events[process_chain].extend(result.complex_events)

    # end of stream: flush still-open windows
    results: Dict[str, SimulationResult] = {}
    for ci, chain in enumerate(chains):
        complex_events[ci].extend(chain.flush(now=free_at[ci]))
        results[chain.query.name] = SimulationResult(
            complex_events=complex_events[ci],
            latency=latency[ci],
            operator_stats=chain.operator.stats,
            config=dataclasses.replace(
                config, mean_memberships=_memberships_for(chain)
            ),
            detector=chain.detector,
            shedder=chain.shedder,
            events_arrived=n,
            virtual_duration=max(free_at[ci], now),
            max_queue_size=max_queue[ci],
        )
    return results


def simulate_sharded(
    pipeline,
    stream: EventStream,
    shards: int = 2,
    router="round-robin",
    batch_size: int = 32,
    linger: float = 0.0,
    drop_command=None,
    **cluster_options,
):
    """Replay ``stream`` through a sharded multi-process execution of
    ``pipeline`` and return the merged, ordered results.

    The scale-out counterpart of :func:`simulate_pipeline`: the same
    built (and usually trained + deployed) pipeline is executed by a
    :class:`repro.cluster.ShardedPipeline` across ``shards`` real
    worker processes -- the router ships complete windows (the paper's
    unit of distribution) over batched IPC queues, shards shed + match
    them, and the coordinator merges detections back into sequential
    emission order.  Because shedding state is coordinator-owned and
    windows are decided whole, the per-query detections (contents and
    order) are identical for every shard count, and identical to a
    sequential :func:`simulate_pipeline` run of the same deployment --
    the paper's parallelism-degree-independence claim, tested across
    OS processes.

    Parameters
    ----------
    pipeline:
        A built :class:`repro.pipeline.Pipeline` (it is wrapped in a
        fresh ``ShardedPipeline`` and the workers are shut down before
        returning), or an already-started
        :class:`repro.cluster.ShardedPipeline` (then left running for
        the caller to reuse).
    drop_command:
        Optional static :class:`repro.shedding.base.DropCommand`
        applied to every chain's shedder -- and activated -- *before*
        the workers fork, giving a deterministic "under shedding" run
        (dynamic detector-driven shedding reacts to wall-clock
        backpressure and is therefore not replayable).

    Returns a :class:`repro.cluster.ShardedResult` (per-query ordered
    detections, throughput, and the cluster snapshot).  Extra keyword
    arguments (``fault_tolerant``, ``checkpoint_dir``, ``autoscaler``,
    ...) forward to the :class:`~repro.cluster.ShardedPipeline`
    constructor.
    """
    from repro.cluster import ShardedPipeline

    if isinstance(pipeline, ShardedPipeline):
        if drop_command is not None:
            raise ValueError(
                "pass drop_command only with a plain Pipeline: a started "
                "ShardedPipeline takes commands via broadcast_shedding()"
            )
        return pipeline.run(stream)

    if drop_command is not None:
        for chain in pipeline.chains:
            if chain.shedder is None:
                raise RuntimeError(
                    f"chain {chain.query.name!r} has no shedder for the "
                    "drop command; deploy() a shedding strategy first"
                )
            chain.shedder.on_drop_command(drop_command)
            chain.shedder.activate()
    sharded = ShardedPipeline(
        pipeline,
        shards=shards,
        router=router,
        batch_size=batch_size,
        linger=linger,
        **cluster_options,
    )
    with sharded:
        return sharded.run(stream)


def simulate(
    query: Query,
    stream: EventStream,
    config: SimulationConfig,
    shedder: Optional[LoadShedder] = None,
    detector: Optional[OverloadDetector] = None,
    prime_window_size: Optional[float] = None,
    arrival_times: Optional[List[float]] = None,
) -> SimulationResult:
    """Run ``stream`` through a single-query pipeline at the configured
    rates.

    Compatibility wrapper over :func:`simulate_pipeline`: assembles a
    one-chain pipeline around ``query``, injecting the prebuilt
    ``shedder``/``detector`` (the detector is expected to be wired to
    the shedder: ``detector.shedder is shedder``).
    ``prime_window_size`` seeds the operator's window-size predictor
    (e.g. the training phase's average window size) so relative
    positions are available from the first window.
    """
    from repro.pipeline import Pipeline

    builder = (
        Pipeline.builder()
        .query(query)
        .latency_bound(config.latency_bound)
        .check_interval(config.check_interval)
    )
    if shedder is not None:
        builder.shedder(shedder)
    if detector is not None:
        builder.detector(detector)
    results = simulate_pipeline(
        builder.build(),
        stream,
        config,
        prime_window_size=prime_window_size,
        arrival_times=arrival_times,
    )
    return results[query.name]

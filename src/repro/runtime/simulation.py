"""Virtual-time simulation of the overloaded CEP pipeline.

Reproduces the paper's experimental setup deterministically: a stored
stream is replayed into the operator's input queue at a configured
input rate ``R`` (events/second of virtual time) while the operator
drains it at throughput ``th``.  When ``R > th`` the queue grows, the
overload detector reacts (paper §3.4), the shedder drops events, and
per-event latencies are recorded -- all in virtual time, so runs are
exactly repeatable.

Cost model
----------
Processing an event means processing it in all windows it belongs to
(paper §3.4 defines ``l(p)`` that way), so the cost of one queue item
is linear in the window memberships the shedder kept::

    cost(item) = idle + slope * kept
    slope      = (1/th - idle) / mean_memberships

where ``mean_memberships`` is the stream's average number of window
memberships per event (a property of the raw stream, measured by
:func:`measure_mean_memberships`).  An unshedded run therefore costs
exactly ``1/th`` per event on average -- matching the definition of
throughput ``th`` -- and dropping memberships frees capacity
proportionally, which is the behaviour the paper's dropping-amount
computation assumes.

Window assignment happens at arrival (before the queue), exactly like
the paper's architecture where *windows* of events are queued.
Time-based windows use event timestamps (event time); queueing and
latency use arrival/processing times (processing time).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

from repro.cep.events import ComplexEvent, Event, EventStream
from repro.cep.operator.operator import CEPOperator, OperatorStats
from repro.cep.operator.queue import InputQueue, QueuedItem
from repro.cep.patterns.query import Query
from repro.core.overload import OverloadDetector
from repro.runtime.latency import LatencyTracker
from repro.shedding.base import LoadShedder

_INFINITY = math.inf


def measure_mean_memberships(query: Query, stream: EventStream) -> float:
    """Average window memberships per event of ``stream`` under ``query``.

    A pure property of the raw stream (shedding does not change window
    assignment); used to calibrate the simulation's cost model.
    """
    assigner = query.new_assigner()
    total = 0
    for event in stream:
        total += len(assigner.on_event(event).assignments)
    count = len(stream)
    return total / count if count else 1.0


@dataclass
class SimulationConfig:
    """Rates and bounds of one simulated run.

    Attributes
    ----------
    input_rate:
        ``R``: arrival rate into the queue (events/second).
    throughput:
        ``th``: operator capacity (events/second, unshedded).
    latency_bound:
        ``LB`` used for latency accounting (the detector carries its
        own copy).
    check_interval:
        Detector period; ignored when no detector is given.
    idle_cost_fraction:
        Cost of an event with zero kept window memberships, as a
        fraction of the full per-event cost (queue management, window
        bookkeeping, the shedding decision itself).
    mean_memberships:
        Average window memberships per event of the raw stream; scales
        the per-membership cost so the unshedded per-event average is
        exactly ``1/th``.  Use :func:`measure_mean_memberships`.
    """

    input_rate: float
    throughput: float
    latency_bound: float = 1.0
    check_interval: float = 0.1
    idle_cost_fraction: float = 0.05
    mean_memberships: float = 1.0

    def __post_init__(self) -> None:
        if self.input_rate <= 0.0:
            raise ValueError("input rate must be positive")
        if self.throughput <= 0.0:
            raise ValueError("throughput must be positive")
        if self.latency_bound <= 0.0:
            raise ValueError("latency bound must be positive")
        if self.mean_memberships <= 0.0:
            raise ValueError("mean memberships must be positive")
        if not 0.0 <= self.idle_cost_fraction < 1.0:
            raise ValueError("idle cost fraction must lie in [0, 1)")

    @property
    def overload_factor(self) -> float:
        """``R / th`` -- 1.2 and 1.4 are the paper's R1 and R2."""
        return self.input_rate / self.throughput


@dataclass
class SimulationResult:
    """Everything a run produced."""

    complex_events: List[ComplexEvent]
    latency: LatencyTracker
    operator_stats: OperatorStats
    config: SimulationConfig
    detector: Optional[OverloadDetector] = None
    shedder: Optional[LoadShedder] = None
    events_arrived: int = 0
    virtual_duration: float = 0.0
    max_queue_size: int = 0

    @property
    def detections(self) -> int:
        """Number of complex events detected."""
        return len(self.complex_events)


def simulate(
    query: Query,
    stream: EventStream,
    config: SimulationConfig,
    shedder: Optional[LoadShedder] = None,
    detector: Optional[OverloadDetector] = None,
    prime_window_size: Optional[float] = None,
    arrival_times: Optional[List[float]] = None,
) -> SimulationResult:
    """Run ``stream`` through the pipeline at the configured rates.

    Parameters
    ----------
    query:
        The deployed query (fresh assigner/matcher per call).
    stream:
        The stored input stream; arrival times are re-derived from the
        input rate, window semantics use the original timestamps.
    shedder / detector:
        Optional shedding machinery.  The detector is expected to be
        wired to the shedder (``detector.shedder is shedder``).
    prime_window_size:
        Seed for the operator's window-size predictor (e.g. the
        training phase's average window size) so relative positions are
        available from the first window.
    arrival_times:
        Explicit arrival times (see :mod:`repro.runtime.arrivals`),
        overriding the uniform spacing derived from
        ``config.input_rate``.  Must be non-decreasing and one per
        stream event.
    """
    if arrival_times is not None:
        if len(arrival_times) != len(stream):
            raise ValueError("need exactly one arrival time per event")
        if any(b < a for a, b in zip(arrival_times, arrival_times[1:])):
            raise ValueError("arrival times must be non-decreasing")
    operator = CEPOperator(query, shedder=shedder)
    if prime_window_size is not None and prime_window_size > 0:
        operator.prime_window_size(prime_window_size, weight=10)
    assigner = query.new_assigner()
    queue = InputQueue()
    latency = LatencyTracker(bound=config.latency_bound)
    complex_events: List[ComplexEvent] = []

    full_cost = 1.0 / config.throughput
    idle_cost = config.idle_cost_fraction * full_cost
    membership_cost = (full_cost - idle_cost) / config.mean_memberships

    n = len(stream)
    arrival_interval = 1.0 / config.input_rate
    arrival_index = 0
    operator_free_at = 0.0
    next_check = config.check_interval if detector is not None else _INFINITY
    max_queue = 0
    now = 0.0

    while arrival_index < n or queue:
        if arrival_index >= n:
            next_arrival = _INFINITY
        elif arrival_times is not None:
            next_arrival = arrival_times[arrival_index]
        else:
            next_arrival = arrival_index * arrival_interval
        head = queue.peek()
        next_process = (
            max(operator_free_at, head.enqueue_time) if head is not None else _INFINITY
        )
        upcoming = min(next_arrival, next_process, next_check)
        now = upcoming

        if next_check <= next_arrival and next_check <= next_process:
            assert detector is not None
            detector.check(now, queue.size)
            next_check += config.check_interval
            continue

        if next_arrival <= next_process:
            event = stream[arrival_index]
            assignment = assigner.on_event(event)
            queue.push(
                QueuedItem(
                    event=event,
                    refs=assignment.assignments,
                    closed_windows=assignment.closed,
                    enqueue_time=now,
                )
            )
            if detector is not None:
                detector.record_arrival(now)
            arrival_index += 1
            max_queue = max(max_queue, queue.size)
            continue

        # operator picks the head item
        item = queue.pop()
        start = max(operator_free_at, item.enqueue_time)
        result = operator.process(item, now=start)
        cost = idle_cost + membership_cost * result.memberships_kept
        operator_free_at = start + cost
        latency.record(operator_free_at, operator_free_at - item.enqueue_time)
        complex_events.extend(result.complex_events)

    # end of stream: flush still-open windows
    complex_events.extend(operator.flush(assigner.flush(), now=operator_free_at))

    return SimulationResult(
        complex_events=complex_events,
        latency=latency,
        operator_stats=operator.stats,
        config=config,
        detector=detector,
        shedder=shedder,
        events_arrived=n,
        virtual_duration=max(operator_free_at, now),
        max_queue_size=max_queue,
    )

"""Exporting experiment results as Markdown / CSV.

The figure runners return dataclasses with ad-hoc ``rows()`` renderers;
this module provides structured exports so results can be committed
(EXPERIMENTS.md style), diffed across runs, or loaded into other tools.
"""

from __future__ import annotations

import csv
import io
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Union


@dataclass
class ResultTable:
    """A titled table of experiment results."""

    title: str
    columns: List[str]
    rows: List[List[object]] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        """Append one row (must match the column count)."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} cells, table has {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    # ------------------------------------------------------------------
    # renderers
    # ------------------------------------------------------------------
    def to_markdown(self) -> str:
        """GitHub-flavoured Markdown rendering."""
        def fmt(value: object) -> str:
            if isinstance(value, float):
                return f"{value:.1f}"
            return str(value)

        lines = [f"### {self.title}", ""]
        lines.append("| " + " | ".join(self.columns) + " |")
        lines.append("|" + "|".join("---" for _ in self.columns) + "|")
        for row in self.rows:
            lines.append("| " + " | ".join(fmt(cell) for cell in row) + " |")
        return "\n".join(lines)

    def to_csv(self) -> str:
        """CSV rendering (header + rows)."""
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(self.columns)
        writer.writerows(self.rows)
        return buffer.getvalue()

    def save(self, path: Union[str, Path]) -> None:
        """Write Markdown (``.md``) or CSV (anything else) by suffix."""
        path = Path(path)
        if path.suffix == ".md":
            path.write_text(self.to_markdown() + "\n")
        else:
            path.write_text(self.to_csv())


def quality_figure_table(figure) -> ResultTable:
    """Convert a :class:`repro.experiments.fig5.QualityFigure`."""
    combos = sorted({(p.strategy, p.rate_factor) for p in figure.points})
    columns = [figure.x_label]
    for strategy, rate in combos:
        columns.append(f"{strategy}@R{rate:.1f} %FN")
        columns.append(f"{strategy}@R{rate:.1f} %FP")
    table = ResultTable(title=figure.title, columns=columns)
    by_key = {(p.x, p.strategy, p.rate_factor): p for p in figure.points}
    for x in sorted({p.x for p in figure.points}):
        row: List[object] = [x]
        for strategy, rate in combos:
            point = by_key.get((x, strategy, rate))
            row.append(round(point.fn_pct, 1) if point else "")
            row.append(round(point.fp_pct, 1) if point else "")
        table.rows.append(row)
    return table


def latency_table(result) -> ResultTable:
    """Convert a :class:`repro.experiments.fig7.Fig7Result`."""
    table = ResultTable(
        title="Latency under overload",
        columns=["rate", "mean ms", "p99 ms", "max ms", "violations"],
    )
    for run in result.runs:
        table.add_row(
            f"R={run.rate_factor:.1f}",
            round(run.stats.mean * 1000, 1),
            round(run.stats.p99 * 1000, 1),
            round(run.stats.maximum * 1000, 1),
            run.stats.violations,
        )
    return table


def metrics_table(snapshot, title: str = "Metrics") -> ResultTable:
    """Render a :meth:`repro.obs.registry.Registry.snapshot` as a table.

    Counters and gauges get one row per labelled child; histograms are
    summarised to count/mean/p50/p95/p99 -- the same digest the JSON
    snapshot carries, laid out for EXPERIMENTS.md-style commits.
    """
    table = ResultTable(
        title=title,
        columns=["metric", "labels", "value", "p50", "p95", "p99"],
    )
    for name in sorted(snapshot):
        family = snapshot[name]
        for sample in family["samples"]:
            labels = ",".join(
                f"{k}={v}" for k, v in sorted(sample["labels"].items())
            )
            if family["type"] == "histogram":
                table.add_row(
                    name,
                    labels,
                    f"n={sample['count']} mean={sample['mean']:.2g}",
                    f"{sample['p50']:.2g}",
                    f"{sample['p95']:.2g}",
                    f"{sample['p99']:.2g}",
                )
            else:
                table.add_row(name, labels, sample["value"], "", "", "")
    return table


def combine_markdown(tables: Iterable[ResultTable], heading: str = "") -> str:
    """Join tables into one Markdown document."""
    parts: List[str] = []
    if heading:
        parts.append(f"# {heading}")
    parts.extend(table.to_markdown() for table in tables)
    return "\n\n".join(parts) + "\n"

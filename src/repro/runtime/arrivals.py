"""Arrival processes for the simulation (steady, Poisson, bursty).

The default simulation spaces arrivals uniformly at the configured
rate.  Real streams are not that polite: the paper's discussion of the
``f`` parameter (§3.4) hinges on *short bursts* -- a high ``f`` avoids
shedding when the queue spike is transient.  These generators produce
explicit arrival-time sequences for :func:`repro.runtime.simulation.simulate`
so that burstiness becomes an experimental variable.
"""

from __future__ import annotations

import random
from typing import List


def uniform_arrivals(count: int, rate: float, start: float = 0.0) -> List[float]:
    """``count`` arrivals evenly spaced at ``rate`` events/second."""
    if count < 0:
        raise ValueError("count must be non-negative")
    if rate <= 0.0:
        raise ValueError("rate must be positive")
    interval = 1.0 / rate
    return [start + i * interval for i in range(count)]


def poisson_arrivals(
    count: int, rate: float, seed: int = 0, start: float = 0.0
) -> List[float]:
    """``count`` arrivals of a Poisson process with intensity ``rate``."""
    if count < 0:
        raise ValueError("count must be non-negative")
    if rate <= 0.0:
        raise ValueError("rate must be positive")
    rng = random.Random(seed)
    times: List[float] = []
    now = start
    for _ in range(count):
        now += rng.expovariate(rate)
        times.append(now)
    return times


def burst_arrivals(
    count: int,
    base_rate: float,
    burst_rate: float,
    burst_start: float,
    burst_duration: float,
    start: float = 0.0,
) -> List[float]:
    """Arrivals at ``base_rate`` with one burst at ``burst_rate``.

    During ``[burst_start, burst_start + burst_duration)`` the inter-
    arrival gap shrinks to ``1/burst_rate``; outside it is
    ``1/base_rate``.  Exactly ``count`` arrivals are produced.
    """
    if count < 0:
        raise ValueError("count must be non-negative")
    if base_rate <= 0.0 or burst_rate <= 0.0:
        raise ValueError("rates must be positive")
    if burst_duration < 0.0:
        raise ValueError("burst duration must be non-negative")
    times: List[float] = []
    now = start
    burst_end = burst_start + burst_duration
    for _ in range(count):
        rate = burst_rate if burst_start <= now < burst_end else base_rate
        now += 1.0 / rate
        times.append(now)
    return times


def mean_rate(arrival_times: List[float]) -> float:
    """Average arrival rate of a time sequence (events/second)."""
    if len(arrival_times) < 2:
        return float(len(arrival_times))
    span = arrival_times[-1] - arrival_times[0]
    if span <= 0.0:
        return float(len(arrival_times))
    return (len(arrival_times) - 1) / span

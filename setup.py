"""Legacy setup shim.

All metadata lives in ``pyproject.toml``; this file only enables
``python setup.py develop`` on offline machines where pip's PEP-660
editable path is unavailable (it needs the ``wheel`` package).
"""

from setuptools import setup

setup()

"""Packaging metadata for the eSPICE reproduction.

The project is pure stdlib at runtime; ``pytest``, ``hypothesis`` and
``pytest-benchmark`` are only needed for the test/benchmark harness
(``extras_require["test"]``).
"""

from setuptools import find_packages, setup

setup(
    name="espice-repro",
    version="1.0.0",
    description=(
        "Reproduction of eSPICE: probabilistic load shedding from input "
        "event streams in CEP (Middleware '19), with a composable "
        "middleware-stage pipeline API"
    ),
    long_description=open("README.md", encoding="utf-8").read(),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    package_data={"repro": ["py.typed"]},
    python_requires=">=3.10",
    install_requires=[],
    entry_points={
        "console_scripts": [
            "repro-serve=repro.serve.cli:main",
            "repro-lint=repro.analysis.cli:main",
        ],
    },
    extras_require={
        "test": ["pytest", "hypothesis", "pytest-benchmark"],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Programming Language :: Python :: 3.10",
        "Programming Language :: Python :: 3.11",
        "Programming Language :: Python :: 3.12",
        "Topic :: System :: Distributed Computing",
    ],
)

#!/usr/bin/env python3
"""Quickstart: eSPICE end to end through the pipeline API, in ~50 lines.

Builds a tiny soccer workload, trains the utility model, overloads the
operator at 40% above its capacity and shows that eSPICE keeps the
latency bound while losing almost no complex events -- compared with a
random shedder that loses half of them.

All wiring comes from ``repro.pipeline``: the builder declares query,
shedding strategy and bounds; ``train``/``deploy``/``simulate`` do the
rest.  No shedder or detector is constructed by hand.

Run:  python examples/quickstart.py
"""

from repro.datasets import SoccerStreamConfig, generate_soccer_stream, split_stream
from repro.pipeline import Pipeline, compare_results
from repro.queries import build_q1

THROUGHPUT = 1000.0  # operator capacity, events/second (virtual time)
OVERLOAD = 1.4  # input rate = 140% of capacity (the paper's R2)
LATENCY_BOUND = 1.0  # seconds


def main() -> None:
    # 1. data: synthetic soccer stream, first half for training
    stream = generate_soccer_stream(SoccerStreamConfig(duration_seconds=2400))
    train, live = split_stream(stream, train_fraction=0.5)

    # 2. query: striker possession followed by any 3 defender events
    query = build_q1(pattern_size=3, window_seconds=15.0)

    # 3. ground truth (what an unconstrained operator would detect):
    #    an unshedded pipeline replayed in event time
    truth = Pipeline.builder().query(query).build().run(live).complex_events
    print(f"ground truth: {len(truth)} complex events")

    # 4. overload the operator, once per shedding strategy (bin size 8
    #    smooths the short training stream, paper §3.6)
    for label in ("espice", "random"):
        pipeline = (
            Pipeline.builder()
            .query(query)
            .shedder(label, f=0.8, seed=1)
            .latency_bound(LATENCY_BOUND)
            .bin_size(8)
            .build()
        )
        pipeline.train(train)
        pipeline.deploy(
            expected_throughput=THROUGHPUT,
            expected_input_rate=OVERLOAD * THROUGHPUT,
        )
        result = pipeline.simulate(
            live, input_rate=OVERLOAD * THROUGHPUT, throughput=THROUGHPUT
        )
        quality = compare_results(truth, result.complex_events)
        latency = result.latency.stats()
        print(
            f"{label:>7}: FN={quality.false_negative_pct:5.1f}%  "
            f"FP={quality.false_positive_pct:5.1f}%  "
            f"dropped={100 * result.operator_stats.drop_ratio():4.1f}%  "
            f"p99 latency={latency.p99 * 1000:5.0f} ms  "
            f"bound violations={latency.violations}"
        )


if __name__ == "__main__":
    main()

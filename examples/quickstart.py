#!/usr/bin/env python3
"""Quickstart: eSPICE end to end in ~60 lines.

Builds a tiny soccer workload, trains the utility model, overloads the
operator at 40% above its capacity and shows that eSPICE keeps the
latency bound while losing almost no complex events -- compared with a
random shedder that loses half of them.

Run:  python examples/quickstart.py
"""

from repro.core import ESpice, ESpiceConfig
from repro.core.overload import OverloadDetector
from repro.datasets import generate_soccer_stream, SoccerStreamConfig, split_stream
from repro.queries import build_q1
from repro.runtime import (
    SimulationConfig,
    compare_results,
    ground_truth,
    measure_mean_memberships,
    simulate,
)
from repro.shedding import RandomShedder

THROUGHPUT = 1000.0  # operator capacity, events/second (virtual time)
OVERLOAD = 1.4  # input rate = 140% of capacity (the paper's R2)
LATENCY_BOUND = 1.0  # seconds


def main() -> None:
    # 1. data: synthetic soccer stream, first half for training
    stream = generate_soccer_stream(SoccerStreamConfig(duration_seconds=2400))
    train, live = split_stream(stream, train_fraction=0.5)

    # 2. query: striker possession followed by any 3 defender events
    query = build_q1(pattern_size=3, window_seconds=15.0)

    # 3. ground truth (what an unconstrained operator would detect)
    truth = ground_truth(query, live)
    print(f"ground truth: {len(truth)} complex events")

    # 4. train eSPICE's utility model on the calm phase (bin size 8
    #    smooths the short training stream, paper §3.6)
    espice = ESpice(query, ESpiceConfig(latency_bound=LATENCY_BOUND, f=0.8, bin_size=8))
    model = espice.train(train)
    print(f"trained: {model}")

    # 5. overload the operator, once per shedding strategy
    sim_config = SimulationConfig(
        input_rate=OVERLOAD * THROUGHPUT,
        throughput=THROUGHPUT,
        latency_bound=LATENCY_BOUND,
        mean_memberships=measure_mean_memberships(query, live),
    )
    for label, shedder in (
        ("eSPICE", espice.build_shedder()),
        ("random", RandomShedder(seed=1)),
    ):
        detector = OverloadDetector(
            latency_bound=LATENCY_BOUND,
            f=0.8,
            reference_size=model.reference_size,
            shedder=shedder,
            fixed_processing_latency=1.0 / THROUGHPUT,
            fixed_input_rate=OVERLOAD * THROUGHPUT,
        )
        result = simulate(
            query,
            live,
            sim_config,
            shedder=shedder,
            detector=detector,
            prime_window_size=model.reference_size,
        )
        quality = compare_results(truth, result.complex_events)
        latency = result.latency.stats()
        print(
            f"{label:>7}: FN={quality.false_negative_pct:5.1f}%  "
            f"FP={quality.false_positive_pct:5.1f}%  "
            f"dropped={100 * result.operator_stats.drop_ratio():4.1f}%  "
            f"p99 latency={latency.p99 * 1000:5.0f} ms  "
            f"bound violations={latency.violations}"
        )


if __name__ == "__main__":
    main()

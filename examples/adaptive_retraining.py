#!/usr/bin/env python3
"""Model retraining when the stream distribution drifts (paper §3.6).

The utility model is only as good as the stream it was trained on.
This example trains on a soccer stream where defenders 1/2 mark the
first striker (and 3/4 the second), then rotates the marking at half
time so a disjoint defender subset takes over.  The stale model still
assigns utility to the *old* markers and sheds the new ones -- quality
collapses -- until ``pipeline.retrain()`` hot-swaps a model fitted on
recent data and restores it (the live shedder keeps serving O(1)
decisions throughout the swap).

To isolate the model's contribution from overload-detector duty
cycles, shedding runs *continuously* here with a fixed drop amount
(20% of each window partition), applied through the operator exactly
as during a real overload.

Run:  python examples/adaptive_retraining.py
"""

from repro.core.partitions import plan_partitions
from repro.datasets import SoccerStreamConfig, generate_soccer_stream
from repro.pipeline import Pipeline, compare_results, ground_truth
from repro.queries import build_q1
from repro.shedding.base import DropCommand

LATENCY_BOUND = 1.0
THROUGHPUT = 1000.0
DROP_FRACTION = 0.2  # x = 20% of the partition size, continuously


def build_pipeline(query) -> Pipeline:
    return (
        Pipeline.builder()
        .query(query)
        .shedder("espice", f=0.8)
        .latency_bound(LATENCY_BOUND)
        .bin_size(8)  # smooths the short training streams (paper §3.6)
        .build()
    )


def evaluate(pipeline: Pipeline, query, live_stream) -> str:
    """Continuous-shedding replay; returns a one-line quality summary.

    A fresh evaluation pipeline is deployed around the (possibly
    hot-swapped) model so every evaluation starts from clean operator
    state; the shedder is activated manually with a fixed drop command
    instead of detector duty cycles.
    """
    truth = ground_truth(query, live_stream)
    model = pipeline.model
    replay = (
        Pipeline.builder()
        .query(query)
        .shedder("espice", f=0.8)
        .latency_bound(LATENCY_BOUND)
        .bin_size(8)
        .model(model)
        .build()
    )
    replay.deploy()
    chain = replay.chains[0]
    plan = plan_partitions(model.reference_size, LATENCY_BOUND * THROUGHPUT, f=0.8)
    chain.shedder.on_drop_command(
        DropCommand(
            x=DROP_FRACTION * plan.partition_size,
            partition_count=plan.partition_count,
            partition_size=plan.partition_size,
        )
    )
    chain.shedder.activate()
    result = replay.run(live_stream)
    quality = compare_results(truth, result.complex_events)
    stats = result.metrics[query.name]["match"]
    return (
        f"FN={quality.false_negative_pct:5.1f}%  "
        f"FP={quality.false_positive_pct:5.1f}%  "
        f"dropped={100 * stats['drop_ratio']:4.1f}%  "
        f"(truth={len(truth)})"
    )


def main() -> None:
    # first half: defenders 1/2 mark STR1, defenders 3/4 mark STR2
    first_half = generate_soccer_stream(
        SoccerStreamConfig(duration_seconds=1800, seed=21, markers_per_striker=2)
    )
    # second half: the marking rotates to defenders 5..8 (drift)
    second_half = generate_soccer_stream(
        SoccerStreamConfig(
            duration_seconds=1800,
            seed=22,
            markers_per_striker=2,
            marker_offset=4,
        )
    )

    query = build_q1(pattern_size=2, window_seconds=15.0)
    pipeline = build_pipeline(query)
    pipeline.train(first_half)

    print("model trained on first half")
    print(f"  first half evaluation   : {evaluate(pipeline, query, first_half)}")
    print(f"  second half, stale model: {evaluate(pipeline, query, second_half)}")

    pipeline.retrain(second_half)  # hot model swap
    print("model retrained on second half")
    print(f"  second half, fresh model: {evaluate(pipeline, query, second_half)}")


if __name__ == "__main__":
    main()

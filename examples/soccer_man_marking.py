#!/usr/bin/env python3
"""Soccer man-marking analytics with a peek inside the utility model.

Reproduces the paper's motivating example (§3): whenever a striker
possesses the ball, his markers produce defend events within a few
seconds -- a correlation between event *type* and *relative window
position*.  This example trains the model and then prints the learned
utility table so you can see the correlation eSPICE discovered: high
utilities for defender types in the early window region (right after
the possession that opened the window), near-zero everywhere else.

Run:  python examples/soccer_man_marking.py
"""

from repro.core.cdt import build_cdt
from repro.datasets import SoccerStreamConfig, generate_soccer_stream, split_stream
from repro.pipeline import Pipeline
from repro.queries import build_q1


def main() -> None:
    config = SoccerStreamConfig(duration_seconds=2400, marking_delay_max=5.0)
    stream = generate_soccer_stream(config)
    train, _live = split_stream(stream, train_fraction=0.8)

    query = build_q1(pattern_size=4, window_seconds=15.0, defenders=config.defenders)
    pipeline = (
        Pipeline.builder()
        .query(query)
        .shedder("espice", f=0.8)
        .latency_bound(1.0)
        .bin_size(16)
        .build()
    )
    model = pipeline.train(train).model
    print(f"model: {model}\n")

    # show each type's utility profile over the window (binned)
    bins = model.table.bins
    print("utility table (rows = event types, columns = window bins):")
    header = "type   " + " ".join(f"b{b:<3}" for b in range(bins))
    print(header)
    for type_name in sorted(model.table.type_ids):
        row = model.table.row(type_name)
        if not any(row):
            continue  # background types: all-zero utility
        cells = " ".join(f"{u:<4}" for u in row)
        print(f"{type_name:<6} {cells}")
    print("(types with all-zero rows -- background players -- omitted)\n")

    # the marking correlation: defenders score high only in the bins
    # right after the window-opening possession
    striker_row = model.table.row("STR1")
    print(f"striker utility at window start: {striker_row[0]}")
    defender_rows = [
        model.table.row(name)
        for name in model.table.type_ids
        if name.startswith("DF")
    ]
    early = max(row[0] for row in defender_rows)
    late = max(row[-1] for row in defender_rows)
    print(f"max defender utility in first bin: {early}, in last bin: {late}")

    # the CDT answers "which threshold drops x events per window?"
    cdt = build_cdt(model.table, model.shares)
    for x in (10, 50, 100):
        threshold = cdt.threshold_for(float(x))
        print(
            f"to drop >= {x:>3} events/window: threshold uth={threshold:>3} "
            f"(CDT({max(threshold, 0)}) = {cdt.value(max(threshold, 0)):.1f})"
        )


if __name__ == "__main__":
    main()

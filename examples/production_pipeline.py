#!/usr/bin/env python3
"""A production-shaped deployment of every moving part.

This example strings together the features a real integration would
use beyond the single experiment loop, all through the
``repro.pipeline`` API:

1. the **textual query language** instead of the builder API,
2. **training + persistence**: train once, save the model to JSON,
   load it into a fresh pipeline via ``.model()``
   (deploy-without-retraining),
3. **multi-query fan-out**: two queries sharing one input stream in a
   single pipeline, with a **custom logging middleware stage** counting
   what flows in,
4. a **window-parallel pipeline** (degree 4) sharing the shedder --
   detections are identical to a sequential run, the paper's
   parallelism-independence claim,
5. **adaptive deployment**: a drift-watching controller wired in with
   ``.adaptive()`` (paper §3.6 future work),
6. a two-stage **operator graph**: man-marking complex events feed a
   downstream "pressing spell" operator that detects bursts of marking,
   and
7. a **sharded cluster deployment**: the same trained model executed
   across real worker processes via ``.distributed()``, with
   coordinated shedding and the cluster snapshot (per-shard
   utilization, queue depths, drop rates) a production dashboard would
   scrape -- not just aggregate recall.

Run:  python examples/production_pipeline.py
"""

import tempfile
from pathlib import Path

from repro.cep.graph import OperatorGraph
from repro.cep.language import parse_query
from repro.core.partitions import plan_partitions
from repro.core.persistence import load_model, save_model
from repro.datasets import SoccerStreamConfig, generate_soccer_stream, split_stream
from repro.pipeline import LoggingStage, Pipeline
from repro.queries import build_q1
from repro.shedding.base import DropCommand


def close_marking(event):
    return event.attr("distance", 99.0) <= 5.0


def main() -> None:
    # -- data -----------------------------------------------------------
    stream = generate_soccer_stream(SoccerStreamConfig(duration_seconds=2400, seed=33))
    train, live = split_stream(stream, train_fraction=0.5)

    # -- 1. the query, in the textual language ---------------------------
    query = parse_query(
        """
        define ManMarking
        from   seq(STR1|STR2; any(2, DF1, DF2, DF3, DF4, DF5, DF6, DF7, DF8))
        within 15 s
        open on STR1|STR2
        select first
        """,
        predicates={f"DF{i}": close_marking for i in range(1, 9)},
    )
    print(f"parsed query: {query.name}, pattern size {query.pattern_size()}")

    # -- 2. train, save, load --------------------------------------------
    trainer = (
        Pipeline.builder()
        .query(query)
        .shedder("espice", f=0.8)
        .latency_bound(1.0)
        .bin_size(8)
        .build()
    )
    model = trainer.train(train).model
    model_path = Path(tempfile.gettempdir()) / "espice_model.json"
    save_model(model, model_path)
    deployed = load_model(model_path)
    print(f"trained {model}, persisted to {model_path.name} and reloaded")

    # -- 3. multi-query fan-out with custom middleware -------------------
    tight = build_q1(pattern_size=2, window_seconds=15.0)
    fanout = (
        Pipeline.builder()
        .query(query)
        .query(tight)
        .stage(lambda: LoggingStage())  # factory: one instance per chain
        .build()
    )
    fanned = fanout.run(live)
    logged = fanout.metrics()[query.name]["logging"]["seen"]
    print(
        f"fan-out run: {fanned.totals()} from one stream "
        f"({logged} events through the logging middleware)"
    )

    # -- 4. window-parallel pipeline, shared persisted model -------------
    def shedding_pipeline(degree: int) -> Pipeline:
        builder = (
            Pipeline.builder()
            .query(query)
            .shedder("espice", f=0.8)
            .latency_bound(1.0)
            .bin_size(8)
            .model(deployed)
        )
        if degree > 1:
            builder.parallel(degree)
        pipeline = builder.build()
        pipeline.deploy()
        chain = pipeline.chains[0]
        plan = plan_partitions(deployed.reference_size, qmax=1000.0, f=0.8)
        chain.shedder.on_drop_command(
            DropCommand(
                x=0.15 * plan.partition_size,
                partition_count=plan.partition_count,
                partition_size=plan.partition_size,
            )
        )
        chain.shedder.activate()
        return pipeline

    sequential_out = shedding_pipeline(1).run(live).complex_events
    parallel = shedding_pipeline(4)
    parallel_out = parallel.run(live).complex_events
    same = [c.key for c in sequential_out] == [c.key for c in parallel_out]
    imbalance = parallel.metrics()[query.name]["match"]["load_imbalance"]
    print(
        f"degree-4 parallel run: {len(parallel_out)} complex events, "
        f"identical to sequential: {same} "
        f"(imbalance {imbalance:.2f})"
    )

    # -- 5. adaptive deployment (drift detection wired in) ---------------
    adaptive = (
        Pipeline.builder()
        .query(query)
        .shedder("espice", f=0.8)
        .latency_bound(1.0)
        .bin_size(8)
        .model(deployed)
        .adaptive(min_training_windows=40)
        .build()
    )
    adaptive.deploy()
    adaptive.run(live)
    controller = adaptive.chains[0].controller
    status = controller.last_status
    print(
        f"adaptive run: {controller.retrain_count} automatic retrains, "
        f"last drift check: "
        f"{status.reason if status else 'n/a'}"
    )

    # -- 6. two-stage operator graph --------------------------------------
    pressing = parse_query(
        # three man-marking detections within 90 s = a pressing spell
        "define PressingSpell from seq(ManMarking; ManMarking; ManMarking) "
        "within 90 s open on ManMarking"
    )
    graph = OperatorGraph()
    graph.add_operator("marking", query)
    graph.add_operator("pressing", pressing, upstream=["marking"])
    run = graph.run(live)
    totals = run.totals()
    print(
        f"operator graph: {totals['marking']} marking events -> "
        f"{totals['pressing']} pressing spells"
    )

    # -- 7. sharded cluster with coordinated shedding ---------------------
    sharded = (
        Pipeline.builder()
        .query(query)
        .shedder("espice", f=0.8)
        .latency_bound(1.0)
        .bin_size(8)
        .model(deployed)
        .distributed(shards=2, router="round-robin", batch_size=32)
        .build()
    )
    sharded.deploy()
    plan = plan_partitions(deployed.reference_size, qmax=1000.0, f=0.8)
    with sharded:
        sharded.broadcast_shedding(
            DropCommand(
                x=0.15 * plan.partition_size,
                partition_count=plan.partition_count,
                partition_size=plan.partition_size,
            )
        )
        clustered = sharded.run(live)
    same = [c.key for c in clustered.complex_events] == [
        c.key for c in sequential_out
    ]
    snapshot = clustered.snapshot
    print(
        f"sharded run (2 workers): {len(clustered.complex_events)} complex "
        f"events at {clustered.events_per_second:.0f} events/s, "
        f"identical to the sequential shedding run: {same}"
    )
    print(
        "cluster snapshot: "
        f"windows={snapshot.windows_dispatched[query.name]} "
        f"router={snapshot.router['policy']} "
        f"avg_batch={snapshot.transport['avg_batch']} "
        f"drop_rate={snapshot.drop_rate():.2f} "
        f"pending={snapshot.total_pending_events}"
    )
    for shard in snapshot.shards:
        print(
            f"  shard {shard.shard_id}: windows={shard.windows} "
            f"utilization={shard.utilization:.0%} "
            f"queue_depth={shard.pending_windows} "
            f"drop_rate={shard.drop_rate:.2f} "
            f"shedding={shard.shedding_active[query.name]}"
        )
    drift = snapshot.drift[query.name]
    print(
        f"  drift: match_rate={drift.match_rate:.2f} vs "
        f"trained={drift.trained_match_rate:.2f} -> {drift.reason}"
    )


if __name__ == "__main__":
    main()

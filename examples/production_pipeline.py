#!/usr/bin/env python3
"""A production-shaped deployment of every moving part.

This example strings together the features a real integration would
use beyond the single experiment loop:

1. the **textual query language** instead of the builder API,
2. **training + persistence**: train once, save the model to JSON,
   load it into a fresh shedder (deploy-without-retraining),
3. a **window-parallel operator** (degree 4) sharing the shedder --
   detections are identical to a sequential run, the paper's
   parallelism-independence claim,
4. a **drift detector** watching live windows and triggering retraining
   (paper §3.6 future work), and
5. a two-stage **operator graph**: man-marking complex events feed a
   downstream "pressing spell" operator that detects bursts of marking.

Run:  python examples/production_pipeline.py
"""

import tempfile
from pathlib import Path

from repro.cep.graph import OperatorGraph
from repro.cep.language import parse_query
from repro.cep.operator.operator import CEPOperator
from repro.cep.parallel import WindowParallelOperator
from repro.core import ESpice, ESpiceConfig
from repro.core.drift import DriftDetector
from repro.core.partitions import plan_partitions
from repro.core.persistence import load_model, save_model
from repro.core.shedder import ESpiceShedder
from repro.datasets import SoccerStreamConfig, generate_soccer_stream, split_stream
from repro.shedding.base import DropCommand


def close_marking(event):
    return event.attr("distance", 99.0) <= 5.0


def main() -> None:
    # -- data -----------------------------------------------------------
    stream = generate_soccer_stream(SoccerStreamConfig(duration_seconds=2400, seed=33))
    train, live = split_stream(stream, train_fraction=0.5)

    # -- 1. the query, in the textual language ---------------------------
    query = parse_query(
        """
        define ManMarking
        from   seq(STR1|STR2; any(2, DF1, DF2, DF3, DF4, DF5, DF6, DF7, DF8))
        within 15 s
        open on STR1|STR2
        select first
        """,
        predicates={f"DF{i}": close_marking for i in range(1, 9)},
    )
    print(f"parsed query: {query.name}, pattern size {query.pattern_size()}")

    # -- 2. train, save, load --------------------------------------------
    espice = ESpice(query, ESpiceConfig(latency_bound=1.0, f=0.8, bin_size=8))
    model = espice.train(train)
    model_path = Path(tempfile.gettempdir()) / "espice_model.json"
    save_model(model, model_path)
    deployed = load_model(model_path)
    print(f"trained {model}, persisted to {model_path.name} and reloaded")

    shedder = ESpiceShedder(deployed)
    plan = plan_partitions(deployed.reference_size, qmax=1000.0, f=0.8)
    shedder.on_drop_command(
        DropCommand(
            x=0.15 * plan.partition_size,
            partition_count=plan.partition_count,
            partition_size=plan.partition_size,
        )
    )
    shedder.activate()

    # -- 3. window-parallel operator, shared shedder ---------------------
    sequential = CEPOperator(query, shedder=shedder)
    sequential.prime_window_size(deployed.reference_size, weight=10)
    sequential_out = sequential.detect_all(live)
    shedder.reset_counters()

    parallel = WindowParallelOperator(query, degree=4, shedder=shedder)
    parallel.prime_window_size(deployed.reference_size, weight=10)
    parallel_out = parallel.detect_all(live)
    same = [c.key for c in sequential_out] == [c.key for c in parallel_out]
    print(
        f"degree-4 parallel run: {len(parallel_out)} complex events, "
        f"identical to sequential: {same} "
        f"(imbalance {parallel.load_imbalance():.2f})"
    )

    # -- 4. drift detection ----------------------------------------------
    monitor = DriftDetector(deployed, min_windows=20)
    operator = CEPOperator(query)  # unshedded shadow run feeds the monitor
    operator.add_window_listener(monitor.observe)
    operator.detect_all(live)
    status = monitor.check()
    print(
        f"drift check after {status.windows_seen} windows: "
        f"hit rate {status.hit_rate:.2f}, drifted={status.drifted} ({status.reason})"
    )

    # -- 5. two-stage operator graph --------------------------------------
    pressing = parse_query(
        # three man-marking detections within 90 s = a pressing spell
        "define PressingSpell from seq(ManMarking; ManMarking; ManMarking) "
        "within 90 s open on ManMarking"
    )
    graph = OperatorGraph()
    graph.add_operator("marking", query)
    graph.add_operator("pressing", pressing, upstream=["marking"])
    run = graph.run(live)
    totals = run.totals()
    print(
        f"operator graph: {totals['marking']} marking events -> "
        f"{totals['pressing']} pressing spells"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""The network front door, end to end: serve, ingest, feel backpressure.

``repro.serve`` puts a built pipeline behind a real asyncio TCP server.
This example runs the whole loop in one process:

1. build and serve a soccer Q1 pipeline behind ``PipelineServer`` with
   a middleware chain (shared-secret auth + request logging),
2. ingest the live stream through ``ServeClient`` over the framed
   protocol, batch by batch, and watch the acks,
3. deliberately overrun a *tiny* ingest queue to read a structured
   ``overloaded`` response -- the shedding/backpressure decision on the
   wire, with ``retry_after`` and the per-query drop-rate snapshot --
   then let the client's retry loop deliver the same events anyway,
4. drain gracefully and compare the served detections with an
   in-process ``run()`` of the same stream: bit-identical, same order.

Run:  python examples/serve_demo.py
"""

import asyncio

from repro.datasets import SoccerStreamConfig, generate_soccer_stream, split_stream
from repro.pipeline import Pipeline
from repro.queries import build_q1
from repro.serve import (
    PipelineServer,
    ServeClient,
    ServeConfig,
    SharedSecretAuth,
    RequestLogMiddleware,
)

SECRET = "demo-secret"
CLIENT_BATCH = 64


def build_pipeline() -> Pipeline:
    return (
        Pipeline.builder()
        .query(build_q1(pattern_size=2, window_seconds=15.0))
        .batch(16)
        .build()
    )


async def well_behaved_session(live) -> None:
    """Plain ingest through the middleware chain, then graceful drain."""
    print("=== 1. serve + ingest ===")
    pipeline = build_pipeline()
    served = []  # every detection, live-streamed as windows close
    pipeline.chains[0].emit.subscribe(lambda c: served.append(c.key))
    server = PipelineServer(
        pipeline,
        middleware=[SharedSecretAuth(SECRET), RequestLogMiddleware()],
    )
    await server.start()
    print(f"serving on {server.config.host}:{server.port}")

    async with await ServeClient.connect(
        server.config.host, server.port, auth=SECRET
    ) as client:
        assert await client.ping()

        # wrong secret first: the middleware rejects before the queue
        async with await ServeClient.connect(
            server.config.host, server.port, auth="wrong"
        ) as intruder:
            denied = await intruder.ingest(live[:4])
            print(f"bad secret   -> {denied}")

        report = await client.ingest_stream(live, batch_events=CLIENT_BATCH)
        print(
            f"good secret  -> {report.events_sent} events in "
            f"{report.batches_sent} batches, {len(report.rejected)} rejected"
        )

        wire = await client.metrics()
        print(
            f"server saw   -> {wire['wire']['frames_in']} frames, "
            f"{wire['ingest']['events_fed']} events fed, "
            f"{wire['detections']['total']} detections so far"
        )

    await server.stop()  # drain queue, flush still-open windows

    reference = [
        c.key for c in build_pipeline().run(live).complex_events
    ]
    assert served == reference
    print(
        f"graceful stop -> {len(served)} detections, "
        "bit-identical (and same order) as in-process run()\n"
    )


async def overloaded_session(live) -> None:
    """Overrun a tiny queue to read the backpressure response."""
    print("=== 2. backpressure on the wire ===")
    server = PipelineServer(
        build_pipeline(),
        # 32-event queue and a patient retry floor: overflows are easy
        config=ServeConfig(max_pending_events=32, retry_after_min=0.01),
    )
    await server.start()

    async with await ServeClient.connect(
        server.config.host, server.port
    ) as client:
        # one oversized request: more events than the queue can admit.
        # Admission is all-or-nothing, so the server rejects the batch
        # with its current congestion snapshot instead of buffering.
        response = await client.ingest(live[:256])
        print(f"256-event batch vs 32-slot queue -> {response}")
        assert response["error"] == "overloaded"
        assert response["accepted"] == 0

        # the client's retry loop honours retry_after and re-sends the
        # same batch until the consumer drains the queue: no event lost
        report = await client.ingest_stream(live, batch_events=16)
        print(
            f"retrying client -> {report.events_sent} events delivered, "
            f"{report.overloaded_responses} overloaded responses, "
            f"{report.retries} retries, {len(report.rejected)} lost"
        )
        assert report.events_sent == len(live)
        assert not report.rejected

    await server.stop()
    print("bounded queue + client retries: slower, never wrong\n")


def main() -> None:
    stream = generate_soccer_stream(SoccerStreamConfig(duration_seconds=600))
    _train, live = split_stream(stream, train_fraction=0.5)
    asyncio.run(well_behaved_session(live))
    asyncio.run(overloaded_session(live))


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Stock-market monitoring: Q2-style influence detection under overload.

The scenario from the paper's evaluation: a stream of intraday quotes
where moves of leading blue chips are echoed by correlated followers.
The query detects a leading rise followed by any ``n`` follower rises
inside a sliding time window.  We compare eSPICE against the BL
baseline at both of the paper's overload levels (R1 = +20%, R2 = +40%)
and print a Fig. 5c-style table.

Uses the experiment-protocol surface (``run_quality_point``), which is
itself built on ``repro.pipeline``: each point trains/warms a pipeline
for the named strategy and replays the evaluation stream through it.

Run:  python examples/stock_market.py
"""

from repro.datasets import StockStreamConfig, generate_stock_stream, split_stream
from repro.experiments.common import ExperimentConfig, run_quality_point
from repro.queries import build_q2
from repro.runtime import ground_truth

SYMBOLS = 50
PATTERN_SIZES = (5, 10, 20)
RATES = (1.2, 1.4)


def main() -> None:
    stream = generate_stock_stream(
        StockStreamConfig(symbols=SYMBOLS, ticks=400, follow_probability=0.75)
    )
    train, live = split_stream(stream, train_fraction=0.5)
    config = ExperimentConfig()

    print(f"{'n':>4} {'truth':>6}", end="")
    for strategy in ("espice", "bl"):
        for rate in RATES:
            print(f"  {strategy}@R{rate:.1f} FN%", end="")
    print()

    for n in PATTERN_SIZES:
        query = build_q2(pattern_size=n, window_seconds=240.0, symbols=SYMBOLS)
        truth = ground_truth(query, live)
        print(f"{n:>4} {len(truth):>6}", end="")
        for strategy in ("espice", "bl"):
            for rate in RATES:
                outcome = run_quality_point(
                    query, train, live, strategy, rate, config, truth
                )
                print(f"  {outcome.fn_pct:>13.1f}", end="")
        print()

    print(
        "\nExpected shape (paper Fig. 5c): eSPICE is an order of magnitude\n"
        "below BL at every pattern size, and both degrade as n and the\n"
        "input rate grow."
    )


if __name__ == "__main__":
    main()

"""Unit tests for the synthetic stock stream (repro.datasets.stock)."""

import pytest

from repro.datasets.stock import (
    StockStreamConfig,
    direction_counts,
    falling,
    generate_stock_stream,
    rising,
    symbol_name,
)


def small_config(**overrides):
    defaults = dict(symbols=10, leaders=2, ticks=50, seed=1)
    defaults.update(overrides)
    return StockStreamConfig(**defaults)


class TestGeneration:
    def test_event_count(self):
        stream = generate_stock_stream(small_config())
        assert len(stream) == 10 * 50

    def test_every_symbol_quotes_every_tick(self):
        stream = generate_stock_stream(small_config(ticks=3))
        names = [e.event_type for e in stream]
        for i in range(10):
            assert names.count(symbol_name(i)) == 3

    def test_deterministic_under_seed(self):
        a = generate_stock_stream(small_config(seed=9))
        b = generate_stock_stream(small_config(seed=9))
        assert [(e.event_type, e.attr("change")) for e in a] == [
            (e.event_type, e.attr("change")) for e in b
        ]

    def test_different_seeds_differ(self):
        a = generate_stock_stream(small_config(seed=1))
        b = generate_stock_stream(small_config(seed=2))
        assert [e.attr("change") for e in a] != [e.attr("change") for e in b]

    def test_timestamps_monotone(self):
        stream = generate_stock_stream(small_config())
        times = [e.timestamp for e in stream]
        assert times == sorted(times)

    def test_attrs_schema(self):
        event = generate_stock_stream(small_config())[0]
        assert event.attr("price") > 0
        assert event.attr("direction") in ("rise", "fall")
        change = event.attr("change")
        assert (change > 0) == (event.attr("direction") == "rise")

    def test_prices_stay_positive(self):
        stream = generate_stock_stream(small_config(ticks=200))
        assert all(e.attr("price") >= 1.0 for e in stream)


class TestCorrelation:
    def test_followers_echo_leader(self):
        config = small_config(
            ticks=300, follow_probability=0.95, lag_ticks=1, seed=4
        )
        stream = generate_stock_stream(config)
        by_tick = {}
        for event in stream:
            tick = int(event.timestamp // config.tick_seconds)
            by_tick.setdefault(tick, {})[event.event_type] = event.attr("direction")
        # follower S2 follows leader S0 (2 % 2 == 0) with lag 1
        agree = total = 0
        for tick in range(1, 300):
            leader_dir = by_tick[tick - 1][symbol_name(0)]
            follower_dir = by_tick[tick][symbol_name(2)]
            agree += leader_dir == follower_dir
            total += 1
        assert agree / total > 0.8

    def test_no_follow_probability_uncorrelated(self):
        config = small_config(ticks=300, follow_probability=0.0, seed=4)
        stream = generate_stock_stream(config)
        counts = direction_counts(stream)
        ratio = counts["rise"] / (counts["rise"] + counts["fall"])
        assert 0.4 < ratio < 0.6


class TestCascades:
    def test_cascade_symbols_fire_in_order(self):
        config = small_config(
            symbols=12,
            leaders=2,
            ticks=100,
            cascade_symbols=(5, 6, 7),
            cascade_probability=1.0,
            seed=8,
        )
        stream = generate_stock_stream(config)
        by_tick = {}
        for event in stream:
            tick = int(event.timestamp // config.tick_seconds)
            by_tick.setdefault(tick, {})[event.event_type] = event.attr("direction")
        hits = 0
        for tick in range(2, 100):
            lead = by_tick[tick - 1][symbol_name(0)]
            if all(by_tick[tick][symbol_name(i)] == lead for i in (5, 6, 7)):
                hits += 1
        assert hits / 98 > 0.9

    def test_cascade_must_reference_followers(self):
        with pytest.raises(ValueError):
            generate_stock_stream(small_config(cascade_symbols=(0,)))


class TestValidationAndHelpers:
    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            generate_stock_stream(small_config(symbols=0))
        with pytest.raises(ValueError):
            generate_stock_stream(small_config(leaders=0))
        with pytest.raises(ValueError):
            generate_stock_stream(small_config(leaders=11))

    def test_name_helpers(self):
        config = small_config()
        assert config.leader_names() == ["S0", "S1"]
        assert len(config.follower_names()) == 8
        assert small_config(cascade_symbols=(7, 5)).cascade_names() == ["S5", "S7"]

    def test_predicates(self):
        stream = generate_stock_stream(small_config())
        for event in list(stream)[:20]:
            assert rising(event) != falling(event)

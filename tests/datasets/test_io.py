"""Unit tests for stream persistence and splitting (repro.datasets.io)."""

import pytest

from repro.cep.events import Event, EventStream, StreamBuilder
from repro.datasets.io import load_stream_csv, save_stream_csv, split_stream


def sample_stream():
    builder = StreamBuilder(rate=4.0)
    builder.emit("A", price=1.5, direction="rise")
    builder.emit("B", price=2.0, direction="fall")
    builder.emit("A", note="hello world")
    return builder.stream


class TestCsvRoundtrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        stream = sample_stream()
        path = tmp_path / "stream.csv"
        save_stream_csv(stream, path)
        loaded = load_stream_csv(path)
        assert len(loaded) == len(stream)
        for original, restored in zip(stream, loaded):
            assert restored.event_type == original.event_type
            assert restored.seq == original.seq
            assert restored.timestamp == original.timestamp
            assert restored.attrs == original.attrs

    def test_roundtrip_empty_stream(self, tmp_path):
        path = tmp_path / "empty.csv"
        save_stream_csv(EventStream(), path)
        assert len(load_stream_csv(path)) == 0

    def test_float_precision_preserved(self, tmp_path):
        stream = EventStream([Event("A", 0, 0.1234567890123)])
        path = tmp_path / "precise.csv"
        save_stream_csv(stream, path)
        assert load_stream_csv(path)[0].timestamp == 0.1234567890123

    def test_rejects_non_stream_csv(self, tmp_path):
        path = tmp_path / "bogus.csv"
        path.write_text("foo,bar\n1,2\n")
        with pytest.raises(ValueError):
            load_stream_csv(path)

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.csv"
        path.write_text("")
        with pytest.raises(ValueError):
            load_stream_csv(path)

    def test_non_ascii_types_and_attrs_roundtrip(self, tmp_path):
        stream = EventStream(
            [
                Event(
                    "tête",
                    0,
                    0.5,
                    attrs={"spieler": "Müller", "città": "København"},
                ),
                Event("ψ", 1, 1.0, attrs={"λ": 2.5, "emoji": "⚽"}),
            ]
        )
        path = tmp_path / "unicode.csv"
        save_stream_csv(stream, path)
        loaded = load_stream_csv(path)
        assert [e.event_type for e in loaded] == ["tête", "ψ"]
        assert loaded[0].attrs == {"spieler": "Müller", "città": "København"}
        assert loaded[1].attrs == {"λ": 2.5, "emoji": "⚽"}


class TestSplitStream:
    def test_split_sizes(self):
        stream = EventStream(Event("A", i, float(i)) for i in range(10))
        train, test = split_stream(stream, 0.7)
        assert len(train) == 7
        assert len(test) == 3

    def test_split_preserves_order_and_seq(self):
        stream = EventStream(Event("A", i, float(i)) for i in range(10))
        train, test = split_stream(stream, 0.5)
        assert [e.seq for e in train] == list(range(5))
        assert [e.seq for e in test] == list(range(5, 10))

    def test_invalid_fraction(self):
        stream = EventStream([Event("A", 0, 0.0)])
        for fraction in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                split_stream(stream, fraction)

    def test_split_is_a_partition_for_any_fraction(self):
        """No event lost, duplicated, or reordered at any cut point."""
        stream = EventStream(Event("A", i, float(i)) for i in range(7))
        for numerator in range(1, 100):
            train, test = split_stream(stream, numerator / 100.0)
            combined = [e.seq for e in train] + [e.seq for e in test]
            assert combined == list(range(7)), f"fraction={numerator}/100"

    def test_boundary_fractions_truncate_not_round(self):
        """The cut is floor(len * fraction): just below an integer
        boundary the extra event stays in the evaluation part."""
        stream = EventStream(Event("A", i, float(i)) for i in range(10))
        train_low, _ = split_stream(stream, 0.69999)
        train_exact, _ = split_stream(stream, 0.7)
        assert len(train_low) == 6
        assert len(train_exact) == 7

    def test_tiny_fraction_of_tiny_stream_gives_empty_train(self):
        stream = EventStream([Event("A", 0, 0.0), Event("B", 1, 1.0)])
        train, test = split_stream(stream, 0.25)
        assert len(train) == 0
        assert [e.seq for e in test] == [0, 1]

    def test_split_empty_stream(self):
        train, test = split_stream(EventStream(), 0.5)
        assert len(train) == 0
        assert len(test) == 0

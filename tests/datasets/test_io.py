"""Unit tests for stream persistence and splitting (repro.datasets.io)."""

import pytest

from repro.cep.events import Event, EventStream, StreamBuilder
from repro.datasets.io import load_stream_csv, save_stream_csv, split_stream


def sample_stream():
    builder = StreamBuilder(rate=4.0)
    builder.emit("A", price=1.5, direction="rise")
    builder.emit("B", price=2.0, direction="fall")
    builder.emit("A", note="hello world")
    return builder.stream


class TestCsvRoundtrip:
    def test_roundtrip_preserves_everything(self, tmp_path):
        stream = sample_stream()
        path = tmp_path / "stream.csv"
        save_stream_csv(stream, path)
        loaded = load_stream_csv(path)
        assert len(loaded) == len(stream)
        for original, restored in zip(stream, loaded):
            assert restored.event_type == original.event_type
            assert restored.seq == original.seq
            assert restored.timestamp == original.timestamp
            assert restored.attrs == original.attrs

    def test_roundtrip_empty_stream(self, tmp_path):
        path = tmp_path / "empty.csv"
        save_stream_csv(EventStream(), path)
        assert len(load_stream_csv(path)) == 0

    def test_float_precision_preserved(self, tmp_path):
        stream = EventStream([Event("A", 0, 0.1234567890123)])
        path = tmp_path / "precise.csv"
        save_stream_csv(stream, path)
        assert load_stream_csv(path)[0].timestamp == 0.1234567890123

    def test_rejects_non_stream_csv(self, tmp_path):
        path = tmp_path / "bogus.csv"
        path.write_text("foo,bar\n1,2\n")
        with pytest.raises(ValueError):
            load_stream_csv(path)


class TestSplitStream:
    def test_split_sizes(self):
        stream = EventStream(Event("A", i, float(i)) for i in range(10))
        train, test = split_stream(stream, 0.7)
        assert len(train) == 7
        assert len(test) == 3

    def test_split_preserves_order_and_seq(self):
        stream = EventStream(Event("A", i, float(i)) for i in range(10))
        train, test = split_stream(stream, 0.5)
        assert [e.seq for e in train] == list(range(5))
        assert [e.seq for e in test] == list(range(5, 10))

    def test_invalid_fraction(self):
        stream = EventStream([Event("A", 0, 0.0)])
        for fraction in (0.0, 1.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                split_stream(stream, fraction)

"""Unit tests for the synthetic soccer stream (repro.datasets.soccer)."""

import pytest

from repro.datasets.soccer import (
    STRIKER_TYPES,
    SoccerStreamConfig,
    defender_name,
    generate_soccer_stream,
    is_possession,
)


def small_config(**overrides):
    defaults = dict(duration_seconds=300.0, events_per_second=10.0, seed=5)
    defaults.update(overrides)
    return SoccerStreamConfig(**defaults)


class TestGeneration:
    def test_rate_approximate(self):
        config = small_config()
        stream = generate_soccer_stream(config)
        expected = config.duration_seconds * config.events_per_second
        assert len(stream) == pytest.approx(expected, rel=0.1)

    def test_deterministic_under_seed(self):
        a = generate_soccer_stream(small_config())
        b = generate_soccer_stream(small_config())
        assert [(e.event_type, e.timestamp) for e in a] == [
            (e.event_type, e.timestamp) for e in b
        ]

    def test_timestamps_monotone_and_bounded(self):
        config = small_config()
        stream = generate_soccer_stream(config)
        times = [e.timestamp for e in stream]
        assert times == sorted(times)
        assert times[-1] < config.duration_seconds

    def test_contains_all_event_kinds(self):
        stream = generate_soccer_stream(small_config())
        kinds = {e.event_type[:2] for e in stream}
        assert "ST" in kinds and "DF" in kinds and "PL" in kinds

    def test_attrs_schema(self):
        event = generate_soccer_stream(small_config())[0]
        assert 0 <= event.attr("x") <= 105
        assert 0 <= event.attr("y") <= 68
        assert event.attr("velocity") >= 0
        assert event.attr("distance") > 0


class TestMarkingCorrelation:
    def test_markers_react_within_delay(self):
        config = small_config(
            duration_seconds=600.0,
            marking_probability=1.0,
            possession_interval=20.0,
        )
        stream = generate_soccer_stream(config)
        events = list(stream)
        reactions = 0
        possessions = 0
        for i, event in enumerate(events):
            if not is_possession(event):
                continue
            possessions += 1
            markers = set(config.markers_of(event.event_type))
            window_end = event.timestamp + config.marking_delay_max + 0.1
            seen = {
                e.event_type
                for e in events[i:]
                if e.timestamp <= window_end
                and e.event_type in markers
                and e.attr("distance") <= 5.0
            }
            if seen == markers:
                reactions += 1
        assert possessions > 0
        assert reactions / possessions > 0.8  # overlapping possessions allowed

    def test_marking_events_are_close(self):
        # distance attribute separates reactions from roaming updates
        config = small_config(marking_probability=1.0)
        stream = generate_soccer_stream(config)
        distances = [e.attr("distance") for e in stream if e.event_type.startswith("DF")]
        close = sum(1 for d in distances if d <= 5.0)
        far = sum(1 for d in distances if d > 5.0)
        assert close > 0 and far > 0

    def test_markers_of_assignment(self):
        config = small_config(defenders=8, markers_per_striker=4)
        assert config.markers_of("STR1") == ["DF1", "DF2", "DF3", "DF4"]
        assert config.markers_of("STR2") == ["DF5", "DF6", "DF7", "DF8"]

    def test_marker_offset_rotates(self):
        config = small_config(defenders=8, markers_per_striker=2, marker_offset=4)
        assert config.markers_of("STR1") == ["DF5", "DF6"]
        assert config.markers_of("STR2") == ["DF7", "DF8"]

    def test_markers_wrap(self):
        config = small_config(defenders=3, markers_per_striker=2)
        assert config.markers_of("STR2") == ["DF3", "DF1"]


class TestValidationAndHelpers:
    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            generate_soccer_stream(small_config(defenders=0))
        with pytest.raises(ValueError):
            generate_soccer_stream(small_config(markers_per_striker=0))
        with pytest.raises(ValueError):
            generate_soccer_stream(small_config(markers_per_striker=99))
        with pytest.raises(ValueError):
            generate_soccer_stream(
                small_config(marking_delay_min=5.0, marking_delay_max=5.0)
            )

    def test_markers_of_unknown_striker(self):
        with pytest.raises(ValueError):
            small_config().markers_of("GOALIE")

    def test_defender_names(self):
        config = small_config(defenders=3)
        assert config.defender_names() == ["DF1", "DF2", "DF3"]
        assert defender_name(7) == "DF7"

    def test_is_possession(self):
        stream = generate_soccer_stream(small_config())
        for event in stream:
            assert is_possession(event) == (event.event_type in STRIKER_TYPES)

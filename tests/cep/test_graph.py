"""Unit tests for operator graphs (repro.cep.graph)."""

import pytest

from repro.cep.events import ComplexEvent, Event, EventStream, StreamBuilder
from repro.cep.graph import OperatorGraph, complex_to_event
from repro.cep.patterns import seq, spec
from repro.cep.patterns.query import Query
from repro.cep.windows import CountSlidingWindows, PredicateWindows


def tumbling_query(name, first, second, size=4):
    return Query(
        name=name,
        pattern=seq(name, spec(first), spec(second)),
        window_factory=lambda: CountSlidingWindows(size),
    )


def source_stream():
    builder = StreamBuilder(rate=1.0)
    for _ in range(6):
        builder.emit_many(["A", "B", "X", "X"])
    return builder.stream


class TestComplexToEvent:
    def test_materialisation(self):
        constituents = (Event("A", 3, 1.0), Event("B", 7, 2.5))
        cplx = ComplexEvent("found_ab", 9, constituents, detection_time=2.5)
        event = complex_to_event(cplx, seq=0)
        assert event.event_type == "found_ab"
        assert event.timestamp == 2.5
        assert event.attr("window_id") == 9
        assert event.attr("constituents") == [3, 7]

    def test_falls_back_to_last_constituent_time(self):
        cplx = ComplexEvent("p", 0, (Event("A", 1, 4.0),))
        assert complex_to_event(cplx, 0).timestamp == 4.0


class TestGraphConstruction:
    def test_duplicate_names_rejected(self):
        graph = OperatorGraph()
        graph.add_operator("a", tumbling_query("a", "A", "B"))
        with pytest.raises(ValueError):
            graph.add_operator("a", tumbling_query("a", "A", "B"))

    def test_unknown_upstream_rejected(self):
        graph = OperatorGraph()
        with pytest.raises(ValueError):
            graph.add_operator("a", tumbling_query("a", "A", "B"), upstream=["ghost"])

    def test_topological_order_is_insertion_order(self):
        graph = OperatorGraph()
        graph.add_operator("a", tumbling_query("a", "A", "B"))
        graph.add_operator("b", tumbling_query("b", "a", "a"), upstream=["a"])
        assert graph.topological_order() == ["a", "b"]


class TestSingleStage:
    def test_matches_plain_operator(self):
        from repro.cep.operator.operator import CEPOperator

        stream = source_stream()
        query = tumbling_query("q", "A", "B")
        graph = OperatorGraph()
        graph.add_operator("q", query)
        run = graph.run(stream)
        direct = CEPOperator(tumbling_query("q", "A", "B")).detect_all(stream)
        assert [c.key for c in run.complex_events("q")] == [c.key for c in direct]


class TestMultiStage:
    def test_downstream_consumes_upstream_detections(self):
        stream = source_stream()  # 6 windows, each detects one "stage1"
        stage1 = tumbling_query("stage1", "A", "B")
        stage2 = Query(
            name="stage2",
            pattern=seq("stage2", spec("stage1"), spec("stage1")),
            window_factory=lambda: CountSlidingWindows(2),
        )
        graph = OperatorGraph()
        graph.add_operator("first", stage1)
        graph.add_operator("second", stage2, upstream=["first"])
        run = graph.run(stream)
        assert len(run.complex_events("first")) == 6
        assert len(run.complex_events("second")) == 3  # 6 events, tumbling pairs
        assert run.totals() == {"first": 6, "second": 3}

    def test_fanin_merges_source_and_operator(self):
        # downstream sees raw X events AND stage1 detections
        stream = source_stream()
        stage1 = tumbling_query("stage1", "A", "B")
        fanin = Query(
            name="fanin",
            pattern=seq("fanin", spec("stage1"), spec("X")),
            window_factory=lambda: PredicateWindows(
                lambda e: e.event_type == "stage1", extent_seconds=10.0
            ),
        )
        graph = OperatorGraph()
        graph.add_operator("s1", stage1)
        graph.add_operator("f", fanin, upstream=["s1", OperatorGraph.SOURCE])
        run = graph.run(stream)
        assert len(run.complex_events("f")) > 0

    def test_transform_node_filters(self):
        stream = source_stream()
        graph = OperatorGraph()
        graph.add_transform(
            "only_ab", lambda e: e if e.event_type in ("A", "B") else None
        )
        graph.add_operator(
            "q", tumbling_query("q", "A", "B", size=2), upstream=["only_ab"]
        )
        run = graph.run(stream)
        assert all(e.event_type in ("A", "B") for e in run.output_events("only_ab"))
        assert len(run.complex_events("q")) == 6

    def test_rerun_resets_state(self):
        stream = source_stream()
        graph = OperatorGraph()
        graph.add_operator("q", tumbling_query("q", "A", "B"))
        first = graph.run(stream).totals()
        second = graph.run(stream).totals()
        assert first == second


class TestSheddingInGraph:
    def test_per_node_shedder(self):
        from repro.shedding.base import LoadShedder

        class DropAll(LoadShedder):
            def on_drop_command(self, command):
                pass

            def _decide(self, event, position, predicted_ws):
                return True

        shedder = DropAll()
        shedder.activate()
        graph = OperatorGraph()
        graph.add_operator("q", tumbling_query("q", "A", "B"), shedder=shedder)
        run = graph.run(source_stream())
        assert run.complex_events("q") == []

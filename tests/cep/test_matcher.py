"""Unit tests for the pattern matcher (repro.cep.patterns.matcher).

Includes the paper's running example from §2/§2.1: the window
``B4, B3, A2, A1`` (stream order ``A1, A2, B3, B4``) under the four
selection/consumption combinations.
"""

import pytest

from repro.cep.events import Event
from repro.cep.patterns.ast import Conjunction, NegationStep, any_of, seq, spec
from repro.cep.patterns.matcher import PatternMatcher
from repro.cep.patterns.policies import ConsumptionPolicy, SelectionPolicy


def events(*type_names):
    return [Event(name, i, float(i)) for i, name in enumerate(type_names)]


def match_seqs(matches):
    """Matches as lists of event seq numbers."""
    return [[e.seq for _pos, e in match] for match in matches]


class TestPaperRunningExample:
    """Window contains A1, A2, B3, B4 (positions 0..3); pattern seq(A; B)."""

    WINDOW = events("A", "A", "B", "B")
    PATTERN = seq("qe", spec("A"), spec("B"))

    def test_first_selection_consumed(self):
        # paper §2.1: first+consumed detects cplx13=(A1,B3), cplx24=(A2,B4)
        matcher = PatternMatcher(
            self.PATTERN,
            SelectionPolicy.FIRST,
            ConsumptionPolicy.CONSUMED,
            max_matches=10,
        )
        assert match_seqs(matcher.match_window(self.WINDOW)) == [[0, 2], [1, 3]]

    def test_last_selection_consumed(self):
        # paper §2: last+consumed detects only cplx23=(A2,B3)... the last
        # instances are chosen: (A2, B4) first, then (A1, B3)
        matcher = PatternMatcher(
            self.PATTERN,
            SelectionPolicy.LAST,
            ConsumptionPolicy.CONSUMED,
            max_matches=10,
        )
        found = match_seqs(matcher.match_window(self.WINDOW))
        assert [1, 3] in found  # cplx24 = (A2, B4)

    def test_last_selection_single_match(self):
        matcher = PatternMatcher(self.PATTERN, SelectionPolicy.LAST, max_matches=1)
        assert match_seqs(matcher.match_window(self.WINDOW)) == [[1, 3]]

    def test_zero_consumption_reuses_events(self):
        # paper §2: last+zero detects cplx23=(A2,B3) and cplx24=(A2,B4),
        # reusing A2
        matcher = PatternMatcher(
            self.PATTERN,
            SelectionPolicy.LAST,
            ConsumptionPolicy.ZERO,
            max_matches=10,
        )
        found = match_seqs(matcher.match_window(self.WINDOW))
        assert [1, 3] in found
        a2_uses = sum(1 for m in found if m[0] == 1)
        assert a2_uses >= 2  # A2 reused


class TestFirstSelection:
    def test_basic_sequence(self):
        matcher = PatternMatcher(seq("p", spec("A"), spec("B")))
        window = events("X", "A", "X", "B", "A")
        assert match_seqs(matcher.match_window(window)) == [[1, 3]]

    def test_skip_till_next_skips_irrelevant(self):
        matcher = PatternMatcher(seq("p", spec("A"), spec("B"), spec("C")))
        window = events("A", "Z", "Z", "B", "Z", "C")
        assert match_seqs(matcher.match_window(window)) == [[0, 3, 5]]

    def test_no_match_when_order_wrong(self):
        matcher = PatternMatcher(seq("p", spec("A"), spec("B")))
        assert matcher.match_window(events("B", "A")) == []

    def test_repetition_in_pattern(self):
        matcher = PatternMatcher(seq("p", spec("A"), spec("A"), spec("B")))
        window = events("A", "B", "A", "B")
        assert match_seqs(matcher.match_window(window)) == [[0, 2, 3]]

    def test_positions_parameter(self):
        # shedding removed original positions 1 and 3 from the window
        matcher = PatternMatcher(seq("p", spec("A"), spec("B")))
        kept = events("A", "B")
        matches = matcher.match_window(kept, positions=[4, 9])
        assert [[pos for pos, _e in m] for m in matches] == [[4, 9]]

    def test_positions_length_mismatch_rejected(self):
        matcher = PatternMatcher(seq("p", spec("A")))
        with pytest.raises(ValueError):
            matcher.match_window(events("A"), positions=[1, 2])


class TestAnyOperator:
    def test_any_collects_n_distinct_specs(self):
        pattern = seq(
            "p", spec("S"), any_of(2, [spec("D1"), spec("D2"), spec("D3")])
        )
        matcher = PatternMatcher(pattern)
        window = events("S", "X", "D2", "D2", "D1")
        # D2 can only be used once (distinct specs); second event is D1
        assert match_seqs(matcher.match_window(window)) == [[0, 2, 4]]

    def test_any_without_distinct_allows_same_spec(self):
        pattern = seq(
            "p", spec("S"), any_of(2, [spec("D1"), spec("D2")], distinct_specs=False)
        )
        matcher = PatternMatcher(pattern)
        window = events("S", "D2", "D2")
        assert match_seqs(matcher.match_window(window)) == [[0, 1, 2]]

    def test_any_fails_when_not_enough(self):
        pattern = seq("p", spec("S"), any_of(3, [spec("D1"), spec("D2"), spec("D3")]))
        matcher = PatternMatcher(pattern)
        assert matcher.match_window(events("S", "D1", "D2")) == []

    def test_any_then_single(self):
        pattern = seq("p", any_of(2, [spec("A"), spec("B")]), spec("C"))
        matcher = PatternMatcher(pattern)
        window = events("A", "C", "B", "C")
        # C must come after both any-events: first C at index 1 is too early
        assert match_seqs(matcher.match_window(window)) == [[0, 2, 3]]


class TestNegation:
    def test_negation_blocks_match(self):
        pattern = seq("p", spec("A"), NegationStep(spec("X")), spec("B"))
        matcher = PatternMatcher(pattern)
        assert matcher.match_window(events("A", "X", "B")) == []

    def test_negation_allows_clean_gap(self):
        pattern = seq("p", spec("A"), NegationStep(spec("X")), spec("B"))
        matcher = PatternMatcher(pattern)
        assert match_seqs(matcher.match_window(events("A", "Z", "B"))) == [[0, 2]]

    def test_negation_only_guards_its_gap(self):
        pattern = seq("p", spec("A"), NegationStep(spec("X")), spec("B"))
        matcher = PatternMatcher(pattern)
        # X before A is irrelevant
        assert match_seqs(matcher.match_window(events("X", "A", "B"))) == [[1, 2]]


class TestLastSelection:
    def test_takes_latest_instances(self):
        matcher = PatternMatcher(seq("p", spec("A"), spec("B")), SelectionPolicy.LAST)
        window = events("A", "B", "A", "B")
        assert match_seqs(matcher.match_window(window)) == [[2, 3]]

    def test_last_with_any(self):
        pattern = seq("p", spec("S"), any_of(2, [spec("D1"), spec("D2")]))
        matcher = PatternMatcher(pattern, SelectionPolicy.LAST)
        window = events("S", "D1", "D2", "S", "D1", "D2")
        # latest: S at 3, defenders at 4 and 5
        assert match_seqs(matcher.match_window(window)) == [[3, 4, 5]]

    def test_match_reported_in_position_order(self):
        matcher = PatternMatcher(seq("p", spec("A"), spec("B")), SelectionPolicy.LAST)
        matches = matcher.match_window(events("A", "B"))
        positions = [pos for pos, _e in matches[0]]
        assert positions == sorted(positions)


class TestEachSelection:
    def test_enumerates_combinations(self):
        matcher = PatternMatcher(
            seq("p", spec("A"), spec("B")),
            SelectionPolicy.EACH,
            ConsumptionPolicy.ZERO,
            max_matches=10,
        )
        window = events("A", "A", "B")
        assert match_seqs(matcher.match_window(window)) == [[0, 2], [1, 2]]

    def test_respects_max_matches(self):
        matcher = PatternMatcher(
            seq("p", spec("A"), spec("B")),
            SelectionPolicy.EACH,
            ConsumptionPolicy.ZERO,
            max_matches=3,
        )
        window = events("A", "A", "A", "B", "B")
        assert len(matcher.match_window(window)) == 3

    def test_consumed_prevents_reuse(self):
        matcher = PatternMatcher(
            seq("p", spec("A"), spec("B")),
            SelectionPolicy.EACH,
            ConsumptionPolicy.CONSUMED,
            max_matches=10,
        )
        window = events("A", "A", "B")
        # after (A0, B2) is found, B2 is consumed: no second match
        assert match_seqs(matcher.match_window(window)) == [[0, 2]]


class TestCumulativeSelection:
    def test_folds_all_instances(self):
        matcher = PatternMatcher(
            seq("p", spec("A"), spec("B")), SelectionPolicy.CUMULATIVE
        )
        window = events("A", "A", "B", "B")
        matches = matcher.match_window(window)
        assert len(matches) == 1
        assert [e.seq for _p, e in matches[0]] == [0, 1, 2, 3]

    def test_empty_when_step_unsatisfied(self):
        matcher = PatternMatcher(
            seq("p", spec("A"), spec("B")), SelectionPolicy.CUMULATIVE
        )
        assert matcher.match_window(events("A", "A")) == []


class TestConjunction:
    CONJ = Conjunction("c", (spec("A"), spec("B")))

    def test_order_irrelevant(self):
        matcher = PatternMatcher(self.CONJ)
        assert match_seqs(matcher.match_window(events("B", "A"))) == [[0, 1]]

    def test_first_takes_earliest(self):
        matcher = PatternMatcher(self.CONJ, SelectionPolicy.FIRST)
        window = events("A", "A", "B", "B")
        assert match_seqs(matcher.match_window(window)) == [[0, 2]]

    def test_last_takes_latest(self):
        matcher = PatternMatcher(self.CONJ, SelectionPolicy.LAST)
        window = events("A", "A", "B", "B")
        assert match_seqs(matcher.match_window(window)) == [[1, 3]]

    def test_no_event_used_twice(self):
        conj = Conjunction("c", (spec(["A", "B"]), spec(["A", "B"])))
        matcher = PatternMatcher(conj)
        assert match_seqs(matcher.match_window(events("A"))) == []
        assert match_seqs(matcher.match_window(events("A", "B"))) == [[0, 1]]

    def test_missing_spec_no_match(self):
        matcher = PatternMatcher(self.CONJ)
        assert matcher.match_window(events("A", "A")) == []


class TestMatcherValidation:
    def test_max_matches_positive(self):
        with pytest.raises(ValueError):
            PatternMatcher(seq("p", spec("A")), max_matches=0)

    def test_empty_window(self):
        matcher = PatternMatcher(seq("p", spec("A")))
        assert matcher.match_window([]) == []

"""Unit tests for the textual query language (repro.cep.language)."""

import pytest

from repro.cep.events import Event, EventStream
from repro.cep.language import QueryParseError, parse_query
from repro.cep.operator.operator import CEPOperator
from repro.cep.patterns.ast import AnyStep, Conjunction, NegationStep, SingleStep
from repro.cep.patterns.policies import ConsumptionPolicy, SelectionPolicy
from repro.cep.windows import CountSlidingWindows, PredicateWindows


def ev(type_name, seq, t=None, **attrs):
    return Event(type_name, seq, float(seq) if t is None else t, attrs)


class TestParsing:
    def test_minimal_seq_query(self):
        query = parse_query("define Q from seq(A; B) within 10 events")
        assert query.name == "Q"
        steps = query.pattern.steps
        assert len(steps) == 2
        assert all(isinstance(s, SingleStep) for s in steps)
        assert isinstance(query.new_assigner(), CountSlidingWindows)

    def test_any_step(self):
        query = parse_query("define Q from seq(S; any(2, D1, D2, D3)) within 10 events")
        any_step = query.pattern.steps[1]
        assert isinstance(any_step, AnyStep)
        assert any_step.n == 2
        assert len(any_step.specs) == 3

    def test_negation_step(self):
        query = parse_query("define Q from seq(A; not X; B) within 5 events")
        assert isinstance(query.pattern.steps[1], NegationStep)

    def test_type_alternatives(self):
        query = parse_query("define Q from seq(A|B; C) within 5 events")
        first = query.pattern.steps[0]
        assert first.spec.types == frozenset({"A", "B"})

    def test_conjunction(self):
        query = parse_query("define Q from and(A, B, C) within 5 events")
        assert isinstance(query.pattern, Conjunction)
        assert len(query.pattern.specs) == 3

    def test_time_extent_with_opener(self):
        query = parse_query("define Q from seq(S; D) within 15 s open on S")
        assigner = query.new_assigner()
        assert isinstance(assigner, PredicateWindows)
        assert assigner.extent_seconds == 15.0

    def test_count_extent_with_opener(self):
        query = parse_query("define Q from seq(S; D) within 100 events open on S")
        assigner = query.new_assigner()
        assert isinstance(assigner, PredicateWindows)
        assert assigner.extent_events == 100

    def test_slide(self):
        query = parse_query("define Q from seq(A; B) within 300 events slide 100")
        assigner = query.new_assigner()
        assert assigner.size == 300
        assert assigner.slide == 100

    def test_policies(self):
        query = parse_query(
            "define Q from seq(A; B) within 5 events select last consume zero"
        )
        assert query.selection is SelectionPolicy.LAST
        assert query.consumption is ConsumptionPolicy.ZERO

    def test_multiline_and_case(self):
        query = parse_query(
            """
            DEFINE ManMarking
            FROM   seq(STR; any(2, DF1, DF2, DF3))
            WITHIN 15 s
            OPEN ON STR
            SELECT first
            """
        )
        assert query.name == "ManMarking"

    def test_predicates_attached(self):
        close = lambda e: e.attr("distance", 99.0) <= 5.0
        query = parse_query(
            "define Q from seq(S; D) within 10 events open on S",
            predicates={"D": close},
        )
        d_spec = query.pattern.steps[1].spec
        assert d_spec.matches(ev("D", 0, distance=2.0))
        assert not d_spec.matches(ev("D", 0, distance=10.0))


class TestParsedQueriesRun:
    def test_parsed_query_detects(self):
        query = parse_query("define Q from seq(A; B) within 4 events")
        stream = EventStream([ev("A", 0), ev("X", 1), ev("B", 2), ev("X", 3)])
        detected = CEPOperator(query).detect_all(stream)
        assert len(detected) == 1
        assert detected[0].positions == (0, 2)

    def test_parsed_predicate_window_query(self):
        query = parse_query("define Q from seq(S; D) within 5 s open on S")
        stream = EventStream([ev("S", 0, 0.0), ev("D", 1, 1.0), ev("X", 2, 9.0)])
        detected = CEPOperator(query).detect_all(stream)
        assert len(detected) == 1

    def test_equivalent_to_builder_q1_shape(self):
        from repro.queries import build_q1

        text_query = parse_query(
            "define q1 from seq(STR1|STR2; any(2, DF1, DF2, DF3, DF4, DF5, DF6, DF7, DF8))"
            " within 15 s open on STR1|STR2"
        )
        built = build_q1(pattern_size=2)
        assert text_query.pattern.match_size() == built.pattern.match_size()


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "define",
            "define Q",
            "define Q from",
            "define Q from seq(A within 5 events",
            "define Q from walk(A; B) within 5 events",
            "define Q from seq(A; B) within 5 lightyears",
            "define Q from seq(A; B) within 5 s",  # time without opener
            "define Q from seq(A; B) within 5 events nonsense",
            "define Q from seq(A; B) within 5 events select sometimes",
        ],
    )
    def test_malformed_queries_rejected(self, text):
        with pytest.raises((QueryParseError, ValueError)):
            parse_query(text)

    def test_keyword_as_name_rejected(self):
        with pytest.raises(QueryParseError):
            parse_query("define from from seq(A) within 5 events")

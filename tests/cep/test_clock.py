"""Unit tests for the virtual clock and scheduler (repro.cep.clock)."""

import pytest

from repro.cep.clock import EventScheduler, VirtualClock


class TestVirtualClock:
    def test_starts_at_zero(self):
        assert VirtualClock().now == 0.0

    def test_advance(self):
        clock = VirtualClock()
        assert clock.advance(1.5) == 1.5
        assert clock.now == 1.5

    def test_advance_negative_rejected(self):
        with pytest.raises(ValueError):
            VirtualClock().advance(-0.1)

    def test_advance_to_future(self):
        clock = VirtualClock(10.0)
        clock.advance_to(20.0)
        assert clock.now == 20.0

    def test_advance_to_past_is_noop(self):
        clock = VirtualClock(10.0)
        clock.advance_to(5.0)
        assert clock.now == 10.0


class TestEventScheduler:
    def test_callbacks_run_in_time_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule_at(2.0, lambda: order.append("b"))
        scheduler.schedule_at(1.0, lambda: order.append("a"))
        scheduler.schedule_at(3.0, lambda: order.append("c"))
        scheduler.run_all()
        assert order == ["a", "b", "c"]

    def test_ties_run_in_scheduling_order(self):
        scheduler = EventScheduler()
        order = []
        scheduler.schedule_at(1.0, lambda: order.append(1))
        scheduler.schedule_at(1.0, lambda: order.append(2))
        scheduler.run_all()
        assert order == [1, 2]

    def test_schedule_in_past_rejected(self):
        scheduler = EventScheduler(VirtualClock(5.0))
        with pytest.raises(ValueError):
            scheduler.schedule_at(4.0, lambda: None)

    def test_schedule_after(self):
        scheduler = EventScheduler(VirtualClock(10.0))
        fired = []
        scheduler.schedule_after(2.5, lambda: fired.append(scheduler.clock.now))
        scheduler.run_all()
        assert fired == [12.5]

    def test_run_until_stops_at_boundary(self):
        scheduler = EventScheduler()
        fired = []
        scheduler.schedule_at(1.0, lambda: fired.append(1))
        scheduler.schedule_at(5.0, lambda: fired.append(5))
        executed = scheduler.run_until(3.0)
        assert executed == 1
        assert fired == [1]
        assert scheduler.clock.now == 3.0
        assert scheduler.pending == 1

    def test_callbacks_can_schedule_more(self):
        scheduler = EventScheduler()
        fired = []

        def chain():
            fired.append(scheduler.clock.now)
            if len(fired) < 3:
                scheduler.schedule_after(1.0, chain)

        scheduler.schedule_at(1.0, chain)
        scheduler.run_all()
        assert fired == [1.0, 2.0, 3.0]

    def test_schedule_every_recurs_until_cancelled(self):
        scheduler = EventScheduler()
        ticks = []

        def tick():
            ticks.append(scheduler.clock.now)
            if len(ticks) >= 4:
                return False
            return None

        scheduler.schedule_every(0.5, tick)
        scheduler.run_all()
        assert ticks == [0.5, 1.0, 1.5, 2.0]

    def test_schedule_every_bounded_by_until(self):
        scheduler = EventScheduler()
        ticks = []
        scheduler.schedule_every(1.0, lambda: ticks.append(scheduler.clock.now), until=3.5)
        scheduler.run_all()
        assert ticks == [1.0, 2.0, 3.0]

    def test_schedule_every_rejects_non_positive_interval(self):
        with pytest.raises(ValueError):
            EventScheduler().schedule_every(0.0, lambda: None)

    def test_run_all_limit_guards_runaway(self):
        scheduler = EventScheduler()

        def forever():
            scheduler.schedule_after(0.1, forever)

        scheduler.schedule_after(0.1, forever)
        with pytest.raises(RuntimeError):
            scheduler.run_all(limit=50)

    def test_next_timestamp(self):
        scheduler = EventScheduler()
        assert scheduler.next_timestamp() is None
        scheduler.schedule_at(7.0, lambda: None)
        assert scheduler.next_timestamp() == 7.0

"""Unit + property tests for the incremental matcher.

The headline invariant: for any window content, the incremental
matcher emits exactly the matches the batch matcher (first selection,
consumed) finds.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cep.events import Event
from repro.cep.patterns import PatternMatcher, any_of, kleene, seq, spec
from repro.cep.patterns.ast import NegationStep
from repro.cep.patterns.incremental import (
    IncrementalWindowMatcher,
    match_window_incrementally,
)


def events(*type_names):
    return [Event(name, i, float(i)) for i, name in enumerate(type_names)]


def batch(pattern, window, max_matches=1):
    return [
        [e.seq for _p, e in m]
        for m in PatternMatcher(pattern, max_matches=max_matches).match_window(window)
    ]


def incremental(pattern, window, max_matches=1):
    return [
        [e.seq for _p, e in m]
        for m in match_window_incrementally(pattern, window, max_matches=max_matches)
    ]


class TestBasics:
    def test_simple_sequence(self):
        pattern = seq("p", spec("A"), spec("B"))
        window = events("X", "A", "X", "B")
        assert incremental(pattern, window) == [[1, 3]]

    def test_emits_at_completing_event(self):
        pattern = seq("p", spec("A"), spec("B"))
        matcher = IncrementalWindowMatcher(pattern)
        assert matcher.feed(Event("A", 0, 0.0), 0) == []
        done = matcher.feed(Event("B", 1, 1.0), 1)
        assert len(done) == 1  # detected immediately, not at window close

    def test_any_step(self):
        pattern = seq("p", spec("S"), any_of(2, [spec("D1"), spec("D2"), spec("D3")]))
        window = events("S", "D2", "X", "D2", "D3")
        # D2 reused is skipped (distinct specs); completes on D3
        assert incremental(pattern, window) == [[0, 1, 4]]

    def test_kleene_completes_on_following_step(self):
        pattern = seq("p", spec("S"), kleene("A"), spec("B"))
        window = events("S", "A", "A", "B")
        assert incremental(pattern, window) == [[0, 1, 2, 3]]

    def test_kleene_trailing_flush(self):
        pattern = seq("p", spec("S"), kleene("A", min_count=2))
        window = events("S", "A", "A")
        assert incremental(pattern, window) == [[0, 1, 2]]

    def test_negation_poisons_gap(self):
        pattern = seq("p", spec("A"), NegationStep(spec("X")), spec("B"))
        assert incremental(pattern, events("A", "X", "B")) == []
        # but a later clean run still matches
        assert incremental(pattern, events("A", "X", "A", "B")) == [[2, 3]]

    def test_multiple_matches_consumed(self):
        pattern = seq("p", spec("A"), spec("B"))
        window = events("A", "B", "A", "B")
        assert incremental(pattern, window, max_matches=5) == [[0, 1], [2, 3]]

    def test_partial_progress(self):
        pattern = seq("p", spec("S"), any_of(2, [spec("D1"), spec("D2")]))
        matcher = IncrementalWindowMatcher(pattern)
        assert matcher.partial_progress == 0.0
        matcher.feed(Event("S", 0, 0.0), 0)
        assert matcher.partial_progress == 1 / 3
        matcher.feed(Event("D1", 1, 1.0), 1)
        assert matcher.partial_progress == 2 / 3


PATTERNS = [
    seq("p1", spec("A"), spec("B")),
    seq("p2", spec("A"), spec("B"), spec("A")),
    seq("p3", spec("S"), any_of(2, [spec("A"), spec("B"), spec("C")])),
    seq("p4", spec("A"), NegationStep(spec("C")), spec("B")),
    seq("p5", spec("S"), kleene("A"), spec("B")),
    seq("p6", kleene("A", min_count=2)),
]

windows = st.lists(
    st.sampled_from(["A", "B", "C", "S", "X"]), min_size=0, max_size=30
).map(lambda names: [Event(n, i, float(i)) for i, n in enumerate(names)])


class TestEquivalenceWithBatch:
    @given(windows, st.sampled_from(range(len(PATTERNS))))
    @settings(max_examples=300)
    def test_same_matches_as_batch(self, window, pattern_index):
        pattern = PATTERNS[pattern_index]
        assert incremental(pattern, window) == batch(pattern, window)

    @given(windows, st.sampled_from([0, 1, 3]))
    @settings(max_examples=150)
    def test_multi_match_first_equal_and_disjoint(self, window, pattern_index):
        """Multi-match: single-pass evaluation cannot revisit anchors it
        already passed (that needs full NFA state), so later matches may
        differ from the multi-pass batch matcher's -- both are valid
        readings of *consumed*.  What must hold: the first match is
        identical, matches are pairwise disjoint (consumed semantics)
        and in window order."""
        pattern = PATTERNS[pattern_index]
        online = incremental(pattern, window, max_matches=4)
        offline = batch(pattern, window, max_matches=4)
        if offline:
            assert online, "incremental must find the first match"
            assert online[0] == offline[0]
        used = set()
        previous_start = -1
        for match in online:
            assert not (set(match) & used)
            used.update(match)
            assert match[0] > previous_start
            previous_start = match[0]

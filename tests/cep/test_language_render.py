"""Unit tests for pattern rendering (repro.cep.language.render_pattern)."""

import pytest

from repro.cep.language import parse_query, render_pattern
from repro.cep.patterns.ast import (
    Conjunction,
    NegationStep,
    any_of,
    kleene,
    seq,
    spec,
)


class TestRenderPattern:
    def test_simple_sequence(self):
        pattern = seq("p", spec("A"), spec("B"))
        assert render_pattern(pattern) == "seq(A; B)"

    def test_type_alternatives_sorted(self):
        pattern = seq("p", spec(["B", "A"]))
        assert render_pattern(pattern) == "seq(A|B)"

    def test_any_step(self):
        pattern = seq("p", spec("S"), any_of(2, [spec("D1"), spec("D2"), spec("D3")]))
        assert render_pattern(pattern) == "seq(S; any(2, D1, D2, D3))"

    def test_kleene_step(self):
        pattern = seq("p", kleene("A", min_count=3))
        assert render_pattern(pattern) == "seq(some(3, A))"

    def test_negation(self):
        pattern = seq("p", spec("A"), NegationStep(spec("X")), spec("B"))
        assert render_pattern(pattern) == "seq(A; not X; B)"

    def test_conjunction(self):
        conj = Conjunction("c", (spec("A"), spec("B")))
        assert render_pattern(conj) == "and(A, B)"

    def test_wildcard_not_expressible(self):
        pattern = seq("p", spec(None))
        with pytest.raises(ValueError):
            render_pattern(pattern)

    def test_rendered_text_parses(self):
        pattern = seq(
            "p",
            spec("STR"),
            NegationStep(spec("FOUL")),
            any_of(2, [spec("D1"), spec("D2")]),
            kleene("A", min_count=2),
        )
        text = f"define P from {render_pattern(pattern)} within 20 events"
        parsed = parse_query(text)
        assert parsed.pattern.match_size() == pattern.match_size()

"""Unit tests for the pattern AST (repro.cep.patterns.ast)."""

import pytest

from repro.cep.events import Event
from repro.cep.patterns.ast import (
    AnyStep,
    Conjunction,
    NegationStep,
    Pattern,
    SingleStep,
    any_of,
    seq,
    spec,
)


def ev(type_name, **attrs):
    return Event(type_name, 0, 0.0, attrs)


class TestEventSpec:
    def test_single_type(self):
        s = spec("A")
        assert s.matches(ev("A"))
        assert not s.matches(ev("B"))

    def test_multiple_types(self):
        s = spec(["A", "B"])
        assert s.matches(ev("A"))
        assert s.matches(ev("B"))
        assert not s.matches(ev("C"))

    def test_wildcard(self):
        s = spec(None)
        assert s.matches(ev("anything"))

    def test_predicate(self):
        s = spec("A", predicate=lambda e: e.attr("v", 0) > 5)
        assert s.matches(ev("A", v=6))
        assert not s.matches(ev("A", v=3))
        assert not s.matches(ev("B", v=6))

    def test_default_label(self):
        assert spec(["B", "A"]).label == "A|B"
        assert spec(None).label == "*"


class TestSteps:
    def test_single_step_accepts(self):
        step = SingleStep(spec("A"))
        assert step.accepts(ev("A"))
        assert not step.accepts(ev("B"))

    def test_any_step_accepts_any_spec(self):
        step = any_of(2, [spec("A"), spec("B"), spec("C")])
        assert step.accepts(ev("B"))
        assert not step.accepts(ev("Z"))

    def test_any_step_first_matching_spec(self):
        step = any_of(1, [spec("A"), spec("B")])
        assert step.first_matching_spec(ev("B")) == 1
        assert step.first_matching_spec(ev("Z")) is None

    def test_any_step_validates_n(self):
        with pytest.raises(ValueError):
            AnyStep(0, (spec("A"),))
        with pytest.raises(ValueError):
            any_of(3, [spec("A"), spec("B")])  # distinct specs, n too big

    def test_any_step_without_distinct_allows_large_n(self):
        step = any_of(5, [spec("A")], distinct_specs=False)
        assert step.n == 5


class TestPattern:
    def test_requires_steps(self):
        with pytest.raises(ValueError):
            Pattern("p", ())

    def test_negation_cannot_be_first_or_last(self):
        neg = NegationStep(spec("X"))
        with pytest.raises(ValueError):
            Pattern("p", (neg, SingleStep(spec("A"))))
        with pytest.raises(ValueError):
            Pattern("p", (SingleStep(spec("A")), neg))

    def test_match_size_counts_any_steps(self):
        pattern = seq("p", spec("A"), any_of(3, [spec(f"B{i}") for i in range(5)]))
        assert pattern.match_size() == 4

    def test_match_size_ignores_negation(self):
        pattern = seq("p", spec("A"), NegationStep(spec("X")), spec("B"))
        assert pattern.match_size() == 2

    def test_repetitions_single_steps(self):
        pattern = seq("p", spec("A"), spec("B"), spec("A"))
        reps = pattern.event_type_repetitions()
        assert reps == {"A": 2.0, "B": 1.0}

    def test_repetitions_any_step_shares(self):
        pattern = seq("p", any_of(2, [spec("A"), spec("B"), spec("C"), spec("D")]))
        reps = pattern.event_type_repetitions()
        assert reps["A"] == pytest.approx(0.5)
        assert sum(reps.values()) == pytest.approx(2.0)

    def test_referenced_types(self):
        pattern = seq("p", spec("A"), any_of(1, [spec("B"), spec("C")]))
        assert pattern.referenced_types() == frozenset({"A", "B", "C"})

    def test_seq_wraps_bare_specs(self):
        pattern = seq("p", spec("A"), spec("B"))
        assert all(isinstance(s, SingleStep) for s in pattern.steps)

    def test_seq_rejects_garbage(self):
        with pytest.raises(TypeError):
            seq("p", "not-a-spec")


class TestConjunction:
    def test_requires_specs(self):
        with pytest.raises(ValueError):
            Conjunction("c", ())

    def test_match_size(self):
        conj = Conjunction("c", (spec("A"), spec("B")))
        assert conj.match_size() == 2

    def test_repetitions(self):
        conj = Conjunction("c", (spec("A"), spec("A"), spec("B")))
        assert conj.event_type_repetitions() == {"A": 2.0, "B": 1.0}

    def test_referenced_types(self):
        conj = Conjunction("c", (spec("A"), spec(["B", "C"])))
        assert conj.referenced_types() == frozenset({"A", "B", "C"})

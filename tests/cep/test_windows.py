"""Unit tests for window assigners (repro.cep.windows)."""

import pytest

from repro.cep.events import Event, EventStream, StreamBuilder
from repro.cep.windows import (
    CountSlidingWindows,
    PredicateWindows,
    TimeSlidingWindows,
    average_window_size,
    collect_windows,
    iter_windows,
)


def make_stream(n, rate=1.0, type_name="A"):
    builder = StreamBuilder(rate=rate)
    for _ in range(n):
        builder.emit(type_name)
    return builder.stream


class TestCountSlidingWindows:
    def test_tumbling_windows(self):
        stream = make_stream(6)
        windows = collect_windows(stream, CountSlidingWindows(size=3))
        assert [w.size for w in windows] == [3, 3]
        assert [e.seq for e in windows[0]] == [0, 1, 2]
        assert [e.seq for e in windows[1]] == [3, 4, 5]

    def test_sliding_windows_overlap(self):
        stream = make_stream(6)
        windows = collect_windows(stream, CountSlidingWindows(size=4, slide=2))
        complete = [w for w in windows if not w.truncated]
        assert [[e.seq for e in w] for w in complete] == [
            [0, 1, 2, 3],
            [2, 3, 4, 5],
        ]

    def test_positions_are_per_window(self):
        assigner = CountSlidingWindows(size=4, slide=2)
        stream = make_stream(4)
        positions = {}
        for event in stream:
            for ref in assigner.on_event(event).assignments:
                positions.setdefault(ref.window_id, []).append(ref.position)
        assert positions[0] == [0, 1, 2, 3]
        assert positions[1] == [0, 1]

    def test_flush_marks_truncated(self):
        stream = make_stream(5)
        windows = collect_windows(stream, CountSlidingWindows(size=4, slide=2))
        truncated = [w for w in windows if w.truncated]
        assert len(truncated) == 2  # windows opened at events 2 and 4
        assert all(w.size < 4 for w in truncated)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            CountSlidingWindows(size=0)
        with pytest.raises(ValueError):
            CountSlidingWindows(size=3, slide=0)

    def test_expected_window_size(self):
        assert CountSlidingWindows(size=7).expected_window_size(123.0) == 7.0


class TestTimeSlidingWindows:
    def test_tumbling_time_windows(self):
        stream = make_stream(10, rate=1.0)  # 1 event/second at t=0..9
        windows = collect_windows(stream, TimeSlidingWindows(duration=4.0))
        complete = [w for w in windows if not w.truncated]
        assert [[e.seq for e in w] for w in complete] == [
            [0, 1, 2, 3],
            [4, 5, 6, 7],
        ]

    def test_sliding_time_windows(self):
        stream = make_stream(10, rate=1.0)
        windows = collect_windows(stream, TimeSlidingWindows(duration=4.0, slide=2.0))
        complete = [w for w in windows if not w.truncated]
        # the window opened at t=6 is still open at end of stream (its
        # completeness is unknowable without a later event): truncated
        assert [[e.seq for e in w] for w in complete] == [
            [0, 1, 2, 3],
            [2, 3, 4, 5],
            [4, 5, 6, 7],
        ]

    def test_window_boundary_is_half_open(self):
        # event exactly at open+duration belongs to the next window
        stream = EventStream([Event("A", 0, 0.0), Event("A", 1, 4.0)])
        assigner = TimeSlidingWindows(duration=4.0)
        first = assigner.on_event(stream[0])
        assert len(first.assignments) == 1
        second = assigner.on_event(stream[1])
        assert len(second.closed) == 1
        assert [e.seq for e in second.closed[0]] == [0]

    def test_gap_in_stream_opens_backlog_windows(self):
        assigner = TimeSlidingWindows(duration=2.0, slide=1.0)
        assigner.on_event(Event("A", 0, 0.0))
        result = assigner.on_event(Event("A", 1, 5.0))
        # windows at 0 and 1 closed; windows at 4 and 5 hold the event
        assert len(result.closed) >= 2
        assert len(result.assignments) >= 1

    def test_expected_window_size_uses_rate(self):
        assert TimeSlidingWindows(duration=3.0).expected_window_size(10.0) == 30.0

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TimeSlidingWindows(duration=0.0)
        with pytest.raises(ValueError):
            TimeSlidingWindows(duration=1.0, slide=-1.0)


class TestPredicateWindows:
    @staticmethod
    def _assigner(extent_events=None, extent_seconds=None, **kwargs):
        return PredicateWindows(
            open_predicate=lambda e: e.event_type == "OPEN",
            extent_events=extent_events,
            extent_seconds=extent_seconds,
            **kwargs,
        )

    def test_window_opens_on_predicate(self):
        stream = EventStream(
            [
                Event("X", 0, 0.0),
                Event("OPEN", 1, 1.0),
                Event("X", 2, 2.0),
                Event("X", 3, 3.0),
            ]
        )
        windows = collect_windows(stream, self._assigner(extent_events=3))
        assert len(windows) == 1
        assert [e.seq for e in windows[0]] == [1, 2, 3]

    def test_opener_included_by_default(self):
        assigner = self._assigner(extent_events=2)
        result = assigner.on_event(Event("OPEN", 0, 0.0))
        assert len(result.assignments) == 1
        assert result.assignments[0].position == 0

    def test_opener_can_be_excluded(self):
        assigner = self._assigner(extent_events=2, include_opener=False)
        result = assigner.on_event(Event("OPEN", 0, 0.0))
        assert result.assignments == []

    def test_overlapping_predicate_windows(self):
        stream = EventStream(
            [
                Event("OPEN", 0, 0.0),
                Event("OPEN", 1, 1.0),
                Event("X", 2, 2.0),
                Event("X", 3, 3.0),
                Event("X", 4, 4.0),
            ]
        )
        windows = collect_windows(stream, self._assigner(extent_events=3))
        assert [[e.seq for e in w] for w in windows] == [[0, 1, 2], [1, 2, 3]]

    def test_time_extent(self):
        stream = EventStream(
            [
                Event("OPEN", 0, 0.0),
                Event("X", 1, 1.0),
                Event("X", 2, 5.0),  # outside the 4s extent: closes window
            ]
        )
        windows = collect_windows(stream, self._assigner(extent_seconds=4.0))
        assert [e.seq for e in windows[0]] == [0, 1]

    def test_max_open_force_closes_oldest(self):
        assigner = self._assigner(extent_events=100, max_open=2)
        assigner.on_event(Event("OPEN", 0, 0.0))
        assigner.on_event(Event("OPEN", 1, 1.0))
        result = assigner.on_event(Event("OPEN", 2, 2.0))
        assert len(result.closed) == 1
        assert result.closed[0].truncated

    def test_requires_exactly_one_extent(self):
        with pytest.raises(ValueError):
            PredicateWindows(lambda e: True)
        with pytest.raises(ValueError):
            PredicateWindows(lambda e: True, extent_seconds=1.0, extent_events=5)

    def test_expected_window_size(self):
        by_count = self._assigner(extent_events=50)
        assert by_count.expected_window_size(10.0) == 50.0
        by_time = self._assigner(extent_seconds=5.0)
        assert by_time.expected_window_size(10.0) == 50.0


class TestHelpers:
    def test_iter_windows_yields_in_close_order(self):
        stream = make_stream(9)
        ids = [w.window_id for w in iter_windows(stream, CountSlidingWindows(3))]
        assert ids == sorted(ids)

    def test_average_window_size(self):
        stream = make_stream(9)
        windows = collect_windows(stream, CountSlidingWindows(3))
        assert average_window_size(windows) == 3.0

    def test_average_window_size_empty(self):
        assert average_window_size([]) == 0.0

"""Unit tests for the CEP operator (repro.cep.operator)."""

import pytest

from repro.cep.events import Event, EventStream, StreamBuilder
from repro.cep.operator.operator import CEPOperator
from repro.cep.operator.queue import InputQueue, QueuedItem
from repro.cep.patterns import seq, spec
from repro.cep.patterns.query import Query
from repro.cep.windows import CountSlidingWindows
from repro.shedding.base import DropCommand, LoadShedder


def tumbling_query(size=4, name="q"):
    return Query(
        name=name,
        pattern=seq(name, spec("A"), spec("B")),
        window_factory=lambda: CountSlidingWindows(size),
    )


def stream_of(*type_names):
    builder = StreamBuilder(rate=1.0)
    for name in type_names:
        builder.emit(name)
    return builder.stream


class PositionShedder(LoadShedder):
    """Test shedder: drops a fixed set of window positions."""

    def __init__(self, positions):
        super().__init__()
        self.positions = set(positions)
        self.activate()

    def on_drop_command(self, command):
        pass

    def _decide(self, event, position, predicted_ws):
        return position in self.positions


class TestInputQueue:
    def _item(self, seq=0):
        return QueuedItem(event=Event("A", seq, float(seq)))

    def test_fifo_order(self):
        queue = InputQueue()
        queue.push(self._item(0))
        queue.push(self._item(1))
        assert queue.pop().event.seq == 0
        assert queue.pop().event.seq == 1

    def test_size_and_bool(self):
        queue = InputQueue()
        assert not queue
        queue.push(self._item())
        assert queue and queue.size == 1

    def test_capacity_rejects(self):
        queue = InputQueue(capacity=1)
        assert queue.push(self._item(0))
        assert not queue.push(self._item(1))
        assert queue.total_rejected == 1

    def test_peek_does_not_remove(self):
        queue = InputQueue()
        queue.push(self._item(7))
        assert queue.peek().event.seq == 7
        assert queue.size == 1

    def test_peek_empty_returns_none(self):
        assert InputQueue().peek() is None

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            InputQueue().pop()

    def test_counters(self):
        queue = InputQueue()
        queue.push(self._item(0))
        queue.pop()
        assert queue.total_enqueued == 1
        assert queue.total_dequeued == 1

    def test_clear(self):
        queue = InputQueue()
        queue.push(self._item())
        queue.clear()
        assert queue.size == 0


class TestDetectAll:
    def test_detects_pattern_in_tumbling_windows(self):
        operator = CEPOperator(tumbling_query(size=4))
        detected = operator.detect_all(stream_of("A", "B", "X", "X", "X", "A", "X", "B"))
        assert len(detected) == 2
        assert detected[0].positions == (0, 1)
        assert detected[1].positions == (5, 7)

    def test_no_match_no_complex_events(self):
        operator = CEPOperator(tumbling_query(size=4))
        assert operator.detect_all(stream_of("X", "X", "X", "X")) == []

    def test_stats_counters(self):
        operator = CEPOperator(tumbling_query(size=2))
        operator.detect_all(stream_of("A", "B", "A", "B"))
        assert operator.stats.events_processed == 4
        assert operator.stats.windows_completed == 2
        assert operator.stats.complex_events == 2
        assert operator.stats.memberships_kept == 4
        assert operator.stats.memberships_dropped == 0

    def test_complex_event_carries_window_id(self):
        operator = CEPOperator(tumbling_query(size=2))
        detected = operator.detect_all(stream_of("X", "X", "A", "B"))
        assert [c.window_id for c in detected] == [1]


class TestShedding:
    def test_shedder_drops_memberships(self):
        shedder = PositionShedder(positions={0})
        operator = CEPOperator(tumbling_query(size=2), shedder=shedder)
        detected = operator.detect_all(stream_of("A", "B", "A", "B"))
        # position 0 of every window dropped: the A events vanish
        assert detected == []
        assert operator.stats.memberships_dropped == 2
        assert operator.stats.drop_ratio() == pytest.approx(0.5)

    def test_inactive_shedder_keeps_everything(self):
        shedder = PositionShedder(positions={0, 1})
        shedder.deactivate()
        operator = CEPOperator(tumbling_query(size=2), shedder=shedder)
        detected = operator.detect_all(stream_of("A", "B"))
        assert len(detected) == 1

    def test_matcher_sees_original_positions(self):
        # dropping position 1 must not re-number the remaining events
        shedder = PositionShedder(positions={1})
        operator = CEPOperator(tumbling_query(size=4), shedder=shedder)
        detected = operator.detect_all(stream_of("A", "X", "B", "X"))
        assert len(detected) == 1
        assert detected[0].positions == (0, 2)


class TestWindowListeners:
    def test_listener_receives_window_and_matches(self):
        operator = CEPOperator(tumbling_query(size=2))
        seen = []
        operator.add_window_listener(lambda w, m: seen.append((w.size, len(m))))
        operator.detect_all(stream_of("A", "B", "X", "X"))
        assert seen == [(2, 1), (2, 0)]

    def test_listener_gets_unshedded_window(self):
        shedder = PositionShedder(positions={0, 1})
        operator = CEPOperator(tumbling_query(size=2), shedder=shedder)
        seen = []
        operator.add_window_listener(lambda w, m: seen.append(w.size))
        operator.detect_all(stream_of("A", "B"))
        assert seen == [2]  # full window content despite drops


class TestWindowSizePrediction:
    def test_prime_window_size(self):
        operator = CEPOperator(tumbling_query())
        operator.prime_window_size(100.0, weight=2)
        assert operator.predicted_window_size() == 100.0

    def test_running_average(self):
        operator = CEPOperator(tumbling_query(size=3))
        operator.detect_all(stream_of("A", "B", "X", "A", "B", "X"))
        assert operator.predicted_window_size() == 3.0

    def test_zero_before_any_window(self):
        assert CEPOperator(tumbling_query()).predicted_window_size() == 0.0

    def test_truncated_windows_excluded(self):
        operator = CEPOperator(tumbling_query(size=4))
        operator.detect_all(stream_of("A", "B", "X", "X", "A", "B"))
        # second window has only 2 events and is flushed/truncated
        assert operator.predicted_window_size() == 4.0

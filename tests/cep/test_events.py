"""Unit tests for the event model (repro.cep.events)."""

import pytest

from repro.cep.events import (
    ComplexEvent,
    Event,
    EventStream,
    EventType,
    EventTypeRegistry,
    StreamBuilder,
    filter_stream,
    merge_streams,
)


class TestEventType:
    def test_equality_by_name(self):
        assert EventType("A", 0) == EventType("A", 5)
        assert EventType("A") != EventType("B")

    def test_equality_with_string(self):
        assert EventType("A") == "A"
        assert EventType("A") != "B"

    def test_hash_by_name(self):
        assert hash(EventType("A", 0)) == hash(EventType("A", 9))


class TestEventTypeRegistry:
    def test_intern_assigns_dense_ids(self):
        registry = EventTypeRegistry()
        a = registry.intern("A")
        b = registry.intern("B")
        assert (a.type_id, b.type_id) == (0, 1)

    def test_intern_is_idempotent(self):
        registry = EventTypeRegistry()
        first = registry.intern("A")
        second = registry.intern("A")
        assert first is second
        assert len(registry) == 1

    def test_roundtrip_name_id(self):
        registry = EventTypeRegistry()
        registry.intern("X")
        registry.intern("Y")
        assert registry.name_of(registry.id_of("Y")) == "Y"

    def test_get_missing_returns_none(self):
        assert EventTypeRegistry().get("nope") is None

    def test_contains_and_iter(self):
        registry = EventTypeRegistry()
        registry.intern("A")
        assert "A" in registry
        assert "B" not in registry
        assert [t.name for t in registry] == ["A"]


class TestEvent:
    def test_attr_access_with_default(self):
        event = Event("A", 0, 0.0, {"price": 10.0})
        assert event.attr("price") == 10.0
        assert event.attr("missing", -1) == -1

    def test_ordering_by_seq(self):
        early = Event("A", 1, 5.0)
        late = Event("B", 2, 1.0)
        assert early < late

    def test_equality_ignores_attrs(self):
        assert Event("A", 0, 0.0, {"x": 1}) == Event("A", 0, 0.0, {"x": 2})


class TestComplexEvent:
    def _cplx(self, seqs, window_id=3):
        events = tuple(Event("A", s, float(s)) for s in seqs)
        return ComplexEvent("p", window_id, events)

    def test_key_identity(self):
        assert self._cplx([1, 2]).key == self._cplx([1, 2]).key

    def test_key_differs_by_window(self):
        assert self._cplx([1, 2], 1).key != self._cplx([1, 2], 2).key

    def test_key_differs_by_events(self):
        assert self._cplx([1, 2]).key != self._cplx([1, 3]).key

    def test_positions_and_len(self):
        cplx = self._cplx([4, 7, 9])
        assert cplx.positions == (4, 7, 9)
        assert len(cplx) == 3


class TestEventStream:
    def test_append_and_iterate(self):
        stream = EventStream()
        stream.append(Event("A", 0, 0.0))
        stream.append(Event("B", 1, 1.0))
        assert [e.event_type for e in stream] == ["A", "B"]

    def test_append_rejects_order_violation(self):
        stream = EventStream([Event("A", 5, 0.0)])
        with pytest.raises(ValueError, match="order"):
            stream.append(Event("B", 4, 1.0))

    def test_equal_seq_allowed(self):
        stream = EventStream([Event("A", 1, 0.0)])
        stream.append(Event("B", 1, 0.0))
        assert len(stream) == 2

    def test_types_registry_tracks_types(self):
        stream = EventStream([Event("A", 0, 0.0), Event("B", 1, 0.5)])
        assert stream.type_names() == ["A", "B"]

    def test_rate_and_duration(self):
        stream = EventStream(Event("A", i, i * 0.5) for i in range(5))
        assert stream.duration() == pytest.approx(2.0)
        assert stream.rate() == pytest.approx(2.5)

    def test_rate_of_single_event_stream(self):
        stream = EventStream([Event("A", 0, 1.0)])
        assert stream.rate() == 1.0

    def test_slice_and_getitem(self):
        stream = EventStream(Event("A", i, float(i)) for i in range(10))
        assert stream[3].seq == 3
        assert [e.seq for e in stream.slice(2, 5)] == [2, 3, 4]


class TestStreamBuilder:
    def test_emit_assigns_sequence_and_time(self):
        builder = StreamBuilder(rate=2.0)
        first = builder.emit("A")
        second = builder.emit("B")
        assert (first.seq, second.seq) == (0, 1)
        assert second.timestamp - first.timestamp == pytest.approx(0.5)

    def test_emit_with_explicit_time(self):
        builder = StreamBuilder(rate=1.0)
        event = builder.emit("A", at=42.0)
        assert event.timestamp == 42.0

    def test_emit_many(self):
        builder = StreamBuilder(rate=1.0)
        events = builder.emit_many(["A", "B", "A"])
        assert [e.event_type for e in events] == ["A", "B", "A"]

    def test_rejects_non_positive_rate(self):
        with pytest.raises(ValueError):
            StreamBuilder(rate=0.0)

    def test_attrs_passed_through(self):
        builder = StreamBuilder()
        event = builder.emit("A", price=3.5)
        assert event.attr("price") == 3.5


class TestMergeAndFilter:
    def test_merge_orders_by_timestamp(self):
        left = EventStream([Event("A", 0, 0.0), Event("A", 1, 2.0)])
        right = EventStream([Event("B", 0, 1.0)])
        merged = merge_streams(left, right)
        assert [e.event_type for e in merged] == ["A", "B", "A"]
        assert [e.seq for e in merged] == [0, 1, 2]

    def test_merge_empty_streams(self):
        assert len(merge_streams(EventStream(), EventStream())) == 0

    def test_filter_preserves_seq(self):
        stream = EventStream(Event("A" if i % 2 else "B", i, float(i)) for i in range(6))
        only_a = filter_stream(stream, lambda e: e.event_type == "A")
        assert [e.seq for e in only_a] == [1, 3, 5]

"""Unit tests for the window-parallel operator (repro.cep.parallel)."""

import pytest

from repro.cep.events import StreamBuilder
from repro.cep.operator.operator import CEPOperator
from repro.cep.parallel import WindowParallelOperator
from repro.cep.patterns import seq, spec
from repro.cep.patterns.query import Query
from repro.cep.windows import CountSlidingWindows
from repro.shedding.base import LoadShedder


def tumbling_query(size=4):
    return Query(
        name="q",
        pattern=seq("q", spec("A"), spec("B")),
        window_factory=lambda: CountSlidingWindows(size),
    )


def stream_of_pattern(repetitions=12):
    builder = StreamBuilder(rate=10.0)
    for i in range(repetitions):
        builder.emit_many(["A", "B", "X", "X"] if i % 2 == 0 else ["X"] * 4)
    return builder.stream


class PositionShedder(LoadShedder):
    def __init__(self, positions):
        super().__init__()
        self.positions = set(positions)
        self.activate()

    def on_drop_command(self, command):
        pass

    def _decide(self, event, position, predicted_ws):
        return position in self.positions


class TestEquivalenceToSequential:
    @pytest.mark.parametrize("degree", [1, 2, 3, 8])
    def test_detections_invariant_in_degree(self, degree):
        stream = stream_of_pattern()
        sequential = CEPOperator(tumbling_query()).detect_all(stream)
        parallel = WindowParallelOperator(tumbling_query(), degree=degree).detect_all(
            stream
        )
        assert [c.key for c in parallel] == [c.key for c in sequential]

    @pytest.mark.parametrize("degree", [1, 2, 4])
    def test_shedding_invariant_in_degree(self, degree):
        # the paper's claim: eSPICE is independent of the parallelism
        # degree -- shedding by (type, position) gives identical output
        stream = stream_of_pattern()
        results = []
        for d in (1, degree):
            shedder = PositionShedder({0})
            operator = WindowParallelOperator(tumbling_query(), degree=d, shedder=shedder)
            results.append([c.key for c in operator.detect_all(stream)])
        assert results[0] == results[1]


class TestDispatchAndStats:
    def test_round_robin_balance(self):
        operator = WindowParallelOperator(tumbling_query(), degree=3)
        operator.detect_all(stream_of_pattern(12))
        counts = [s.windows for s in operator.instance_stats]
        assert sum(counts) == operator.total_windows()
        assert max(counts) - min(counts) <= 1
        assert operator.load_imbalance() < 1.5

    def test_shedding_stats_accumulate(self):
        shedder = PositionShedder({0, 1})
        operator = WindowParallelOperator(tumbling_query(), degree=2, shedder=shedder)
        operator.detect_all(stream_of_pattern(8))
        dropped = sum(s.memberships_dropped for s in operator.instance_stats)
        kept = sum(s.memberships_kept for s in operator.instance_stats)
        assert dropped > 0
        assert dropped + kept == 8 * 4

    def test_window_size_prediction(self):
        operator = WindowParallelOperator(tumbling_query(size=4), degree=2)
        operator.detect_all(stream_of_pattern(8))
        assert operator.predicted_window_size() == 4.0

    def test_prime_window_size(self):
        operator = WindowParallelOperator(tumbling_query(), degree=2)
        operator.prime_window_size(10.0, weight=3)
        assert operator.predicted_window_size() == 10.0

    def test_load_imbalance_empty(self):
        operator = WindowParallelOperator(tumbling_query(), degree=2)
        assert operator.load_imbalance() == 1.0

    def test_invalid_degree(self):
        with pytest.raises(ValueError):
            WindowParallelOperator(tumbling_query(), degree=0)

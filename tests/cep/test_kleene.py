"""Unit tests for the Kleene-plus step (SASE one-or-more)."""

import pytest

from repro.cep.events import Event
from repro.cep.patterns import PatternMatcher, kleene, seq, spec
from repro.cep.patterns.ast import KleeneStep
from repro.cep.patterns.policies import SelectionPolicy


def events(*type_names):
    return [Event(name, i, float(i)) for i, name in enumerate(type_names)]


def match_seqs(matches):
    return [[e.seq for _pos, e in match] for match in matches]


class TestKleeneStepValidation:
    def test_min_count_positive(self):
        with pytest.raises(ValueError):
            kleene("A", min_count=0)

    def test_max_not_below_min(self):
        with pytest.raises(ValueError):
            kleene("A", min_count=3, max_count=2)

    def test_match_size_uses_min_count(self):
        pattern = seq("p", spec("S"), kleene("A", min_count=3))
        assert pattern.match_size() == 4

    def test_repetitions_use_min_count(self):
        pattern = seq("p", kleene("A", min_count=2), spec("B"))
        assert pattern.event_type_repetitions() == {"A": 2.0, "B": 1.0}


class TestKleeneMatching:
    def test_collects_greedy_run(self):
        pattern = seq("p", spec("S"), kleene("A"))
        matcher = PatternMatcher(pattern)
        window = events("S", "A", "X", "A", "A")
        assert match_seqs(matcher.match_window(window)) == [[0, 1, 3, 4]]

    def test_min_count_enforced(self):
        pattern = seq("p", spec("S"), kleene("A", min_count=3))
        matcher = PatternMatcher(pattern)
        assert matcher.match_window(events("S", "A", "A")) == []
        assert match_seqs(matcher.match_window(events("S", "A", "A", "A"))) == [
            [0, 1, 2, 3]
        ]

    def test_max_count_caps_greed(self):
        pattern = seq("p", spec("S"), kleene("A", max_count=2), spec("B"))
        matcher = PatternMatcher(pattern)
        window = events("S", "A", "A", "A", "B")
        matches = matcher.match_window(window)
        assert match_seqs(matches) == [[0, 1, 2, 4]]

    def test_run_stops_at_following_step(self):
        # kleene(A); B must not swallow past the completing B
        pattern = seq("p", spec("S"), kleene("A"), spec("B"))
        matcher = PatternMatcher(pattern)
        window = events("S", "A", "A", "B", "A")
        assert match_seqs(matcher.match_window(window)) == [[0, 1, 2, 3]]

    def test_run_requires_min_before_yielding(self):
        # with min_count=2, the first B is skipped while the run is short
        pattern = seq("p", kleene("A", min_count=2), spec("B"))
        matcher = PatternMatcher(pattern)
        window = events("A", "B", "A", "B")
        assert match_seqs(matcher.match_window(window)) == [[0, 2, 3]]

    def test_kleene_at_pattern_start(self):
        pattern = seq("p", kleene("A"), spec("B"))
        matcher = PatternMatcher(pattern)
        assert match_seqs(matcher.match_window(events("X", "A", "A", "B"))) == [
            [1, 2, 3]
        ]

    def test_last_selection(self):
        pattern = seq("p", spec("S"), kleene("A"))
        matcher = PatternMatcher(pattern, SelectionPolicy.LAST)
        window = events("S", "A", "S", "A", "A")
        assert match_seqs(matcher.match_window(window)) == [[2, 3, 4]]

    def test_cumulative_selection(self):
        pattern = seq("p", spec("S"), kleene("A", min_count=2))
        matcher = PatternMatcher(pattern, SelectionPolicy.CUMULATIVE)
        window = events("S", "A", "A", "A")
        matches = matcher.match_window(window)
        assert len(matches) == 1
        assert [e.seq for _p, e in matches[0]] == [0, 1, 2, 3]

    def test_each_selection_greedy_runs(self):
        from repro.cep.patterns.policies import ConsumptionPolicy

        pattern = seq("p", spec("S"), kleene("A"))
        matcher = PatternMatcher(
            pattern,
            SelectionPolicy.EACH,
            ConsumptionPolicy.ZERO,
            max_matches=5,
        )
        window = events("S", "A", "S", "A")
        found = match_seqs(matcher.match_window(window))
        assert [0, 1, 3] in found  # first S with the full greedy run


class TestKleeneInLanguage:
    def test_some_syntax(self):
        from repro.cep.language import parse_query

        query = parse_query("define Q from seq(S; some(A)) within 10 events")
        step = query.pattern.steps[1]
        assert isinstance(step, KleeneStep)
        assert step.min_count == 1

    def test_some_with_count(self):
        from repro.cep.language import parse_query

        query = parse_query("define Q from seq(S; some(3, A|B)) within 10 events")
        step = query.pattern.steps[1]
        assert step.min_count == 3
        assert step.spec.types == frozenset({"A", "B"})

    def test_parsed_kleene_matches(self):
        from repro.cep.events import EventStream
        from repro.cep.language import parse_query
        from repro.cep.operator.operator import CEPOperator

        query = parse_query("define Q from seq(S; some(2, A)) within 5 events")
        stream = EventStream(
            [Event(t, i, float(i)) for i, t in enumerate(["S", "A", "X", "A", "X"])]
        )
        detected = CEPOperator(query).detect_all(stream)
        assert len(detected) == 1
        assert detected[0].positions == (0, 1, 3)

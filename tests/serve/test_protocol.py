"""Wire protocol unit tests: framing and the event codec.

The codec is the foundation of the serve determinism guarantee: every
event must round-trip losslessly (JSON doubles preserve Python floats
exactly), and every malformed shape must fail loudly as a
:class:`ProtocolError` instead of corrupting the stream.
"""

import asyncio
import json
import math

import pytest

from repro.cep.events import Event
from repro.serve.protocol import (
    MAX_FRAME,
    ProtocolError,
    encode_frame,
    event_to_wire,
    events_to_wire,
    read_frame,
    wire_to_event,
    wire_to_events,
)


def read_all(data: bytes):
    """Drive ``read_frame`` over an in-memory stream until EOF."""

    async def impl():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        frames = []
        while True:
            frame = await read_frame(reader)
            if frame is None:
                return frames
            frames.append(frame)

    return asyncio.run(impl())


def read_one(data: bytes):
    async def impl():
        reader = asyncio.StreamReader()
        reader.feed_data(data)
        reader.feed_eof()
        return await read_frame(reader)

    return asyncio.run(impl())


class TestFraming:
    def test_round_trip_one_frame(self):
        payload = {"op": "ingest", "events": [1, 2, 3]}
        assert read_all(encode_frame(payload)) == [payload]

    def test_round_trip_many_frames_in_order(self):
        payloads = [{"op": "ping", "n": i} for i in range(10)]
        data = b"".join(encode_frame(p) for p in payloads)
        assert read_all(data) == payloads

    def test_clean_eof_returns_none(self):
        assert read_all(b"") == []

    def test_eof_mid_header_is_clean(self):
        # fewer than 4 length bytes: treated as EOF between frames
        assert read_one(b"\x00\x00") is None

    def test_eof_mid_body_raises(self):
        frame = encode_frame({"op": "ping"})
        with pytest.raises(ProtocolError, match="mid-frame"):
            read_one(frame[:-2])

    def test_oversize_header_rejected_before_reading_body(self):
        header = (MAX_FRAME + 1).to_bytes(4, "big")
        with pytest.raises(ProtocolError, match="exceeds"):
            read_one(header)

    def test_oversize_payload_rejected_on_encode(self):
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({"blob": "x" * (MAX_FRAME + 1)})

    def test_non_object_body_rejected(self):
        body = json.dumps([1, 2, 3]).encode()
        data = len(body).to_bytes(4, "big") + body
        with pytest.raises(ProtocolError, match="JSON object"):
            read_one(data)

    def test_invalid_json_rejected(self):
        body = b"{nope"
        data = len(body).to_bytes(4, "big") + body
        with pytest.raises(ProtocolError, match="not valid JSON"):
            read_one(data)


class TestEventCodec:
    def test_round_trip_preserves_identity(self):
        event = Event("kick", 41, 12.625, {"player": "p7", "x": 1.5})
        decoded = wire_to_event(json.loads(json.dumps(event_to_wire(event))))
        assert decoded.event_type == event.event_type
        assert decoded.seq == event.seq
        assert decoded.timestamp == event.timestamp
        assert decoded.attrs == event.attrs

    def test_round_trip_preserves_awkward_floats(self):
        # JSON doubles round-trip any Python float exactly -- including
        # values with no short decimal form; this is what keeps served
        # detections bit-identical to in-process replays
        for ts in (0.1 + 0.2, 1e-17, 123456.789012345, math.pi):
            event = Event("a", 0, ts)
            assert wire_to_event(
                json.loads(json.dumps(event_to_wire(event)))
            ).timestamp == ts

    def test_empty_attrs_omitted_on_wire(self):
        assert "a" not in event_to_wire(Event("a", 1, 2.0))

    def test_stream_slice_round_trip_in_order(self):
        events = [Event("t", i, i * 0.5, {"i": i}) for i in range(64)]
        decoded = wire_to_events(json.loads(json.dumps(events_to_wire(events))))
        assert [e.seq for e in decoded] == [e.seq for e in events]
        assert [e.timestamp for e in decoded] == [e.timestamp for e in events]

    @pytest.mark.parametrize(
        "wire, message",
        [
            ("not-an-object", "JSON object"),
            ({"s": 1, "ts": 2.0}, "missing field 't'"),
            ({"t": "a", "ts": 2.0}, "missing field 's'"),
            ({"t": "a", "s": 1}, "missing field 'ts'"),
            ({"t": 7, "s": 1, "ts": 2.0}, "type must be a string"),
            ({"t": "a", "s": 1.5, "ts": 2.0}, "seq must be an integer"),
            ({"t": "a", "s": True, "ts": 2.0}, "seq must be an integer"),
            ({"t": "a", "s": 1, "ts": "x"}, "timestamp must be a number"),
            ({"t": "a", "s": 1, "ts": True}, "timestamp must be a number"),
            ({"t": "a", "s": 1, "ts": 2.0, "a": []}, "attrs must be"),
        ],
    )
    def test_bad_event_shapes_rejected(self, wire, message):
        with pytest.raises(ProtocolError, match=message):
            wire_to_event(wire)

    def test_events_must_be_an_array(self):
        with pytest.raises(ProtocolError, match="array"):
            wire_to_events({"t": "a"})

    def test_integer_timestamp_becomes_float(self):
        decoded = wire_to_event({"t": "a", "s": 1, "ts": 3})
        assert decoded.timestamp == 3.0
        assert isinstance(decoded.timestamp, float)
